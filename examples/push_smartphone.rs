//! The paper's Fig. 2 push flow: a smartphone fetches the update from the
//! Internet and forwards it to the device over a BLE-like link — first
//! honestly (stepped one link event at a time through the resumable
//! session API), then as a compromised proxy whose tampering UpKit's
//! agent-side verification rejects before the firmware transfer even
//! starts.
//!
//! ```text
//! cargo run --example push_smartphone
//! ```

use std::sync::Arc;

use rand::SeedableRng;
use upkit::core::agent::{AgentConfig, UpdateAgent, UpdatePlan};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::FIRMWARE_OFFSET;
use upkit::core::keys::TrustAnchors;
use upkit::crypto::backend::TinyCryptBackend;
use upkit::crypto::ecdsa::SigningKey;
use upkit::flash::{configuration_a, standard, FlashGeometry, MemoryLayout, SimFlash};
use upkit::manifest::Version;
use upkit::net::{
    run_push_session, LinkProfile, LossyLink, PushEndpoints, PushSession, RetryPolicy,
    SessionEventKind, SessionOutcome, Smartphone, Step, Tamper, Transport,
};

const SLOT_SIZE: u32 = 4096 * 24;

struct Device {
    layout: MemoryLayout,
    agent: UpdateAgent,
}

fn device(anchors: TrustAnchors) -> Device {
    Device {
        layout: configuration_a(
            Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
            SLOT_SIZE,
        )
        .expect("valid layout"),
        agent: UpdateAgent::new(
            Arc::new(TinyCryptBackend),
            anchors,
            AgentConfig {
                device_id: 0x51,
                app_id: 0xA,
                supports_differential: false,
                content_key: None,
            },
        ),
    }
}

fn plan() -> UpdatePlan {
    UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(1),
        installed_size: 0,
        allowed_link_offsets: vec![0],
        max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
    }
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    server.publish(vendor.release(vec![0xF1; 60_000], Version(2), 0, 0xA));
    let link = LinkProfile::ble_gatt();

    // --- Honest smartphone, one link event at a time ------------------------
    let mut dev = device(anchors);
    let mut phone = Smartphone::new();
    let mut session = PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
    let mut endpoints = PushEndpoints::new(
        &server,
        &mut phone,
        &mut dev.agent,
        &mut dev.layout,
        plan(),
        100,
    );
    let mut chunks = 0u64;
    let report = loop {
        match session.step(&mut endpoints) {
            Step::Progress(event) => match event.kind {
                SessionEventKind::TokenExchange => {
                    println!("event: token exchange ({} µs)", event.cost_micros);
                }
                SessionEventKind::ProxyFetch => {
                    println!("event: phone fetched the update over the Internet");
                }
                SessionEventKind::ChunkDelivered { bytes } => {
                    chunks += 1;
                    if chunks <= 2 {
                        println!(
                            "event: chunk delivered ({bytes} B, {} µs)",
                            event.cost_micros
                        );
                    } else if chunks == 3 {
                        println!("event: … (one event per BLE chunk; session is resumable");
                        println!("        between any two of them)");
                    }
                }
                SessionEventKind::ChunkLost { .. } => unreachable!("reliable link"),
                SessionEventKind::GoAhead => {
                    println!("event: manifest verified — agent sends the go-ahead");
                }
            },
            Step::Done(report) => break report,
        }
    };
    println!(
        "honest phone: {:?}, {} bytes over BLE in {} chunks, {:.1} s of radio time",
        describe(&report.outcome),
        report.accounting.bytes_to_device,
        chunks,
        report.accounting.elapsed_micros as f64 / 1e6
    );
    assert!(report.outcome.is_complete());

    // --- Compromised smartphone: corrupts the image in transit -------------
    let mut dev = device(anchors);
    let mut evil_phone = Smartphone::compromised(Tamper::FlipBit { offset: 25 });
    let report = run_push_session(
        &server,
        &mut evil_phone,
        &mut dev.agent,
        &mut dev.layout,
        plan(),
        101,
        &link,
    );
    println!(
        "tampering phone: {:?} after only {} bytes — the firmware never left the phone",
        describe(&report.outcome),
        report.accounting.bytes_to_device
    );
    assert!(matches!(
        report.outcome,
        SessionOutcome::RejectedAtManifest(_)
    ));

    // --- Replaying smartphone: old image for a new request ------------------
    let mut dev = device(anchors);
    let mut honest = Smartphone::new();
    let first = run_push_session(
        &server,
        &mut honest,
        &mut dev.agent,
        &mut dev.layout,
        plan(),
        102,
        &link,
    );
    assert!(first.outcome.is_complete());
    let captured = honest.stored().expect("fetched").image.to_bytes();

    let mut dev = device(anchors);
    let mut replayer = Smartphone::compromised(Tamper::Replay(captured));
    let report = run_push_session(
        &server,
        &mut replayer,
        &mut dev.agent,
        &mut dev.layout,
        plan(),
        103,
        &link,
    );
    println!(
        "replaying phone: {:?} — the update server's signature binds the nonce",
        describe(&report.outcome)
    );
    assert!(matches!(
        report.outcome,
        SessionOutcome::RejectedAtManifest(_)
    ));

    println!("\nthe proxy is passive: it can disturb, but never forge, an update");
}

fn describe(outcome: &SessionOutcome) -> &'static str {
    match outcome {
        SessionOutcome::Complete => "update verified and stored",
        SessionOutcome::NoUpdateAvailable => "no update available",
        SessionOutcome::RejectedAtManifest(_) => "REJECTED at manifest (early)",
        SessionOutcome::RejectedAtFirmware(_) => "REJECTED at firmware (before reboot)",
        SessionOutcome::Incomplete => "stream incomplete",
        SessionOutcome::ProxyEmpty => "proxy claimed success but had no bytes",
        SessionOutcome::TimedOut => "a block exhausted its retransmissions",
    }
}
