//! Differential updates in detail: patch sizes and the on-device pipeline.
//!
//! Shows the server-side delta generation (`bsdiff` + LZSS) for the two
//! workloads of Fig. 8b, then streams a patch through the device pipeline
//! (decompression → patching → buffer → writer) in radio-MTU chunks —
//! demonstrating the paper's storage optimization: the patch never
//! occupies a flash slot.
//!
//! ```text
//! cargo run --example differential_update
//! ```

use upkit::compress::{compress, Params};
use upkit::core::image::FIRMWARE_OFFSET;
use upkit::core::pipeline::Pipeline;
use upkit::delta::diff;
use upkit::flash::{configuration_a, standard, FlashGeometry, SimFlash};
use upkit::sim::FirmwareGenerator;

fn main() {
    let generator = FirmwareGenerator::new(42);
    let v1 = generator.base(100_000);

    println!("delta sizes for a 100 kB image (bsdiff + LZSS):");
    for (name, v2) in [
        ("OS version change ", generator.os_version_change(&v1)),
        ("app change ~1000 B", generator.app_change(&v1, 1000)),
    ] {
        let patch = diff(&v1, &v2);
        let wire = compress(&patch, Params::default());
        println!(
            "  {name}: raw patch {:>7} B, compressed {:>6} B ({:.1}% of the full image)",
            patch.len(),
            wire.len(),
            wire.len() as f64 / v2.len() as f64 * 100.0
        );
    }

    // Stream the app-change patch through the pipeline.
    let v2 = generator.app_change(&v1, 1000);
    let wire = compress(&diff(&v1, &v2), Params::default());

    let slot_size = 4096 * 32;
    let mut layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        slot_size,
    )
    .expect("valid layout");
    layout.erase_slot(standard::SLOT_A).expect("fresh");
    layout
        .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &v1)
        .expect("fits");
    layout.erase_slot(standard::SLOT_B).expect("fresh");
    layout.reset_stats();

    let mut pipeline = Pipeline::new_differential(
        &mut layout,
        standard::SLOT_B,
        standard::SLOT_A,
        v1.len() as u32,
        v2.len() as u32,
    )
    .expect("slots prepared");
    for chunk in wire.chunks(244) {
        pipeline.push(&mut layout, chunk).expect("valid patch");
    }
    let produced = pipeline.finish(&mut layout).expect("complete patch");

    let stats = layout.total_stats();
    println!("\npipeline applied the patch on the fly:");
    println!("  wire bytes in:        {}", wire.len());
    println!("  firmware bytes out:   {produced}");
    println!(
        "  flash bytes written:  {} (= firmware only, no patch staging)",
        stats.bytes_written
    );
    println!(
        "  flash sectors erased: {} (destination pre-erased once)",
        stats.sectors_erased
    );

    let mut reconstructed = vec![0u8; v2.len()];
    layout
        .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut reconstructed)
        .expect("read back");
    assert_eq!(reconstructed, v2);
    println!("  reconstruction matches v2 byte-for-byte");
}
