//! Quickstart: one complete over-the-air update, end to end.
//!
//! Walks the paper's four phases on a simulated nRF52840 with two bootable
//! slots: the vendor releases firmware v2, the update server double-signs
//! it for this device's request, the update agent verifies and stores it,
//! and the bootloader verifies again and boots it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use rand::SeedableRng;
use upkit::core::agent::{AgentConfig, AgentPhase, UpdateAgent, UpdatePlan};
use upkit::core::bootloader::{BootConfig, BootMode, Bootloader};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::FIRMWARE_OFFSET;
use upkit::core::keys::TrustAnchors;
use upkit::crypto::backend::TinyCryptBackend;
use upkit::crypto::ecdsa::SigningKey;
use upkit::flash::{configuration_a, standard, FlashGeometry, SimFlash};
use upkit::manifest::Version;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // --- Generation phase: the vendor signs a release -----------------
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let firmware_v2 = vec![0xC0; 24 * 1024];
    server.publish(vendor.release(firmware_v2.clone(), Version(2), 0x100, 0xA));
    println!(
        "vendor released firmware v2 ({} bytes), published to update server",
        firmware_v2.len()
    );

    // --- Device: flash, agent, bootloader ------------------------------
    let slot_size = 4096 * 16;
    let mut layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        slot_size,
    )
    .expect("valid layout");
    let backend = Arc::new(TinyCryptBackend);
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    let mut agent = UpdateAgent::new(
        backend.clone(),
        anchors,
        AgentConfig {
            device_id: 0xD0D0,
            app_id: 0xA,
            supports_differential: true,
            content_key: None,
        },
    );

    // --- Propagation phase: token → double-signed image → agent --------
    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(0),
        installed_size: 0,
        allowed_link_offsets: vec![0x100],
        max_firmware_size: slot_size - FIRMWARE_OFFSET,
    };
    let token = agent
        .request_device_token(&mut layout, plan, 0xBEEF)
        .expect("agent was idle");
    println!(
        "device token: id={:#x} nonce={:#x}",
        token.device_id, token.nonce
    );

    let prepared = server.prepare_update(&token).expect("newer release exists");
    println!(
        "server prepared a {:?} update, {} wire bytes",
        prepared.kind,
        prepared.image.payload.len()
    );

    let mut phase = AgentPhase::NeedMore;
    for chunk in prepared.image.to_bytes().chunks(244) {
        phase = agent.push_data(&mut layout, chunk).expect("valid update");
    }
    assert_eq!(phase, AgentPhase::Complete);
    println!("agent verified the manifest (double signature) and the stored firmware digest");

    // --- Verification + loading phases: reboot into the bootloader -----
    let bootloader = Bootloader::new(
        backend,
        anchors,
        BootConfig {
            device_id: 0xD0D0,
            app_id: 0xA,
            allowed_link_offsets: vec![0x100],
            max_firmware_size: slot_size - FIRMWARE_OFFSET,
            mode: BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
            recovery_slot: None,
        },
    );
    let outcome = bootloader.boot(&mut layout).expect("bootable image");
    println!(
        "bootloader verified and booted {} from {} ({:?})",
        outcome.version, outcome.booted_slot, outcome.action
    );
    assert_eq!(outcome.version, Version(2));
    println!("update complete: device is running v2");
}
