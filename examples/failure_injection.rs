//! Failure injection: power cuts mid-update, and a side-by-side of what
//! the baselines accept versus what UpKit rejects.
//!
//! ```text
//! cargo run --example failure_injection
//! ```

use upkit::baselines::sparrow::{encode_image, SparrowAgent};
use upkit::flash::{configuration_b, standard, FlashGeometry, SimFlash};
use upkit::manifest::Version;
use upkit::sim::run_power_loss_scenario;

fn main() {
    // --- Power loss sweep ---------------------------------------------------
    println!("power-loss sweep (push update onto an A/B device):");
    for cut in [500u64, 30_000, 66_000, 90_000, 200_000] {
        let report = run_power_loss_scenario(cut, 7_000 + cut);
        let state = match report.booted_version {
            Some(Version(1)) => "rolled back to v1",
            Some(Version(2)) => "update completed, running v2",
            Some(v) => panic!("unexpected version {v:?}"),
            None => "BRICKED (must never happen)",
        };
        println!(
            "  cut after {cut:>7} flash bytes: session {} → {state}",
            if report.session_interrupted {
                "interrupted"
            } else {
                "finished"
            },
        );
        assert!(report.booted_version.is_some(), "device must never brick");
    }

    // --- What a CRC-only updater accepts --------------------------------------
    println!("\nCRC-only baseline (Sparrow-style) vs tampering:");
    let mut layout = configuration_b(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        None,
        4096 * 8,
    )
    .expect("valid layout");
    let forged = encode_image(b"attacker firmware with recomputed checksum");
    let mut agent = SparrowAgent::new(standard::SLOT_B);
    agent.begin(&mut layout).expect("fresh");
    let mut accepted = false;
    for chunk in forged.chunks(64) {
        accepted = agent.push_data(&mut layout, chunk).expect("CRC matches");
    }
    println!(
        "  forged image with recomputed CRC: {}",
        if accepted {
            "ACCEPTED (the hole UpKit closes)"
        } else {
            "rejected"
        }
    );
    assert!(accepted);
    println!("  the same image fails UpKit's double-signature check in the agent");
}
