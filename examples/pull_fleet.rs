//! A fleet of devices pulling updates over simulated CoAP/6LoWPAN, in
//! parallel, with per-device differential updates.
//!
//! Models the paper's pull deployment: each device periodically polls the
//! update server through a border router. Devices run different installed
//! versions, so the server serves each one a different delta (or a full
//! image for the device that cannot apply patches).
//!
//! ```text
//! cargo run --example pull_fleet
//! ```

use std::sync::Arc;

use rand::SeedableRng;
use upkit::core::agent::{AgentConfig, UpdateAgent, UpdatePlan};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::FIRMWARE_OFFSET;
use upkit::core::keys::TrustAnchors;
use upkit::crypto::backend::TinyCryptBackend;
use upkit::crypto::ecdsa::SigningKey;
use upkit::flash::{configuration_a, standard, FlashGeometry, SimFlash};
use upkit::manifest::Version;
use upkit::net::{run_pull_session, BorderRouter, LinkProfile, Smartphone};
use upkit::sim::FirmwareGenerator;

const SLOT_SIZE: u32 = 4096 * 24;

fn main() {
    let _ = Smartphone::new(); // (push counterpart; unused here)
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());

    // Release history v1..v3; v3 is current.
    let generator = FirmwareGenerator::new(5);
    let v1 = generator.base(50_000);
    let v2 = generator.os_version_change(&v1);
    let v3 = generator.app_change(&v2, 1200);
    for (fw, version) in [(v1.clone(), 1u16), (v2.clone(), 2), (v3.clone(), 3)] {
        server.publish(vendor.release(fw, Version(version), 0, 0xA));
    }
    let server = Arc::new(server);

    // Fleet: device id, installed version, differential support.
    let fleet: Vec<(u32, u16, bool, Vec<u8>)> = vec![
        (0x1001, 1, true, v1.clone()),
        (0x1002, 2, true, v2.clone()),
        (0x1003, 3, true, v3.clone()),  // already current
        (0x1004, 1, false, v1.clone()), // cannot patch: full image
    ];

    let results: Vec<String> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .into_iter()
            .map(|(id, installed, differential, current_fw)| {
                let server = Arc::clone(&server);
                scope.spawn(move |_| {
                    update_one_device(&server, anchors, id, installed, differential, &current_fw)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("device thread"))
            .collect()
    })
    .expect("fleet scope");

    println!("fleet update round (server at v3):");
    for line in results {
        println!("  {line}");
    }
}

fn update_one_device(
    server: &UpdateServer,
    anchors: TrustAnchors,
    device_id: u32,
    installed: u16,
    differential: bool,
    current_fw: &[u8],
) -> String {
    let mut layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        SLOT_SIZE,
    )
    .expect("valid layout");
    // Pre-install the running firmware (differential base).
    layout.erase_slot(standard::SLOT_A).expect("fresh");
    layout
        .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, current_fw)
        .expect("fits");

    let mut agent = UpdateAgent::new(
        Arc::new(TinyCryptBackend),
        anchors,
        AgentConfig {
            device_id,
            app_id: 0xA,
            supports_differential: differential,
            content_key: None,
        },
    );
    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(installed),
        installed_size: current_fw.len() as u32,
        allowed_link_offsets: vec![0],
        max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
    };
    let report = run_pull_session(
        server,
        &BorderRouter::new(),
        &mut agent,
        &mut layout,
        plan,
        device_id ^ 0x5555,
        &LinkProfile::ieee802154_6lowpan(),
    );
    format!(
        "device {device_id:#x} (v{installed}, diff={differential}): {:?}, {} bytes on the wire",
        kind(&report.outcome),
        report.accounting.bytes_to_device
    )
}

fn kind(outcome: &upkit::net::SessionOutcome) -> &'static str {
    match outcome {
        upkit::net::SessionOutcome::Complete => "updated to v3",
        upkit::net::SessionOutcome::NoUpdateAvailable => "already current",
        _ => "failed",
    }
}
