//! A fleet of devices pulling updates over simulated CoAP/6LoWPAN,
//! interleaved on one virtual clock, with per-device differential updates.
//!
//! Models the paper's pull deployment: each device polls the update server
//! through a border router. Devices run different installed versions, so
//! the server serves each one a different delta (or a full image for the
//! device that cannot apply patches). All four sessions are *resumable*
//! state machines advanced one link event at a time by a single thread —
//! the device whose next event is earliest in virtual time goes next, so
//! transfers of different lengths finish in wire-time order, not
//! submission order.
//!
//! ```text
//! cargo run --example pull_fleet
//! ```
//!
//! The whole round is traced: flash, agent, session, and scheduler events
//! land in one NDJSON file (default `target/pull_fleet.trace.ndjson`;
//! override with `UPKIT_TRACE=/path/to/file`).

use std::io::Write as _;
use std::sync::Arc;

use rand::SeedableRng;
use upkit::core::agent::{AgentConfig, UpdateAgent, UpdatePlan};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::FIRMWARE_OFFSET;
use upkit::core::keys::TrustAnchors;
use upkit::crypto::backend::TinyCryptBackend;
use upkit::crypto::ecdsa::SigningKey;
use upkit::flash::{configuration_a, standard, FlashGeometry, MemoryLayout, SimFlash};
use upkit::manifest::Version;
use upkit::net::{
    BorderRouter, LinkProfile, LossyLink, PullEndpoints, PullSession, RetryPolicy, SessionReport,
    Step, Transport,
};
use upkit::sim::FirmwareGenerator;
use upkit::trace::{Event, MemorySink, Tracer};

const SLOT_SIZE: u32 = 4096 * 24;

struct Device {
    device_id: u32,
    installed: u16,
    installed_size: u32,
    differential: bool,
    layout: MemoryLayout,
    agent: UpdateAgent,
}

fn device(
    anchors: TrustAnchors,
    device_id: u32,
    installed: u16,
    differential: bool,
    current_fw: &[u8],
) -> Device {
    let mut layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        SLOT_SIZE,
    )
    .expect("valid layout");
    // Pre-install the running firmware (differential base).
    layout.erase_slot(standard::SLOT_A).expect("fresh");
    layout
        .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, current_fw)
        .expect("fits");
    let agent = UpdateAgent::new(
        Arc::new(TinyCryptBackend),
        anchors,
        AgentConfig {
            device_id,
            app_id: 0xA,
            supports_differential: differential,
            content_key: None,
        },
    );
    Device {
        device_id,
        installed,
        installed_size: current_fw.len() as u32,
        differential,
        layout,
        agent,
    }
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());

    // Release history v1..v3; v3 is current.
    let generator = FirmwareGenerator::new(5);
    let v1 = generator.base(50_000);
    let v2 = generator.os_version_change(&v1);
    let v3 = generator.app_change(&v2, 1200);
    for (fw, version) in [(v1.clone(), 1u16), (v2.clone(), 2), (v3.clone(), 3)] {
        server.publish(vendor.release(fw, Version(version), 0, 0xA));
    }

    // Fleet: device id, installed version, differential support.
    let mut fleet = [
        device(anchors, 0x1001, 1, true, &v1),
        device(anchors, 0x1002, 2, true, &v2),
        device(anchors, 0x1003, 3, true, &v3), // already current
        device(anchors, 0x1004, 1, false, &v1), // cannot patch: full image
    ];

    // One tracer for the whole round: device flash/agent events route
    // through each layout, session events through each session, scheduler
    // picks through this loop. Installed after provisioning so the trace
    // covers the update itself, not the factory image writes.
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
    for dev in &mut fleet {
        dev.layout.set_tracer(tracer.clone());
    }
    let device_ids: Vec<u32> = fleet.iter().map(|d| d.device_id).collect();

    let link = LinkProfile::ieee802154_6lowpan();
    let routers: Vec<BorderRouter> = fleet.iter().map(|_| BorderRouter::new()).collect();

    // One resumable session per device, all stepped by this one thread.
    let mut lanes: Vec<(PullSession, PullEndpoints<'_>, u64)> = fleet
        .iter_mut()
        .zip(&routers)
        .map(|(dev, router)| {
            let plan = UpdatePlan {
                target_slot: standard::SLOT_B,
                current_slot: standard::SLOT_A,
                installed_version: Version(dev.installed),
                installed_size: dev.installed_size,
                allowed_link_offsets: vec![0],
                max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
            };
            let mut session = PullSession::new(
                LossyLink::reliable(link),
                RetryPolicy::for_link(&link),
                u64::from(dev.device_id),
            );
            session.set_tracer(tracer.clone());
            let endpoints = PullEndpoints::new(
                &server,
                router,
                &mut dev.agent,
                &mut dev.layout,
                plan,
                dev.device_id ^ 0x5555,
            );
            (session, endpoints, 0u64)
        })
        .collect();

    // Virtual-clock interleave: always advance the session whose next
    // event is earliest; record each session's finish time.
    println!("fleet update round (server at v3), four sessions on one thread:");
    let mut reports: Vec<Option<(u64, SessionReport)>> = vec![None; lanes.len()];
    let mut events = 0u64;
    while reports.iter().any(Option::is_none) {
        let idx = (0..lanes.len())
            .filter(|&i| reports[i].is_none())
            .min_by_key(|&i| lanes[i].2)
            .expect("an unfinished session");
        let (session, endpoints, clock) = &mut lanes[idx];
        // The earliest unfinished lane is chosen each iteration, so these
        // dispatch times (and the trace clock) only move forward.
        let at_micros = *clock;
        tracer.advance_now_to(at_micros);
        let dispatched = u64::from(device_ids[idx]);
        tracer.emit(|| Event::SchedulerDispatch {
            device: dispatched,
            at_micros,
        });
        match session.step(endpoints) {
            Step::Progress(event) => {
                *clock += event.cost_micros;
                events += 1;
            }
            Step::Done(report) => {
                *clock = session.virtual_elapsed_micros();
                reports[idx] = Some((*clock, report));
            }
        }
    }
    drop(lanes);
    println!("  {events} link events interleaved across the fleet\n");

    let mut finish_order: Vec<(usize, u64)> = reports
        .iter()
        .map(|r| r.as_ref().expect("finished").0)
        .enumerate()
        .collect();
    finish_order.sort_by_key(|&(_, t)| t);
    for (idx, t) in finish_order {
        let dev = &fleet[idx];
        let (_, report) = reports[idx].as_ref().expect("finished");
        println!(
            "  t={:6.1}s  device {:#x} (v{}, diff={}): {}, {} bytes on the wire",
            t as f64 / 1e6,
            dev.device_id,
            dev.installed,
            dev.differential,
            kind(&report.outcome),
            report.accounting.bytes_to_device
        );
    }
    println!(
        "\nsmall deltas finish first: completion follows wire time, not the\n\
         order the sessions were started in"
    );

    // Dump the merged trace as NDJSON — one line per event, timestamps in
    // virtual microseconds, monotone across all four interleaved sessions.
    let trace_path =
        std::env::var("UPKIT_TRACE").unwrap_or_else(|_| "target/pull_fleet.trace.ndjson".into());
    let records = sink.drain();
    if let Some(parent) = std::path::Path::new(&trace_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let mut file = std::fs::File::create(&trace_path).expect("trace file");
    for record in &records {
        writeln!(file, "{}", record.to_ndjson()).expect("trace write");
    }
    let snap = tracer.counters().snapshot();
    println!(
        "\ntrace: {} events -> {trace_path}\n\
         counters: {} bytes to devices, {} frames, {} signature checks,\n\
         {} flash bytes written, {} sectors erased",
        records.len(),
        snap.link_bytes_to_device,
        snap.frames_sent,
        snap.sig_verifications,
        snap.total_flash_writes(),
        snap.total_erases(),
    );
}

fn kind(outcome: &upkit::net::SessionOutcome) -> &'static str {
    match outcome {
        upkit::net::SessionOutcome::Complete => "updated to v3",
        upkit::net::SessionOutcome::NoUpdateAvailable => "already current",
        _ => "failed",
    }
}
