//! Factory provisioning with a secure element, plus payload encryption.
//!
//! Walks the CC2650 + ATECC508 deployment the paper evaluates: the factory
//! provisions the vendor and update-server public keys into the HSM's key
//! slots and locks the data zone (after which nobody — including an
//! attacker with flash write access — can swap the trust anchors), then an
//! encrypted update flows through the pipeline's decryption stage.
//!
//! ```text
//! cargo run --example secure_element
//! ```

use std::sync::Arc;

use rand::SeedableRng;
use upkit::core::agent::{AgentConfig, AgentPhase, UpdateAgent, UpdatePlan};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::FIRMWARE_OFFSET;
use upkit::core::keys::TrustAnchors;
use upkit::crypto::ecdsa::SigningKey;
use upkit::crypto::hsm::SimulatedHsm;
use upkit::flash::{configuration_b, standard, FlashGeometry, SimFlash};
use upkit::manifest::Version;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(508);

    // --- Factory floor -----------------------------------------------------
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let content_key = [0xC0u8; 32];

    let hsm = SimulatedHsm::new();
    hsm.provision(0, vendor.verifying_key()).expect("unlocked");
    hsm.provision(1, server.verifying_key()).expect("unlocked");
    hsm.lock_data_zone();
    println!("factory: trust anchors in HSM slots 0/1, data zone locked");

    // An attacker with code execution cannot replace the anchors anymore.
    let attacker = SigningKey::generate(&mut rng);
    assert!(hsm.provision(0, attacker.verifying_key()).is_err());
    println!("attacker: re-provisioning attempt rejected by the locked zone");

    // --- Release with confidentiality ----------------------------------------
    server.set_content_key(content_key);
    let firmware = vec![0x0D; 30_000];
    server.publish(vendor.release(firmware.clone(), Version(2), 0, 0xA));

    // --- Device: CC2650-style static layout (staging on external flash) -----
    let slot_size = 4096 * 10;
    let mut layout = configuration_b(
        Box::new(SimFlash::new(FlashGeometry::internal_cc2650())),
        Some(Box::new(SimFlash::new(FlashGeometry::external_spi_nor()))),
        slot_size,
    )
    .expect("valid layout");
    let mut agent = UpdateAgent::new(
        Arc::new(hsm),
        TrustAnchors::hsm(0, 1),
        AgentConfig {
            device_id: 0x2650,
            app_id: 0xA,
            supports_differential: false,
            content_key: Some(content_key),
        },
    );

    // --- Encrypted update ------------------------------------------------------
    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(1),
        installed_size: 0,
        allowed_link_offsets: vec![0],
        max_firmware_size: slot_size - FIRMWARE_OFFSET,
    };
    let token = agent
        .request_device_token(&mut layout, plan, 0xA11CE)
        .expect("idle agent");
    let prepared = server.prepare_update(&token).expect("newer release");
    assert_ne!(
        prepared.image.payload, firmware,
        "wire payload is ciphertext"
    );
    println!(
        "server: payload encrypted ({} bytes on the wire, ciphertext)",
        prepared.image.payload.len()
    );

    let mut phase = AgentPhase::NeedMore;
    for chunk in prepared.image.to_bytes().chunks(64) {
        phase = agent.push_data(&mut layout, chunk).expect("valid update");
    }
    assert_eq!(phase, AgentPhase::Complete);

    let mut stored = vec![0u8; firmware.len()];
    layout
        .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut stored)
        .expect("read back");
    assert_eq!(stored, firmware);
    println!("device: pipeline decrypted in flight; stored firmware matches the release");
    println!("        signatures verified in HSM hardware, keys never touched flash");
}
