//! Cross-crate integration tests: complete updates through every major
//! configuration axis (approach × slot mode × crypto backend × update
//! kind), plus multi-step version chains.

use upkit::manifest::Version;

use upkit::sim::{run_scenario, Approach, CryptoChoice, ScenarioConfig, SlotMode, UpdateKind};

fn base_config() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::fig8a(Approach::Push);
    cfg.firmware_size = 20_000; // keep the matrix fast
    cfg
}

#[test]
fn full_matrix_of_configurations_completes() {
    let mut failures = Vec::new();
    for approach in [Approach::Push, Approach::Pull] {
        for slot_mode in [
            SlotMode::AB,
            SlotMode::Static { swap: true },
            SlotMode::Static { swap: false },
        ] {
            for crypto in [
                CryptoChoice::TinyCrypt,
                CryptoChoice::TinyDtls,
                CryptoChoice::Hsm,
            ] {
                for kind in [
                    UpdateKind::Full,
                    UpdateKind::DiffOsChange,
                    UpdateKind::DiffAppChange { bytes: 500 },
                ] {
                    let mut cfg = base_config();
                    cfg.approach = approach;
                    cfg.slot_mode = slot_mode;
                    cfg.crypto = crypto;
                    cfg.update_kind = kind;
                    cfg.seed = 1000;
                    let result = run_scenario(&cfg);
                    let ok =
                        result.outcome.is_complete() && result.running_version == Some(Version(2));
                    if !ok {
                        failures.push(format!(
                            "{approach:?}/{slot_mode:?}/{crypto:?}/{kind:?}: {:?} -> {:?}",
                            result.outcome, result.running_version
                        ));
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "failed configurations:\n{}",
        failures.join("\n")
    );
}

#[test]
fn differential_moves_fewer_bytes_in_every_configuration() {
    for approach in [Approach::Push, Approach::Pull] {
        let mut cfg = base_config();
        cfg.approach = approach;
        cfg.update_kind = UpdateKind::Full;
        let full = run_scenario(&cfg);
        cfg.update_kind = UpdateKind::DiffAppChange { bytes: 300 };
        let diff = run_scenario(&cfg);
        assert!(
            diff.payload_bytes < full.payload_bytes / 3,
            "{approach:?}: diff {} vs full {}",
            diff.payload_bytes,
            full.payload_bytes
        );
    }
}

#[test]
fn static_swap_preserves_rollback_image() {
    let mut cfg = base_config();
    cfg.slot_mode = SlotMode::Static { swap: true };
    let result = run_scenario(&cfg);
    assert!(result.outcome.is_complete());
    let boot = result.boot.expect("booted");
    assert_eq!(boot.version, Version(2));
    assert_eq!(
        boot.action,
        upkit::core::bootloader::BootAction::SwappedAndBooted
    );
}

#[test]
fn ab_mode_boots_in_place_without_flash_writes() {
    let mut cfg = base_config();
    cfg.slot_mode = SlotMode::AB;
    let result = run_scenario(&cfg);
    assert!(result.outcome.is_complete());
    let boot = result.boot.expect("booted");
    assert_eq!(
        boot.action,
        upkit::core::bootloader::BootAction::JumpedInPlace
    );
    // A/B loading ≈ reboot time only.
    assert!(
        result.phases.loading_micros < cfg.platform.reboot_micros + 2_000_000,
        "loading {}",
        result.phases.loading_micros
    );
}

#[test]
fn sequential_version_chain_v1_to_v4() {
    const FLEET_DEVICE: u32 = 0x000F_1EE7;
    // Repeated updates drive the device up a version chain, alternating
    // slots — the steady-state A/B lifecycle.
    use std::sync::Arc;
    use upkit::core::agent::{AgentConfig, AgentPhase, UpdateAgent, UpdatePlan};
    use upkit::core::bootloader::{BootConfig, BootMode, Bootloader};
    use upkit::core::generation::{UpdateServer, VendorServer};
    use upkit::core::image::FIRMWARE_OFFSET;
    use upkit::core::keys::TrustAnchors;
    use upkit::crypto::backend::TinyCryptBackend;
    use upkit::crypto::ecdsa::SigningKey;
    use upkit::flash::{configuration_a, standard, FlashGeometry, SimFlash, SlotId};
    use upkit::sim::FirmwareGenerator;

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());

    let slot_size = 4096 * 12;
    let mut layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        slot_size,
    )
    .unwrap();
    let backend = Arc::new(TinyCryptBackend);

    // Install v1.
    let generator = FirmwareGenerator::new(77);
    let mut current_fw = generator.base(10_000);
    {
        use upkit::crypto::sha256::sha256;
        use upkit::manifest::{Manifest, SignedManifest};
        let manifest = Manifest {
            device_id: FLEET_DEVICE,
            nonce: 0,
            old_version: Version(0),
            version: Version(1),
            size: current_fw.len() as u32,
            payload_size: current_fw.len() as u32,
            digest: sha256(&current_fw),
            link_offset: 0,
            app_id: 0xA,
        };
        let signed = SignedManifest {
            manifest,
            vendor_signature: vendor.sign_manifest_core(&manifest),
            server_signature: server.sign_manifest(&manifest),
        };
        layout.erase_slot(standard::SLOT_A).unwrap();
        upkit::core::image::write_manifest(&mut layout, standard::SLOT_A, &signed).unwrap();
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &current_fw)
            .unwrap();
    }

    let mut agent = UpdateAgent::new(
        backend.clone(),
        anchors,
        AgentConfig {
            device_id: FLEET_DEVICE,
            app_id: 0xA,
            supports_differential: true,
            content_key: None,
        },
    );
    let bootloader = Bootloader::new(
        backend,
        anchors,
        BootConfig {
            device_id: FLEET_DEVICE,
            app_id: 0xA,
            allowed_link_offsets: vec![0],
            max_firmware_size: slot_size - FIRMWARE_OFFSET,
            mode: BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
            recovery_slot: None,
        },
    );

    let mut running_slot = standard::SLOT_A;
    for version in 2u16..=4 {
        let new_fw = generator.app_change(&current_fw, 400 + usize::from(version));
        server.publish(vendor.release(current_fw.clone(), Version(version - 1), 0, 0xA));
        server.publish(vendor.release(new_fw.clone(), Version(version), 0, 0xA));

        let target: SlotId = if running_slot == standard::SLOT_A {
            standard::SLOT_B
        } else {
            standard::SLOT_A
        };
        let plan = UpdatePlan {
            target_slot: target,
            current_slot: running_slot,
            installed_version: Version(version - 1),
            installed_size: current_fw.len() as u32,
            allowed_link_offsets: vec![0],
            max_firmware_size: slot_size - FIRMWARE_OFFSET,
        };
        let token = agent
            .request_device_token(&mut layout, plan, u32::from(version) * 71)
            .unwrap();
        let prepared = server.prepare_update(&token).unwrap();
        let mut phase = AgentPhase::NeedMore;
        for chunk in prepared.image.to_bytes().chunks(244) {
            phase = agent.push_data(&mut layout, chunk).unwrap();
        }
        assert_eq!(phase, AgentPhase::Complete, "v{version} transfer");
        agent.reset(&mut layout).unwrap();

        let outcome = bootloader.boot(&mut layout).unwrap();
        assert_eq!(outcome.version, Version(version), "booted after v{version}");
        running_slot = outcome.booted_slot;
        current_fw = new_fw;
    }
}

#[test]
fn energy_accounting_is_positive_and_scales_with_size() {
    let mut cfg = base_config();
    cfg.firmware_size = 10_000;
    let small = run_scenario(&cfg);
    cfg.firmware_size = 40_000;
    cfg.seed = cfg.seed.wrapping_add(1);
    let large = run_scenario(&cfg);
    assert!(small.energy_uj > 0.0);
    assert!(large.energy_uj > small.energy_uj);
}

#[test]
fn no_update_available_costs_almost_nothing() {
    // The polling steady state: server has nothing newer.
    let mut cfg = base_config();
    cfg.update_kind = UpdateKind::Full;
    let result = run_scenario(&cfg);
    assert!(result.outcome.is_complete());
    // Now a fresh scenario where the installed version equals the newest:
    // modeled by the drivers' NoUpdateAvailable path, covered in upkit-net
    // unit tests; here we assert the complete path set the right version.
    assert_eq!(result.running_version, Some(Version(2)));
}
