//! Property-based equivalence: the stepped session state machines must
//! reproduce the legacy round-trip drivers *exactly* — same outcome, same
//! byte/chunk/round-trip/elapsed accounting — across firmware sizes, link
//! profiles, full and differential updates, and loss seeds.
//!
//! The pre-refactor driver loops are preserved verbatim as
//! `reference_push_session` / `reference_pull_session` (doc-hidden) for
//! this purpose.

use proptest::prelude::*;
use std::sync::Arc;

use upkit::core::agent::{AgentConfig, UpdateAgent, UpdatePlan};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::FIRMWARE_OFFSET;
use upkit::core::keys::TrustAnchors;
use upkit::crypto::backend::TinyCryptBackend;
use upkit::crypto::ecdsa::SigningKey;
use upkit::flash::{configuration_a, standard, FlashGeometry, MemoryLayout, SimFlash};
use upkit::manifest::Version;
use upkit::net::drivers::{reference_pull_session, reference_push_session};
use upkit::net::{
    run_pull_session, run_push_session, BorderRouter, LinkProfile, LossyLink, PushEndpoints,
    PushSession, RetryPolicy, Smartphone, Transport,
};
use upkit::sim::FirmwareGenerator;

const SLOT_SIZE: u32 = 4096 * 16;
const APP_ID: u32 = 0xA;

struct World {
    server: UpdateServer,
    agent: UpdateAgent,
    layout: MemoryLayout,
    plan: UpdatePlan,
}

/// A device running signed v1 with v1 and v2 published, so the server can
/// serve either a full image or (for differential-capable agents) a delta.
fn world(seed: u64, fw_size: usize, differential: bool) -> World {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());

    let generator = FirmwareGenerator::new(seed);
    let v1 = generator.base(fw_size);
    let v2 = generator.os_version_change(&v1);
    server.publish(vendor.release(v1.clone(), Version(1), 0, APP_ID));
    server.publish(vendor.release(v2, Version(2), 0, APP_ID));

    let mut layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry {
            size: 4096 * 64,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        })),
        SLOT_SIZE,
    )
    .unwrap();

    // Install signed v1 in slot A — the differential patch base.
    let manifest = upkit::manifest::Manifest {
        device_id: 0xD,
        nonce: 0,
        old_version: Version(0),
        version: Version(1),
        size: v1.len() as u32,
        payload_size: v1.len() as u32,
        digest: upkit::crypto::sha256::sha256(&v1),
        link_offset: 0,
        app_id: APP_ID,
    };
    let signed = upkit::manifest::SignedManifest {
        manifest,
        vendor_signature: vendor.sign_manifest_core(&manifest),
        server_signature: server.sign_manifest(&manifest),
    };
    layout.erase_slot(standard::SLOT_A).unwrap();
    upkit::core::image::write_manifest(&mut layout, standard::SLOT_A, &signed).unwrap();
    layout
        .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &v1)
        .unwrap();

    let agent = UpdateAgent::new(
        Arc::new(TinyCryptBackend),
        anchors,
        AgentConfig {
            device_id: 0xD,
            app_id: APP_ID,
            supports_differential: differential,
            content_key: None,
        },
    );
    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(1),
        installed_size: v1.len() as u32,
        allowed_link_offsets: vec![0],
        max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
    };
    World {
        server,
        agent,
        layout,
        plan,
    }
}

fn link_profile(use_ble: bool) -> LinkProfile {
    if use_ble {
        LinkProfile::ble_gatt()
    } else {
        LinkProfile::ieee802154_6lowpan()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stepped_push_equals_reference_driver(
        seed in any::<u64>(),
        fw_size in 2_000usize..16_000,
        differential in any::<bool>(),
        use_ble in any::<bool>(),
        nonce in 1u32..u32::MAX,
    ) {
        let link = link_profile(use_ble);
        let mut stepped_world = world(seed, fw_size, differential);
        let stepped = run_push_session(
            &stepped_world.server,
            &mut Smartphone::new(),
            &mut stepped_world.agent,
            &mut stepped_world.layout,
            stepped_world.plan.clone(),
            nonce,
            &link,
        );
        let mut legacy_world = world(seed, fw_size, differential);
        let legacy = reference_push_session(
            &legacy_world.server,
            &mut Smartphone::new(),
            &mut legacy_world.agent,
            &mut legacy_world.layout,
            legacy_world.plan.clone(),
            nonce,
            &link,
        );
        prop_assert_eq!(stepped, legacy);
    }

    #[test]
    fn stepped_pull_equals_reference_driver(
        seed in any::<u64>(),
        fw_size in 2_000usize..16_000,
        differential in any::<bool>(),
        use_ble in any::<bool>(),
        nonce in 1u32..u32::MAX,
    ) {
        let link = link_profile(use_ble);
        let mut stepped_world = world(seed, fw_size, differential);
        let stepped = run_pull_session(
            &stepped_world.server,
            &BorderRouter::new(),
            &mut stepped_world.agent,
            &mut stepped_world.layout,
            stepped_world.plan.clone(),
            nonce,
            &link,
        );
        let mut legacy_world = world(seed, fw_size, differential);
        let legacy = reference_pull_session(
            &legacy_world.server,
            &BorderRouter::new(),
            &mut legacy_world.agent,
            &mut legacy_world.layout,
            legacy_world.plan.clone(),
            nonce,
            &link,
        );
        prop_assert_eq!(stepped, legacy);
    }

    #[test]
    fn lossy_sessions_are_seed_deterministic(
        seed in any::<u64>(),
        loss_seed in any::<u64>(),
        rate_permille in 0u32..400,
    ) {
        // Same Bernoulli stream → byte-for-byte identical reports, the
        // property the event scheduler's determinism rests on.
        let rate = f64::from(rate_permille) / 1000.0;
        let link = LinkProfile::ble_gatt();
        let run = |_: ()| {
            let mut w = world(seed, 4_000, false);
            let mut phone = Smartphone::new();
            let mut session = PushSession::new(
                LossyLink::bernoulli(link, rate, loss_seed),
                RetryPolicy::for_link(&link),
                loss_seed,
            );
            let mut endpoints = PushEndpoints::new(
                &w.server,
                &mut phone,
                &mut w.agent,
                &mut w.layout,
                w.plan.clone(),
                9,
            );
            session.run_to_completion(&mut endpoints)
        };
        prop_assert_eq!(run(()), run(()));
    }

    #[test]
    fn zero_loss_rate_matches_reliable_link_for_any_seed(
        seed in any::<u64>(),
        loss_seed in any::<u64>(),
    ) {
        // A 0.0-rate Bernoulli link must be indistinguishable from the
        // reliable link regardless of its seed.
        let link = LinkProfile::ieee802154_6lowpan();
        let run = |lossy: LossyLink| {
            let mut w = world(seed, 3_000, false);
            let mut phone = Smartphone::new();
            let mut session = PushSession::new(lossy, RetryPolicy::for_link(&link), 1);
            let mut endpoints = PushEndpoints::new(
                &w.server,
                &mut phone,
                &mut w.agent,
                &mut w.layout,
                w.plan.clone(),
                9,
            );
            session.run_to_completion(&mut endpoints)
        };
        prop_assert_eq!(
            run(LossyLink::bernoulli(link, 0.0, loss_seed)),
            run(LossyLink::reliable(link))
        );
    }
}
