//! Regression lock: the session-layer refactor must not change the
//! Fig. 8a / Fig. 8c scenario numbers or the zero-loss `loss_sweep` row.
//!
//! The constants below were captured from the pre-refactor round-trip
//! drivers. `run_scenario` now builds resumable sessions and steps them to
//! completion, so these asserts pin the equivalence charge for charge: any
//! reordering of token, round-trip, or chunk accounting inside the session
//! state machine shows up here as a one-microsecond diff.

use upkit::net::{LinkProfile, LossyLink, TransferAccounting};
use upkit::sim::{run_scenario, Approach, ScenarioConfig, SlotMode};

#[test]
fn fig8a_push_numbers_are_unchanged() {
    let push = run_scenario(&ScenarioConfig::fig8a(Approach::Push));
    assert_eq!(push.phases.propagation_micros, 47_139_356);
    assert_eq!(push.phases.verification_micros, 588_734);
    assert_eq!(push.phases.loading_micros, 12_000_336);
    assert_eq!(
        push.accounting,
        TransferAccounting {
            bytes_to_device: 101_724,
            bytes_from_device: 10,
            chunks: 419,
            round_trips: 2,
            elapsed_micros: 41_861_100,
        }
    );
}

#[test]
fn fig8a_pull_numbers_are_unchanged() {
    let pull = run_scenario(&ScenarioConfig::fig8a(Approach::Pull));
    assert_eq!(pull.phases.propagation_micros, 44_519_976);
    assert_eq!(pull.phases.verification_micros, 588_734);
    assert_eq!(pull.phases.loading_micros, 24_294_944);
    assert_eq!(
        pull.accounting,
        TransferAccounting {
            bytes_to_device: 101_724,
            bytes_from_device: 10,
            chunks: 1_591,
            round_trips: 1_591,
            elapsed_micros: 36_776_720,
        }
    );
}

#[test]
fn fig8c_ab_loading_number_is_unchanged() {
    let mut cfg = ScenarioConfig::fig8a(Approach::Push);
    cfg.slot_mode = SlotMode::AB;
    let ab = run_scenario(&cfg);
    // Propagation/verification identical to the static run; only loading
    // changes (Fig. 8c's ~92 % reduction).
    assert_eq!(ab.phases.propagation_micros, 47_139_356);
    assert_eq!(ab.phases.verification_micros, 588_734);
    assert_eq!(ab.phases.loading_micros, 1_401_536);
}

#[test]
fn loss_sweep_zero_loss_row_is_unchanged() {
    // The analytic `loss_sweep` accounting at rate 0 must equal the old
    // `drop_every_nth = 0` behaviour exactly.
    let link = LossyLink::bernoulli(LinkProfile::ieee802154_6lowpan(), 0.0, 0);
    let mut acc = TransferAccounting::default();
    link.charge_to_device(&mut acc, 100_000);
    for _ in 0..link.link.chunks_for(100_000) {
        acc.charge_round_trip(&link.link);
    }
    assert_eq!(
        acc,
        TransferAccounting {
            bytes_to_device: 100_000,
            bytes_from_device: 0,
            chunks: 1_563,
            round_trips: 1_563,
            elapsed_micros: 36_134_000,
        }
    );
}

mod lossy_pins {
    use std::sync::Arc;

    use upkit::core::image::FIRMWARE_OFFSET;
    use upkit::flash::{standard, SimFlash};
    use upkit::net::{
        BorderRouter, LinkProfile, LossyLink, PullEndpoints, PullSession, PushEndpoints,
        PushSession, RetryPolicy, SessionOutcome, Smartphone, Step, Transport,
    };
    use upkit::sim::{update_world, world_geometry, WorldConfig};
    use upkit::trace::{MemorySink, Tracer};

    const LOSS_RATE: f64 = 0.10;
    const SEED: u64 = 4242;

    struct LossyRun {
        outcome: SessionOutcome,
        frames_sent: u64,
        frames_lost: u64,
        retries: u64,
        digest_ok: bool,
    }

    fn run(pull: bool) -> LossyRun {
        let config = WorldConfig::ab(SEED);
        let mut world = update_world(&config, Box::new(SimFlash::new(world_geometry(&config))));
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        world.layout.set_tracer(tracer.clone());

        let outcome = if pull {
            let link = LinkProfile::ieee802154_6lowpan();
            let mut session = PullSession::new(
                LossyLink::bernoulli(link, LOSS_RATE, SEED),
                RetryPolicy::for_link(&link),
                0,
            );
            session.set_tracer(tracer.clone());
            let router = BorderRouter::new();
            let mut endpoints = PullEndpoints::new(
                &world.server,
                &router,
                &mut world.agent,
                &mut world.layout,
                world.plan.clone(),
                SEED as u32 | 1,
            );
            loop {
                if let Step::Done(report) = session.step(&mut endpoints) {
                    break report.outcome;
                }
            }
        } else {
            let link = LinkProfile::ble_gatt();
            let mut session = PushSession::new(
                LossyLink::bernoulli(link, LOSS_RATE, SEED),
                RetryPolicy::for_link(&link),
                0,
            );
            session.set_tracer(tracer.clone());
            let mut phone = Smartphone::new();
            let mut endpoints = PushEndpoints::new(
                &world.server,
                &mut phone,
                &mut world.agent,
                &mut world.layout,
                world.plan.clone(),
                SEED as u32 | 1,
            );
            loop {
                if let Step::Done(report) = session.step(&mut endpoints) {
                    break report.outcome;
                }
            }
        };

        let snapshot = tracer.counters().snapshot();
        let mut installed = vec![0u8; world.firmware_v2.len()];
        world
            .layout
            .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut installed)
            .expect("slot B readable");
        LossyRun {
            outcome,
            frames_sent: snapshot.frames_sent,
            frames_lost: snapshot.frames_lost,
            retries: snapshot.retries,
            digest_ok: installed == world.firmware_v2,
        }
    }

    // The two pins below freeze the seeded loss stream end to end: the
    // Bernoulli sampler, the retry policy, and the frame accounting. Any
    // change to sampling order or retry bookkeeping moves these integers.

    #[test]
    fn seeded_ten_percent_loss_push_run_is_pinned() {
        let run = run(false);
        assert!(matches!(run.outcome, SessionOutcome::Complete));
        assert!(run.digest_ok, "slot B must hold the exact v2 image");
        assert_eq!(
            (run.frames_sent, run.frames_lost, run.retries),
            (188, 16, 16),
            "push frame accounting moved"
        );
    }

    #[test]
    fn seeded_ten_percent_loss_pull_run_is_pinned() {
        let run = run(true);
        assert!(matches!(run.outcome, SessionOutcome::Complete));
        assert!(run.digest_ok, "slot B must hold the exact v2 image");
        assert_eq!(
            (run.frames_sent, run.frames_lost, run.retries),
            (738, 86, 86),
            "pull frame accounting moved"
        );
    }
}

mod dissemination_pins {
    use std::sync::Arc;

    use upkit::sim::{run_dissemination_traced, TopologyConfig};
    use upkit::trace::{MemorySink, Tracer};

    fn tree() -> TopologyConfig {
        TopologyConfig {
            firmware_size: 1_200,
            block_size: 256,
            ..TopologyConfig::default()
        }
    }

    // The two pins below freeze the dissemination stack end to end: the
    // poll-spread schedule, the caching proxy's hit/miss/single-flight
    // bookkeeping, the backhaul transfer model, and the per-session frame
    // accounting. Any reordering inside the topology event loop or the
    // proxy cache moves these integers.

    #[test]
    fn zero_loss_tree_fan_out_is_pinned() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let report = run_dissemination_traced(&tree(), &tracer);
        let counters = tracer.counters().snapshot();
        assert_eq!(report.completed, 8);
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.image_mismatches, 0);
        assert_eq!(
            report.downstream_wire_bytes, 23_472,
            "access-mesh wire bytes moved"
        );
        assert_eq!(report.upstream_bytes, 2_924, "backhaul bytes moved");
        assert_eq!(
            (
                report.upstream_fetches,
                report.cache_hits,
                report.cache_misses,
                report.single_flight_joins,
            ),
            (12, 11, 12, 73),
            "proxy cache bookkeeping moved"
        );
        assert_eq!(report.events, 376);
        assert_eq!(report.makespan_micros, 1_344_288);
        assert_eq!(
            (counters.frames_sent, counters.frames_lost, counters.retries),
            (368, 0, 0),
            "zero-loss frame accounting moved"
        );
    }

    #[test]
    fn seeded_ten_percent_loss_dissemination_is_pinned() {
        let config = TopologyConfig {
            loss_rate: 0.10,
            seed: 4242,
            max_poll_attempts: 24,
            ..tree()
        };
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let report = run_dissemination_traced(&config, &tracer);
        let counters = tracer.counters().snapshot();
        assert_eq!(report.completed, 8);
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.image_mismatches, 0);
        assert_eq!(report.downstream_wire_bytes, 26_160);
        // Loss costs downstream retransmissions, never extra upstream
        // fetches: the cache still pulls each block once.
        assert_eq!(report.upstream_bytes, 2_924);
        assert_eq!(report.upstream_fetches, 12);
        assert_eq!(report.makespan_micros, 1_908_094);
        assert_eq!(
            (counters.frames_sent, counters.frames_lost, counters.retries),
            (410, 42, 42),
            "seeded loss stream accounting moved"
        );
    }
}
