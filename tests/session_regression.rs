//! Regression lock: the session-layer refactor must not change the
//! Fig. 8a / Fig. 8c scenario numbers or the zero-loss `loss_sweep` row.
//!
//! The constants below were captured from the pre-refactor round-trip
//! drivers. `run_scenario` now builds resumable sessions and steps them to
//! completion, so these asserts pin the equivalence charge for charge: any
//! reordering of token, round-trip, or chunk accounting inside the session
//! state machine shows up here as a one-microsecond diff.

use upkit::net::{LinkProfile, LossyLink, TransferAccounting};
use upkit::sim::{run_scenario, Approach, ScenarioConfig, SlotMode};

#[test]
fn fig8a_push_numbers_are_unchanged() {
    let push = run_scenario(&ScenarioConfig::fig8a(Approach::Push));
    assert_eq!(push.phases.propagation_micros, 47_139_356);
    assert_eq!(push.phases.verification_micros, 588_734);
    assert_eq!(push.phases.loading_micros, 12_000_336);
    assert_eq!(
        push.accounting,
        TransferAccounting {
            bytes_to_device: 101_724,
            bytes_from_device: 10,
            chunks: 419,
            round_trips: 2,
            elapsed_micros: 41_861_100,
        }
    );
}

#[test]
fn fig8a_pull_numbers_are_unchanged() {
    let pull = run_scenario(&ScenarioConfig::fig8a(Approach::Pull));
    assert_eq!(pull.phases.propagation_micros, 44_519_976);
    assert_eq!(pull.phases.verification_micros, 588_734);
    assert_eq!(pull.phases.loading_micros, 24_294_944);
    assert_eq!(
        pull.accounting,
        TransferAccounting {
            bytes_to_device: 101_724,
            bytes_from_device: 10,
            chunks: 1_591,
            round_trips: 1_591,
            elapsed_micros: 36_776_720,
        }
    );
}

#[test]
fn fig8c_ab_loading_number_is_unchanged() {
    let mut cfg = ScenarioConfig::fig8a(Approach::Push);
    cfg.slot_mode = SlotMode::AB;
    let ab = run_scenario(&cfg);
    // Propagation/verification identical to the static run; only loading
    // changes (Fig. 8c's ~92 % reduction).
    assert_eq!(ab.phases.propagation_micros, 47_139_356);
    assert_eq!(ab.phases.verification_micros, 588_734);
    assert_eq!(ab.phases.loading_micros, 1_401_536);
}

#[test]
fn loss_sweep_zero_loss_row_is_unchanged() {
    // The analytic `loss_sweep` accounting at rate 0 must equal the old
    // `drop_every_nth = 0` behaviour exactly.
    let link = LossyLink::bernoulli(LinkProfile::ieee802154_6lowpan(), 0.0, 0);
    let mut acc = TransferAccounting::default();
    link.charge_to_device(&mut acc, 100_000);
    for _ in 0..link.link.chunks_for(100_000) {
        acc.charge_round_trip(&link.link);
    }
    assert_eq!(
        acc,
        TransferAccounting {
            bytes_to_device: 100_000,
            bytes_from_device: 0,
            chunks: 1_563,
            round_trips: 1_563,
            elapsed_micros: 36_134_000,
        }
    );
}
