//! Power loss during the boot-time slot swap: the static-configuration
//! hazard that A/B updates and the recovery slot exist to mitigate.
//!
//! The paper's loading phase for Configuration B swaps the staging slot
//! into the bootable slot sector by sector. A power cut mid-swap leaves
//! *both* slots partially written — unlike a cut during propagation, which
//! the agent/bootloader double verification always survives. These tests
//! demonstrate the full risk ladder:
//!
//! 1. static swap + mid-swap cut + no recovery → the device can brick;
//! 2. the same cut with a recovery slot → restored to the factory image;
//! 3. A/B mode has no swap at all, so no cut during loading can brick it.

use std::sync::Arc;

use rand::SeedableRng;
use upkit::core::bootloader::{BootAction, BootConfig, BootError, BootMode, Bootloader};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::{write_manifest, FIRMWARE_OFFSET};
use upkit::core::keys::TrustAnchors;
use upkit::crypto::backend::TinyCryptBackend;
use upkit::crypto::ecdsa::SigningKey;
use upkit::crypto::sha256::sha256;
use upkit::flash::layout::configuration_a_with_recovery;
use upkit::flash::{configuration_b, standard, FlashGeometry, MemoryLayout, SimFlash, SlotId};
use upkit::manifest::{Manifest, SignedManifest, Version};

const SLOT_SIZE: u32 = 4096 * 4;
const DEV: u32 = 0x5A5A;

struct World {
    vendor: VendorServer,
    server: UpdateServer,
    anchors: TrustAnchors,
}

fn world(seed: u64) -> World {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    World {
        vendor,
        server,
        anchors,
    }
}

fn install(w: &World, layout: &mut MemoryLayout, slot: SlotId, version: u16, fill: u8) {
    let fw = vec![fill; 6_000];
    let manifest = Manifest {
        device_id: DEV,
        nonce: 0,
        old_version: Version(0),
        version: Version(version),
        size: fw.len() as u32,
        payload_size: fw.len() as u32,
        digest: sha256(&fw),
        link_offset: 0,
        app_id: 1,
    };
    let signed = SignedManifest {
        manifest,
        vendor_signature: w.vendor.sign_manifest_core(&manifest),
        server_signature: w.server.sign_manifest(&manifest),
    };
    layout.erase_slot(slot).unwrap();
    write_manifest(layout, slot, &signed).unwrap();
    layout.write_slot(slot, FIRMWARE_OFFSET, &fw).unwrap();
}

fn bootloader(w: &World, mode: BootMode, recovery: Option<SlotId>) -> Bootloader {
    Bootloader::new(
        Arc::new(TinyCryptBackend),
        w.anchors,
        BootConfig {
            device_id: DEV,
            app_id: 1,
            allowed_link_offsets: vec![0],
            max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
            mode,
            recovery_slot: recovery,
        },
    )
}

fn static_mode() -> BootMode {
    BootMode::Static {
        bootable: standard::SLOT_A,
        staging: standard::SLOT_B,
        swap: true,
    }
}

#[test]
fn mid_swap_power_cut_can_brick_a_static_device_without_recovery() {
    let w = world(1);
    let mut layout = configuration_b(
        Box::new(SimFlash::new(FlashGeometry {
            size: 4096 * 16,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        })),
        None,
        SLOT_SIZE,
    )
    .unwrap();
    install(&w, &mut layout, standard::SLOT_A, 1, 0xAA);
    install(&w, &mut layout, standard::SLOT_B, 2, 0xBB);

    // Cut power after ~1.5 swapped sectors: both slots now hold a mix.
    layout
        .device_mut(0)
        .unwrap()
        .arm_power_cut_after(16384 + 2048); // mid-erase of the second sector
    let boot = bootloader(&w, static_mode(), None);
    assert!(matches!(boot.boot(&mut layout), Err(BootError::Layout(_))));

    // Power restored; the next boot finds no intact image anywhere.
    layout.device_mut(0).unwrap().disarm_power_cut();
    assert!(
        matches!(boot.boot(&mut layout), Err(BootError::NoValidImage(_))),
        "mid-swap corruption must be visible (not silently booted)"
    );
}

#[test]
fn recovery_slot_saves_the_interrupted_swap() {
    let w = world(2);
    // Configuration A layout gives us a third (recovery) slot; drive it in
    // static mode over slots A/B with recovery fallback.
    let mut layout = configuration_a_with_recovery(
        Box::new(SimFlash::new(FlashGeometry {
            size: 4096 * 16,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        })),
        Box::new(SimFlash::new(FlashGeometry::external_spi_nor())),
        SLOT_SIZE,
    )
    .unwrap();
    install(&w, &mut layout, standard::SLOT_A, 1, 0xAA);
    install(&w, &mut layout, standard::SLOT_B, 2, 0xBB);
    install(&w, &mut layout, standard::RECOVERY, 1, 0xCC);

    layout
        .device_mut(0)
        .unwrap()
        .arm_power_cut_after(16384 + 2048); // mid-erase of the second sector
    let boot = bootloader(&w, static_mode(), Some(standard::RECOVERY));
    let _ = boot.boot(&mut layout); // interrupted mid-swap

    layout.device_mut(0).unwrap().disarm_power_cut();
    let outcome = boot
        .boot(&mut layout)
        .expect("recovery must save the device");
    assert_eq!(outcome.action, BootAction::RestoredFromRecovery);
    assert_eq!(outcome.version, Version(1));
}

#[test]
fn ab_mode_loading_has_no_swap_to_interrupt() {
    let w = world(3);
    let mut layout = configuration_a_with_recovery(
        Box::new(SimFlash::new(FlashGeometry {
            size: 4096 * 16,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        })),
        Box::new(SimFlash::new(FlashGeometry::external_spi_nor())),
        SLOT_SIZE,
    )
    .unwrap();
    install(&w, &mut layout, standard::SLOT_A, 1, 0xAA);
    install(&w, &mut layout, standard::SLOT_B, 2, 0xBB);

    // Arm an aggressive cut: A/B loading performs no writes or erases, so
    // it never trips.
    layout.device_mut(0).unwrap().arm_power_cut_after(0);
    let boot = bootloader(
        &w,
        BootMode::AB {
            slots: vec![standard::SLOT_A, standard::SLOT_B],
        },
        None,
    );
    let outcome = boot
        .boot(&mut layout)
        .expect("A/B boot needs no flash writes");
    assert_eq!(outcome.version, Version(2));
    assert_eq!(outcome.action, BootAction::JumpedInPlace);
}

// ---- multi-component mixed-set scenarios ----
//
// A multi-component install replaces several images; the hazard is no
// longer just a torn slot but a *mixed set* — some components new, some
// old. The commit journal must make the flip all-or-nothing from any cut.

mod multi {
    use upkit::core::bootloader::BootAction;
    use upkit::core::components::{set_journal_marker, JOURNAL_DONE_OFFSET};
    use upkit::flash::SimFlash;
    use upkit::manifest::Version;
    use upkit::net::SessionOutcome;
    use upkit::sim::{update_world, world_geometry, WorldConfig, WorldMode, DEFAULT_MAX_BOOTS};

    fn config(seed: u64, components: u8) -> WorldConfig {
        WorldConfig {
            seed,
            firmware_size: 6_000,
            slot_size: 4096 * 3,
            mode: WorldMode::Multi { components },
        }
    }

    /// A cut while components are still being staged (before the commit
    /// record exists) must boot the complete old set.
    #[test]
    fn cut_between_component_stagings_boots_the_complete_old_set() {
        let cfg = config(30, 3);
        let mut world = update_world(&cfg, Box::new(SimFlash::new(world_geometry(&cfg))));
        // Budget covers component 0's staging (erase 3 sectors + manifest
        // + firmware) and dies inside component 1's.
        world
            .layout
            .device_mut(0)
            .unwrap()
            .arm_power_cut_after(3 * 4096 + 7_000 + 3 * 4096 + 1_000);
        assert!(matches!(world.run_push_once(1), SessionOutcome::Incomplete));

        let report = world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS).unwrap();
        assert_eq!(report.outcome.version, Version(1));
        assert_eq!(world.component_versions(), vec![Some(Version(1)); 3]);
        assert!(!world.component_set_mixed());
    }

    /// A cut *between component swaps* of the journal replay: the record
    /// is committed, so the next boot must roll forward to the complete
    /// new set — never a mix.
    #[test]
    fn cut_between_component_swaps_rolls_forward_to_the_complete_new_set() {
        let cfg = config(31, 3);
        let mut world = update_world(&cfg, Box::new(SimFlash::new(world_geometry(&cfg))));
        assert!(matches!(world.run_push_once(1), SessionOutcome::Complete));

        // Replay component 0 by hand (one copy + its done marker), as a
        // replay interrupted right between the first and second component
        // swap would leave flash.
        let multi = world.multi.clone().unwrap();
        world
            .layout
            .copy_slot(multi.components[0].staging, multi.components[0].bootable)
            .unwrap();
        set_journal_marker(&mut world.layout, multi.journal, JOURNAL_DONE_OFFSET).unwrap();
        // Flash now holds a mixed set — but no stable boot has seen it.
        assert!(world.component_set_mixed());

        let report = world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS).unwrap();
        assert_eq!(report.outcome.version, Version(2));
        assert_eq!(world.component_versions(), vec![Some(Version(2)); 3]);
        assert!(!world.component_set_mixed());
    }

    /// Double cut mid-journal-replay: the first boot's replay is cut
    /// mid-copy, the second boot replays from the markers and completes.
    #[test]
    fn double_cut_mid_replay_still_converges_to_the_new_set() {
        let cfg = config(32, 2);
        let mut world = update_world(&cfg, Box::new(SimFlash::new(world_geometry(&cfg))));
        assert!(matches!(world.run_push_once(1), SessionOutcome::Complete));

        // First power-on: the replay dies mid-way through the copies.
        world
            .layout
            .device_mut(0)
            .unwrap()
            .arm_power_cut_after(4 * 4096);
        assert!(
            world.bootloader().boot(&mut world.layout).is_err(),
            "replay was cut"
        );
        // Second power-on: the fixed-point loop disarms the cut and the
        // replay resumes from the done markers.
        let report = world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS).unwrap();
        assert_eq!(report.outcome.version, Version(2));
        assert_eq!(world.component_versions(), vec![Some(Version(2)); 2]);
        assert!(!world.component_set_mixed());
    }

    /// The complete marker makes replay a no-op: a committed set boots
    /// stably and the journal is not replayed again.
    #[test]
    fn committed_set_boots_stably_without_replaying() {
        let cfg = config(33, 2);
        let mut world = update_world(&cfg, Box::new(SimFlash::new(world_geometry(&cfg))));
        assert!(matches!(world.run_push_once(1), SessionOutcome::Complete));
        let report = world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS).unwrap();
        assert_eq!(report.outcome.action, BootAction::BootedExisting);
        assert_eq!(report.outcome.version, Version(2));

        // A later boot moves no flash at all.
        world.layout.reset_stats();
        assert_eq!(world.reboot(), Some(Version(2)));
        assert_eq!(world.layout.total_stats().bytes_written, 0);
        assert_eq!(world.layout.total_stats().sectors_erased, 0);
    }
}
