//! Golden wire-format tests: freeze the byte layouts so accidental format
//! changes fail loudly. A real deployment has devices in the field that
//! parse these exact bytes; changing them is a compatibility break that
//! must be deliberate.

use upkit::crypto::sha256::sha256;
use upkit::manifest::{
    DeviceToken, Manifest, Version, DEVICE_TOKEN_LEN, MANIFEST_LEN, SIGNED_MANIFEST_LEN,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn format_lengths_are_frozen() {
    assert_eq!(MANIFEST_LEN, 60);
    assert_eq!(SIGNED_MANIFEST_LEN, 188);
    assert_eq!(DEVICE_TOKEN_LEN, 10);
    assert_eq!(upkit::core::image::FIRMWARE_OFFSET, 256);
    assert_eq!(upkit::compress::HEADER_LEN, 9);
    assert_eq!(upkit::delta::HEADER_LEN, 12);
    assert_eq!(upkit::delta::CONTROL_LEN, 12);
}

#[test]
fn manifest_golden_bytes() {
    let manifest = Manifest {
        device_id: 0x04030201,
        nonce: 0x08070605,
        old_version: Version(0x0A09),
        version: Version(0x0C0B),
        size: 0x100F0E0D,
        payload_size: 0x14131211,
        digest: [0xD5; 32],
        link_offset: 0x18171615,
        app_id: 0x1C1B1A19,
    };
    let expected = format!(
        "{}{}{}{}{}{}{}{}{}",
        "01020304",      // device_id LE
        "05060708",      // nonce LE
        "090a",          // old_version LE
        "0b0c",          // version LE
        "0d0e0f10",      // size LE
        "11121314",      // payload_size LE
        "d5".repeat(32), // digest
        "15161718",      // link_offset LE
        "191a1b1c",      // app_id LE
    );
    assert_eq!(hex(&manifest.to_bytes()), expected);
}

#[test]
fn device_token_golden_bytes() {
    let token = DeviceToken {
        device_id: 0x44332211,
        nonce: 0x88776655,
        current_version: Version(0xBBAA),
    };
    assert_eq!(
        hex(&token.to_bytes()),
        "11223344556677".to_owned() + "88aabb"
    );
}

#[test]
fn lzss_stream_golden_bytes() {
    // "aaaaaa": one literal 'a', then a match (dist 1, len 5) with the
    // default 12-bit window. Flags LSB-first: literal, match.
    let packed = upkit::compress::compress(b"aaaaaa", upkit::compress::Params::default());
    assert_eq!(
        hex(&packed),
        concat!(
            "4c5a5331", // "LZS1"
            "0c",       // window bits
            "06000000", // original length 6, LE
            "01",       // flag byte: 0b01 → literal, match
            "61",       // 'a'
            "0020",     // token 0x2000 LE: dist-1 = 0, len-3 = 2
        )
    );
}

#[test]
fn bsdiff_patch_golden_bytes() {
    // Identical 4-byte images: header + one control entry (diff 4, extra
    // 0, seek -4) + four zero delta bytes.
    let delta = upkit::delta::diff(b"abcd", b"abcd");
    assert_eq!(
        hex(&delta),
        format!(
            "{}{}{}{}{}{}",
            "42534431",                         // "BSD1"
            "04000000",                         // old len
            "04000000",                         // new len
            "04000000",                         // diff len
            "00000000",                         // extra len
            "fcffffff".to_owned() + "00000000"  // seek -4 LE + 4 zero deltas
        )
    );
}

#[test]
fn sha256_binding_to_fips_vector() {
    // Anchor the digest algorithm itself (already covered in unit tests;
    // re-asserted here as part of the frozen format surface because the
    // manifest digest field depends on it).
    assert_eq!(
        hex(&sha256(b"abc")),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}

#[test]
fn suit_envelope_prefix_is_stable() {
    let manifest = Manifest {
        device_id: 1,
        nonce: 2,
        old_version: Version(0),
        version: Version(3),
        size: 4,
        payload_size: 4,
        digest: [0; 32],
        link_offset: 5,
        app_id: 6,
    };
    let envelope = upkit::manifest::suit::to_suit_envelope(&manifest);
    // Map(5) ‖ key 1 ‖ uint 1 (manifest version) ‖ key 2 ‖ uint 3 (sequence).
    assert_eq!(hex(&envelope[..5]), "a501010203");
}
