//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use upkit::compress::{compress, decompress, Params};
use upkit::crypto::p256::{AffinePoint, FieldElement, Scalar};
use upkit::crypto::u256::U256;
use upkit::delta::{diff, framed_diff, patch, patch_framed, FramedDiffOptions};
use upkit::flash::{FlashDevice, FlashGeometry, SimFlash};
use upkit::manifest::{DeviceToken, Manifest, Version};

// --- LZSS -------------------------------------------------------------------

proptest! {
    #[test]
    fn lzss_round_trips_any_input(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = compress(&data, Params::default());
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_round_trips_every_window(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        bits in 8u8..=13,
    ) {
        let packed = compress(&data, Params::new(bits).unwrap());
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..512,
    ) {
        let packed = compress(&data, Params::default());
        let mut decoder = upkit::compress::Decompressor::new();
        let mut out = Vec::new();
        for piece in packed.chunks(chunk) {
            decoder.push(piece, &mut out).unwrap();
        }
        decoder.finish().unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn lzss_rejects_truncation(data in proptest::collection::vec(any::<u8>(), 64..1024), cut in 1usize..32) {
        let packed = compress(&data, Params::default());
        let keep = packed.len().saturating_sub(cut).max(1);
        let mut decoder = upkit::compress::Decompressor::new();
        let mut out = Vec::new();
        // Either a mid-stream error or a truncation error at finish.
        if decoder.push(&packed[..keep], &mut out).is_ok() {
            prop_assert!(decoder.finish().is_err() || keep == packed.len());
        }
    }
}

// --- bsdiff -----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bsdiff_round_trips_any_pair(
        old in proptest::collection::vec(any::<u8>(), 0..2048),
        new in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let delta = diff(&old, &new);
        prop_assert_eq!(patch(&old, &delta).unwrap(), new);
    }

    #[test]
    fn bsdiff_round_trips_related_pair(
        base in proptest::collection::vec(any::<u8>(), 256..2048),
        edit_at in 0usize..256,
        edit in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut new = base.clone();
        let at = edit_at.min(new.len() - 1);
        for (i, b) in edit.iter().enumerate() {
            if at + i < new.len() {
                new[at + i] = *b;
            }
        }
        let delta = diff(&base, &new);
        prop_assert_eq!(patch(&base, &delta).unwrap(), new);
    }

    #[test]
    fn lzss_of_bsdiff_round_trips(
        base in proptest::collection::vec(any::<u8>(), 256..1500),
        tweak in any::<u8>(),
    ) {
        // The composed pipeline transform: lzss(bsdiff) then inverse.
        let mut new = base.clone();
        let mid = new.len() / 2;
        new[mid] ^= tweak;
        let wire = compress(&diff(&base, &new), Params::default());
        let raw = decompress(&wire).unwrap();
        prop_assert_eq!(patch(&base, &raw).unwrap(), new);
    }

    #[test]
    fn framed_patch_equals_monolithic_raw_patch(
        old in proptest::collection::vec(any::<u8>(), 0..2048),
        new in proptest::collection::vec(any::<u8>(), 0..2048),
        window_len in 1usize..600,
        threads in 1usize..5,
    ) {
        // The framed container must reconstruct exactly what the Raw path
        // does, for any window size and any worker count.
        let raw_out = patch(&old, &diff(&old, &new)).unwrap();
        let options = FramedDiffOptions::default()
            .with_window_len(window_len)
            .with_threads(threads);
        let container = framed_diff(&old, &new, &options);
        prop_assert_eq!(&container, &framed_diff(&old, &new,
            &FramedDiffOptions::default().with_window_len(window_len)));
        let framed_out = patch_framed(&old, &container).unwrap();
        prop_assert_eq!(&framed_out, &raw_out);
        prop_assert_eq!(framed_out, new);
    }
}

proptest! {
    // Signing makes each case expensive; fewer, bigger cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_patches_equal_fresh_computation(
        old in proptest::collection::vec(any::<u8>(), 256..2048),
        edit in proptest::collection::vec(any::<u8>(), 1..128),
        at in 0usize..256,
        framed in any::<bool>(),
    ) {
        use rand::SeedableRng;
        use upkit::core::generation::{UpdateServer, VendorServer};
        use upkit::crypto::ecdsa::SigningKey;
        use upkit::delta::PatchFormat;

        // Two identically-seeded servers, one warmed through its
        // content-addressed cache, one answering fresh: the wire images
        // must match byte for byte for any image pair and either format.
        let mut new = old.clone();
        let at = at.min(old.len() - 1);
        let end = (at + edit.len()).min(new.len());
        new[at..end].copy_from_slice(&edit[..end - at]);

        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(505);
            let vendor = VendorServer::new(SigningKey::generate(&mut rng));
            let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
            if framed {
                server.set_patch_format(PatchFormat::Framed);
            }
            server.publish(vendor.release(old.clone(), Version(1), 0, 0xA));
            server.publish(vendor.release(new.clone(), Version(2), 0, 0xA));
            server
        };
        let token = DeviceToken { device_id: 7, nonce: 9, current_version: Version(1) };
        let warmed = build();
        let first = warmed.prepare_update(&token).unwrap();
        let hit = warmed.prepare_update(&token).unwrap();
        let fresh = build().prepare_update(&token).unwrap();
        prop_assert_eq!(first.image.to_bytes(), hit.image.to_bytes());
        prop_assert_eq!(hit.image.to_bytes(), fresh.image.to_bytes());
    }
}

// --- U256 / field arithmetic --------------------------------------------------

fn u256_strategy() -> impl Strategy<Value = U256> {
    proptest::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
}

proptest! {
    #[test]
    fn u256_byte_round_trip(v in u256_strategy()) {
        prop_assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn u256_add_sub_inverse(a in u256_strategy(), b in u256_strategy()) {
        let (sum, _) = a.adc(&b);
        let (diff, _) = sum.sbb(&b);
        prop_assert_eq!(diff, a);
    }

    #[test]
    fn u256_small_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let wide = U256::from_u64(a).mul_wide(&U256::from_u64(b));
        let expected = u128::from(a) * u128::from(b);
        prop_assert_eq!(wide[0], expected as u64);
        prop_assert_eq!(wide[1], (expected >> 64) as u64);
        prop_assert_eq!(&wide[2..], &[0u64; 6][..]);
    }

    #[test]
    fn u256_reduce_mod_matches_u128(v in any::<u128>(), m in 1u64..) {
        let reduced = U256::from_limbs([v as u64, (v >> 64) as u64, 0, 0])
            .reduce_mod(&U256::from_u64(m));
        let expected = v % u128::from(m);
        prop_assert_eq!(reduced, U256::from_limbs([expected as u64, (expected >> 64) as u64, 0, 0]));
    }

    #[test]
    fn p256_field_ring_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let fa = FieldElement::from_u64(a);
        let fb = FieldElement::from_u64(b);
        let fc = FieldElement::from_u64(c);
        prop_assert_eq!(fa.mul(&fb), fb.mul(&fa));
        prop_assert_eq!(fa.add(&fb).mul(&fc), fa.mul(&fc).add(&fb.mul(&fc)));
        prop_assert_eq!(fa.sub(&fa), FieldElement::zero());
    }

    #[test]
    fn p256_field_inverse(a in 1u64..) {
        let fa = FieldElement::from_u64(a);
        let inv = fa.invert().unwrap();
        prop_assert_eq!(fa.mul(&inv), FieldElement::one());
    }

    #[test]
    fn p256_scalar_inverse(a in 1u64..) {
        let sa = Scalar::from_u64(a);
        let inv = sa.invert().unwrap();
        prop_assert_eq!(sa.mul(&inv), Scalar::one());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn p256_scalar_mul_group_law(k1 in 1u64..1_000_000, k2 in 1u64..1_000_000) {
        // (k1 + k2)·G == k1·G + k2·G
        let g = AffinePoint::generator().to_jacobian();
        let lhs = g.mul_scalar(&U256::from_u64(k1 + k2)).to_affine();
        let rhs = g
            .mul_scalar(&U256::from_u64(k1))
            .add(&g.mul_scalar(&U256::from_u64(k2)))
            .to_affine();
        prop_assert_eq!(lhs, rhs);
        prop_assert!(lhs.is_on_curve());
    }

    #[test]
    fn ecdsa_round_trip_arbitrary_messages(
        seed in any::<u64>(),
        message in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        use rand::SeedableRng;
        let key = upkit::crypto::SigningKey::generate(
            &mut rand::rngs::StdRng::seed_from_u64(seed),
        );
        let sig = key.sign(&message);
        prop_assert!(key.verifying_key().verify(&message, &sig).is_ok());
        // A different message must not verify.
        let mut other = message.clone();
        other.push(0x55);
        prop_assert!(key.verifying_key().verify(&other, &sig).is_err());
    }
}

// --- Manifest formats ----------------------------------------------------------

proptest! {
    #[test]
    fn manifest_round_trips(
        device_id in any::<u32>(),
        nonce in any::<u32>(),
        old_version in any::<u16>(),
        version in any::<u16>(),
        size in any::<u32>(),
        payload_size in any::<u32>(),
        digest in proptest::array::uniform32(any::<u8>()),
        link_offset in any::<u32>(),
        app_id in any::<u32>(),
    ) {
        let m = Manifest {
            device_id,
            nonce,
            old_version: Version(old_version),
            version: Version(version),
            size,
            payload_size,
            digest,
            link_offset,
            app_id,
        };
        prop_assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn device_token_round_trips(id in any::<u32>(), nonce in any::<u32>(), v in any::<u16>()) {
        let token = DeviceToken {
            device_id: id,
            nonce,
            current_version: Version(v),
        };
        prop_assert_eq!(DeviceToken::from_bytes(&token.to_bytes()).unwrap(), token);
    }
}

// --- Flash invariants -------------------------------------------------------------

#[derive(Debug, Clone)]
enum FlashOp {
    Write { addr: u16, data: Vec<u8> },
    Erase { addr: u16 },
}

fn flash_op_strategy() -> impl Strategy<Value = FlashOp> {
    prop_oneof![
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(addr, data)| FlashOp::Write { addr, data }),
        any::<u16>().prop_map(|addr| FlashOp::Erase { addr }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flash_matches_reference_model(ops in proptest::collection::vec(flash_op_strategy(), 0..40)) {
        // Reference: a byte array with AND-write and sector-erase applied
        // only when the real device accepted the operation.
        let geometry = FlashGeometry {
            size: 4096 * 4,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        };
        let mut flash = SimFlash::new(geometry);
        flash.set_strict_program(false); // model the AND semantics directly
        let mut model = vec![0xFFu8; geometry.size as usize];

        for op in ops {
            match op {
                FlashOp::Write { addr, data } => {
                    let addr = u32::from(addr) % geometry.size;
                    let ok = flash.write(addr, &data).is_ok();
                    if ok {
                        for (i, b) in data.iter().enumerate() {
                            model[addr as usize + i] &= b;
                        }
                    }
                }
                FlashOp::Erase { addr } => {
                    let addr = u32::from(addr) % geometry.size;
                    if flash.erase_sector(addr).is_ok() {
                        let start = (addr / geometry.sector_size * geometry.sector_size) as usize;
                        model[start..start + geometry.sector_size as usize].fill(0xFF);
                    }
                }
            }
        }

        let mut contents = vec![0u8; geometry.size as usize];
        flash.read(0, &mut contents).unwrap();
        prop_assert_eq!(contents, model);
    }
}

// --- End-to-end property ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn arbitrary_firmware_updates_end_to_end(
        firmware in proptest::collection::vec(any::<u8>(), 1..6000),
        chunk in 1usize..512,
        seed in any::<u64>(),
    ) {
        use std::sync::Arc;
        use rand::SeedableRng;
        use upkit::core::agent::{AgentConfig, AgentPhase, UpdateAgent, UpdatePlan};
        use upkit::core::generation::{UpdateServer, VendorServer};
        use upkit::core::image::FIRMWARE_OFFSET;
        use upkit::core::keys::TrustAnchors;
        use upkit::crypto::backend::TinyCryptBackend;
        use upkit::crypto::ecdsa::SigningKey;
        use upkit::flash::{configuration_a, standard, SimFlash};

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        server.publish(vendor.release(firmware.clone(), Version(2), 0, 1));
        let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());

        let slot_size = 4096 * 4;
        let mut layout = configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 16,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            slot_size,
        )
        .unwrap();
        let mut agent = UpdateAgent::new(
            Arc::new(TinyCryptBackend),
            anchors,
            AgentConfig { device_id: 1, app_id: 1, supports_differential: false, content_key: None },
        );
        let plan = UpdatePlan {
            target_slot: standard::SLOT_B,
            current_slot: standard::SLOT_A,
            installed_version: Version(1),
            installed_size: 0,
            allowed_link_offsets: vec![0],
            max_firmware_size: slot_size - FIRMWARE_OFFSET,
        };
        let token = agent.request_device_token(&mut layout, plan, seed as u32).unwrap();
        let prepared = server.prepare_update(&token).unwrap();
        let wire = prepared.image.to_bytes();
        let mut last = AgentPhase::NeedMore;
        for piece in wire.chunks(chunk) {
            last = agent.push_data(&mut layout, piece).unwrap();
        }
        prop_assert_eq!(last, AgentPhase::Complete);
        let mut stored = vec![0u8; firmware.len()];
        layout.read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut stored).unwrap();
        prop_assert_eq!(stored, firmware);
    }
}

// --- Agent FSM robustness --------------------------------------------------------

#[derive(Debug, Clone)]
enum AgentOp {
    RequestToken(u32),
    PushData(Vec<u8>),
    Reset,
}

fn agent_op_strategy() -> impl Strategy<Value = AgentOp> {
    prop_oneof![
        any::<u32>().prop_map(AgentOp::RequestToken),
        proptest::collection::vec(any::<u8>(), 1..512).prop_map(AgentOp::PushData),
        Just(AgentOp::Reset),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever operations arrive in whatever order — garbage data, token
    /// requests mid-session, resets — the FSM never panics and always ends
    /// an operation in a well-defined state: errors land in `Cleaning`,
    /// successes in a receiving or terminal state, and `reset` always
    /// returns to `Waiting`.
    #[test]
    fn agent_fsm_never_panics_under_arbitrary_operations(
        ops in proptest::collection::vec(agent_op_strategy(), 0..24),
        seed in any::<u64>(),
    ) {
        use std::sync::Arc;
        use rand::SeedableRng;
        use upkit::core::agent::{AgentConfig, AgentState, UpdateAgent, UpdatePlan};
        use upkit::core::generation::{UpdateServer, VendorServer};
        use upkit::core::image::FIRMWARE_OFFSET;
        use upkit::core::keys::TrustAnchors;
        use upkit::crypto::backend::TinyCryptBackend;
        use upkit::crypto::ecdsa::SigningKey;
        use upkit::flash::{configuration_a, standard, SimFlash};
        use upkit::manifest::Version;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let server = UpdateServer::new(SigningKey::generate(&mut rng));
        let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
        let slot_size = 4096 * 4;
        let mut layout = configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 16,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            slot_size,
        )
        .unwrap();
        let mut agent = UpdateAgent::new(
            Arc::new(TinyCryptBackend),
            anchors,
            AgentConfig { device_id: 1, app_id: 1, supports_differential: true, content_key: None },
        );

        for op in ops {
            match op {
                AgentOp::RequestToken(nonce) => {
                    let plan = UpdatePlan {
                        target_slot: standard::SLOT_B,
                        current_slot: standard::SLOT_A,
                        installed_version: Version(1),
                        installed_size: 0,
                        allowed_link_offsets: vec![0],
                        max_firmware_size: slot_size - FIRMWARE_OFFSET,
                    };
                    let was_waiting = agent.state() == AgentState::Waiting;
                    match agent.request_device_token(&mut layout, plan, nonce) {
                        Ok(token) => {
                            prop_assert!(was_waiting);
                            prop_assert_eq!(token.nonce, nonce);
                            prop_assert_eq!(agent.state(), AgentState::ReceiveManifest);
                        }
                        Err(_) => prop_assert!(!was_waiting),
                    }
                }
                AgentOp::PushData(data) => {
                    match agent.push_data(&mut layout, &data) {
                        Ok(_) => prop_assert!(matches!(
                            agent.state(),
                            AgentState::ReceiveManifest
                                | AgentState::ReceiveFirmware
                                | AgentState::ReadyToReboot
                        )),
                        // Any failure — bad state, garbage manifest — must
                        // land in Cleaning, the state reset recovers from.
                        Err(_) => prop_assert_eq!(agent.state(), AgentState::Cleaning),
                    }
                }
                AgentOp::Reset => {
                    agent.reset(&mut layout).unwrap();
                    prop_assert_eq!(agent.state(), AgentState::Waiting);
                }
            }
        }
    }
}

// --- Parser robustness: arbitrary bytes must never panic -------------------------

proptest! {
    #[test]
    fn wire_parsers_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        use upkit::manifest::{DeviceToken, Manifest, SignedManifest, UpdateImage};
        let _ = Manifest::from_bytes(&data);
        let _ = DeviceToken::from_bytes(&data);
        let _ = SignedManifest::from_bytes(&data);
        let _ = UpdateImage::from_bytes(&data);
        let _ = upkit::manifest::cbor::decode(&data);
        let _ = upkit::manifest::suit::from_suit_envelope(&data);
        let _ = upkit::crypto::Signature::from_bytes(&data);
        let _ = upkit::crypto::VerifyingKey::from_sec1_bytes(&data);
        let _ = upkit::crypto::p256::AffinePoint::from_sec1_compressed(&data);
    }

    #[test]
    fn stream_decoders_never_panic_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        chunk in 1usize..128,
    ) {
        // LZSS decoder.
        let mut decoder = upkit::compress::Decompressor::new();
        let mut out = Vec::new();
        for piece in data.chunks(chunk) {
            if decoder.push(piece, &mut out).is_err() {
                break;
            }
        }
        let _ = decoder.finish();

        // bspatch against a fixed old image.
        let old = vec![0x5Au8; 256];
        let mut patcher = upkit::delta::StreamPatcher::new(old.as_slice());
        let mut out = Vec::new();
        for piece in data.chunks(chunk) {
            if patcher.push(piece, &mut out).is_err() {
                break;
            }
        }
        let _ = patcher.finish();
    }

    #[test]
    fn compressed_point_round_trip_for_valid_points(k in 1u64..100_000) {
        use upkit::crypto::p256::AffinePoint;
        use upkit::crypto::u256::U256;
        let p = AffinePoint::generator()
            .to_jacobian()
            .mul_scalar(&U256::from_u64(k))
            .to_affine();
        let parsed = AffinePoint::from_sec1_compressed(&p.to_sec1_compressed()).unwrap();
        prop_assert_eq!(parsed, p);
    }
}

// --- Delta engine: suffix-array constructions and context reuse -----------------

proptest! {
    #[test]
    fn sais_equals_prefix_doubling_on_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        use upkit::delta::suffix::SuffixArray;
        let sais = SuffixArray::build_sais(&data);
        let doubling = SuffixArray::build_prefix_doubling(&data);
        prop_assert_eq!(sais.offsets(), doubling.offsets());
    }

    #[test]
    fn sais_equals_prefix_doubling_on_repetitive_inputs(
        data in proptest::collection::vec(0u8..4, 0..1024),
    ) {
        // Tiny alphabets maximize LMS-substring collisions, forcing the
        // SA-IS recursion that random bytes almost never exercise.
        use upkit::delta::suffix::SuffixArray;
        let sais = SuffixArray::build_sais(&data);
        let doubling = SuffixArray::build_prefix_doubling(&data);
        prop_assert_eq!(sais.offsets(), doubling.offsets());
    }

    #[test]
    fn delta_context_diff_equals_plain_diff(
        old in proptest::collection::vec(any::<u8>(), 0..2048),
        new in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        use upkit::delta::{DeltaContext, SuffixAlgorithm};
        let plain = diff(&old, &new);
        let context = DeltaContext::new(&old);
        prop_assert_eq!(&context.diff(&old, &new), &plain);
        let doubling = DeltaContext::with_algorithm(&old, SuffixAlgorithm::PrefixDoubling);
        prop_assert_eq!(&doubling.diff(&old, &new), &plain);
        prop_assert_eq!(patch(&old, &plain).unwrap(), new);
    }
}

// --- Parallel generation: byte-identical to sequential for every profile --------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn parallel_generation_matches_sequential_for_every_os_profile(
        seed in any::<u64>(),
        change in 64usize..512,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use upkit::core::generation::{UpdateServer, VendorServer};
        use upkit::core::ParallelGenerator;
        use upkit::crypto::ecdsa::SigningKey;
        use upkit::sim::{FirmwareGenerator, PlatformProfile};

        for (index, profile) in PlatformProfile::all().into_iter().enumerate() {
            let index = index as u64;
            let mut rng = StdRng::seed_from_u64(seed ^ (0xA11 + index));
            let vendor = VendorServer::new(SigningKey::generate(&mut rng));
            let server_key = SigningKey::generate(&mut rng);

            // Firmware sized per board so each profile diffs a different image.
            let firmware_size = 4096 + 1024 * index as usize;
            let generator = FirmwareGenerator::new(seed ^ index);
            let base = generator.base(firmware_size);
            let v1 = vendor.release(base.clone(), Version(1), 0, 0xF1);
            let v2 = vendor.release(
                generator.app_change(&base, change),
                Version(2),
                0,
                0xF1,
            );

            let mut sequential_server = UpdateServer::new(server_key.clone());
            sequential_server.publish(v1.clone());
            sequential_server.publish(v2.clone());
            let mut parallel_server = UpdateServer::new(server_key.clone());
            parallel_server.publish(v1);
            parallel_server.publish(v2);

            let tokens: Vec<DeviceToken> = (0..4u32)
                .map(|device| DeviceToken {
                    device_id: 0x4000 + device,
                    nonce: (seed as u32 ^ device).wrapping_mul(0x9E37_79B9) | 1,
                    // Device 3 advertises no installed version: full update path.
                    current_version: Version(u16::from(device != 3)),
                })
                .collect();

            let sequential: Vec<Vec<u8>> = tokens
                .iter()
                .map(|token| {
                    sequential_server
                        .prepare_update(token)
                        .expect("campaign serves all")
                        .image
                        .to_bytes()
                })
                .collect();
            let parallel: Vec<Vec<u8>> = ParallelGenerator::with_threads(&parallel_server, 4)
                .prepare_updates(&tokens)
                .into_iter()
                .map(|p| p.expect("campaign serves all").image.to_bytes())
                .collect();
            prop_assert_eq!(&parallel, &sequential, "profile {}", profile.name);
        }
    }
}
