//! End-to-end tests of the adversarial-input explorer: all-surface
//! coverage with zero invariant violations, typed rejection of the
//! replay surface, counter ledgering, reproducer determinism, and
//! byte-identical results across explorer thread counts.

use std::sync::Arc;

use upkit::adversary::{
    explore, explore_traced, record_baseline, run_case, shrink_violation, universe,
    AdversaryConfig, MutationClass, COMPONENT_TABLE_TARGETED, DOWNGRADE_CASES,
};
use upkit::sim::{WorldConfig, WorldMode};
use upkit::trace::{Event, MemorySink, Tracer};

/// Small scenario: 6 kB firmware in 12 KiB (3-sector) slots keeps every
/// session case cheap while the decoder corpora stay large enough that
/// bit flips land in headers, control words, and signatures alike.
fn scenario() -> WorldConfig {
    WorldConfig {
        seed: 7,
        firmware_size: 6_000,
        slot_size: 4096 * 3,
        mode: WorldMode::Ab,
    }
}

#[test]
fn strided_exploration_covers_every_surface_with_zero_violations() {
    let config = AdversaryConfig {
        scenario: scenario(),
        threads: 2,
        max_boots: 8,
        case_limit: Some(24),
    };
    let report = explore(&config);

    assert!(report.full_coverage());
    for surface in MutationClass::ALL {
        assert!(
            report.explored.iter().any(|(s, _)| *s == surface),
            "surface {surface:?} was not explored"
        );
    }
    assert!(
        report.violations().is_empty(),
        "adversarial-input violations: {:?}",
        report.violations()
    );
    assert_eq!(report.panics(), 0);
    assert!(
        shrink_violation(&config, &record_baseline(&config.scenario), &report).is_none(),
        "nothing to shrink when every case held"
    );
}

#[test]
fn downgrade_replays_are_rejected_at_the_manifest() {
    // Both replay flavors — a stale-nonce package and a wrong-device
    // package, each once legitimately signed — must die at manifest
    // verification, before a single payload byte is accepted.
    let s = scenario();
    let baseline = record_baseline(&s);
    for index in 0..DOWNGRADE_CASES {
        let case = run_case(
            &s,
            &baseline,
            MutationClass::DowngradeReplay,
            index,
            8,
            &Tracer::disabled(),
        );
        assert!(case.ok(), "replay case {index}: {:?}", case.violation);
        assert!(!case.panicked);
        assert_eq!(case.outcome, "rejected_at_manifest");
    }
}

#[test]
fn rejections_are_ledgered_and_forgeries_stay_zero() {
    let config = AdversaryConfig {
        scenario: scenario(),
        threads: 2,
        max_boots: 8,
        case_limit: Some(12),
    };
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
    let report = explore_traced(&config, &tracer);

    assert!(report.violations().is_empty());
    let snapshot = tracer.counters().snapshot();
    assert!(
        snapshot.packages_rejected > 0,
        "frame mutations must surface as typed agent rejections"
    );
    assert_eq!(snapshot.forgeries_accepted, 0);

    // Every case leaves a paired injected/checked event in the trace.
    let records = sink.drain();
    let injected = records
        .iter()
        .filter(|r| matches!(r.event, Event::MutationInjected { .. }))
        .count();
    let checked = records
        .iter()
        .filter(|r| matches!(r.event, Event::MutationChecked { ok: true, .. }))
        .count();
    assert_eq!(injected, report.cases.len());
    assert_eq!(checked, report.cases.len());
}

#[test]
fn repro_commands_replay_to_identical_results() {
    // The reproducer contract: `(scenario, surface, index)` fully
    // determines a case, so replaying any explored case — decoder or
    // session surface — yields the same result structure.
    let s = scenario();
    let baseline = record_baseline(&s);
    for (surface, index) in [
        (MutationClass::Lzss, 9),
        (MutationClass::BlockDiff, 5),
        (MutationClass::FrameCorrupt, 3),
        (MutationClass::DowngradeReplay, 1),
    ] {
        let first = run_case(&s, &baseline, surface, index, 8, &Tracer::disabled());
        let again = run_case(&s, &baseline, surface, index, 8, &Tracer::disabled());
        assert_eq!(first, again, "{surface:?}/{index} is not deterministic");
        let command = upkit::adversary::repro_command(&s, surface, index);
        assert!(command.contains("--repro ab"));
        assert!(command.contains(surface.label()));
    }
}

#[test]
fn exploration_is_byte_identical_across_thread_counts() {
    let base = AdversaryConfig {
        scenario: scenario(),
        threads: 1,
        max_boots: 8,
        case_limit: Some(6),
    };

    let mut reference = None;
    for threads in [1usize, 2, 8] {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let report = explore_traced(&AdversaryConfig { threads, ..base }, &tracer);
        let observed = (
            report.explored.clone(),
            report.cases.clone(),
            tracer.counters().snapshot(),
            sink.drain(),
        );
        match &reference {
            None => reference = Some(observed),
            Some(expected) => {
                assert_eq!(
                    expected.0, observed.0,
                    "explored cases differ at {threads} threads"
                );
                assert_eq!(
                    expected.1, observed.1,
                    "case results differ at {threads} threads"
                );
                assert_eq!(
                    expected.2, observed.2,
                    "counter totals differ at {threads} threads"
                );
                assert_eq!(
                    expected.3, observed.3,
                    "trace records differ at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn mutated_commit_records_never_pass_the_record_check() {
    // The component-table surface: a journaled multi-payload commit
    // record, mutated, fed through the exact decode + dual-signature
    // path the transactional bootloader runs before any component swap.
    // Bit flips in the signed region, the structural tail, and all four
    // targeted table attacks (count bomb, bad digest, duplicate slot,
    // truncation) must produce typed rejections — never a panic, never
    // an accepted forgery.
    let s = scenario();
    let baseline = record_baseline(&s);
    let total = universe(MutationClass::ComponentTable, &baseline);
    assert!(
        total > COMPONENT_TABLE_TARGETED,
        "the record corpus must be non-trivial, got {total}"
    );

    let tracer = Tracer::disabled();
    let targeted = (total - COMPONENT_TABLE_TARGETED)..total;
    let flips = [0, 57, total / 2];
    for index in targeted.chain(flips) {
        let case = run_case(
            &s,
            &baseline,
            MutationClass::ComponentTable,
            index,
            8,
            &tracer,
        );
        assert!(case.ok(), "record mutation {index}: {:?}", case.violation);
        assert!(!case.panicked, "record mutation {index} panicked");
        assert_eq!(
            case.outcome, "typed_error",
            "record mutation {index} must be rejected with a typed error"
        );
    }
    assert_eq!(tracer.counters().snapshot().forgeries_accepted, 0);
}

#[test]
fn poisoned_cache_entries_are_rejected_by_every_downstream_device() {
    // The cache-poison surface: the gateway's upstream fetch was honest,
    // the corruption lives in the warm block cache — so forwarding-path
    // integrity checks never see it. Every downstream device must still
    // reject the served stream (never-accept), whichever block is
    // poisoned, and no forgery may ever be counted as accepted.
    let s = scenario();
    let baseline = record_baseline(&s);
    let total = universe(MutationClass::CachePoison, &baseline);
    assert!(
        total >= 8,
        "the 6 kB scenario must span several cache blocks, got {total}"
    );

    let tracer = Tracer::disabled();
    for index in [0, 1, total / 2, total - 2, total - 1] {
        let case = run_case(&s, &baseline, MutationClass::CachePoison, index, 8, &tracer);
        assert!(
            case.ok(),
            "poisoned block {index} was accepted: {:?}",
            case.violation
        );
        assert!(!case.panicked, "poisoned block {index} panicked");
        assert!(
            case.outcome.starts_with("rejected"),
            "poisoned block {index} must die at verification, got {:?}",
            case.outcome
        );
    }
    assert_eq!(
        tracer.counters().snapshot().forgeries_accepted,
        0,
        "a poisoned cache must never produce an accepted forgery"
    );
}
