//! Concurrency tests: shared crypto backends across device threads.
//!
//! UpKit's code-reuse design shares one crypto library (and one HSM, where
//! present) between the update agent and the main application. In the
//! simulator the analogue is a backend shared across threads; these tests
//! pin down that the `SecurityBackend` implementations are safe under
//! concurrent use.

use std::sync::Arc;

use rand::SeedableRng;
use upkit::crypto::backend::{KeyRef, SecurityBackend, TinyCryptBackend};
use upkit::crypto::ecdsa::SigningKey;
use upkit::crypto::hsm::SimulatedHsm;
use upkit::crypto::sha256::sha256;

#[test]
fn software_backend_verifies_concurrently() {
    let key = SigningKey::generate(&mut rand::rngs::StdRng::seed_from_u64(1));
    let sec1 = key.verifying_key().to_sec1_bytes();
    let backend = Arc::new(TinyCryptBackend);

    crossbeam::thread::scope(|scope| {
        for t in 0..8 {
            let backend = Arc::clone(&backend);
            let key = key.clone();
            scope.spawn(move |_| {
                for i in 0..4 {
                    let message = format!("thread {t} message {i}");
                    let digest = sha256(message.as_bytes());
                    let sig = key.sign_prehashed(&digest);
                    backend
                        .verify(KeyRef::Sec1(&sec1), &digest, &sig)
                        .expect("valid signature");
                    // Tampered digest must still fail under contention.
                    let mut bad = digest;
                    bad[0] ^= 1;
                    assert!(backend.verify(KeyRef::Sec1(&sec1), &bad, &sig).is_err());
                }
            });
        }
    })
    .expect("threads join");
}

#[test]
fn hsm_serves_many_threads_and_counts_every_verify() {
    let key = SigningKey::generate(&mut rand::rngs::StdRng::seed_from_u64(2));
    let hsm = Arc::new(SimulatedHsm::new());
    hsm.provision(0, key.verifying_key()).unwrap();
    hsm.lock_data_zone();

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 4;
    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let hsm = Arc::clone(&hsm);
            let key = key.clone();
            scope.spawn(move |_| {
                for i in 0..PER_THREAD {
                    let digest = sha256(format!("{t}:{i}").as_bytes());
                    let sig = key.sign_prehashed(&digest);
                    hsm.verify(KeyRef::Slot(0), &digest, &sig)
                        .expect("valid signature");
                }
            });
        }
    })
    .expect("threads join");
    assert_eq!(hsm.verify_count(), THREADS * PER_THREAD);
}

#[test]
fn locked_hsm_rejects_concurrent_reprovision_attempts() {
    let key = SigningKey::generate(&mut rand::rngs::StdRng::seed_from_u64(3));
    let attacker_key = SigningKey::generate(&mut rand::rngs::StdRng::seed_from_u64(4));
    let hsm = Arc::new(SimulatedHsm::new());
    hsm.provision(0, key.verifying_key()).unwrap();
    hsm.lock_data_zone();

    crossbeam::thread::scope(|scope| {
        for _ in 0..8 {
            let hsm = Arc::clone(&hsm);
            let attacker = attacker_key.verifying_key();
            scope.spawn(move |_| {
                assert!(hsm.provision(0, attacker).is_err(), "locked zone must hold");
            });
        }
    })
    .expect("threads join");

    // The original key still verifies.
    let digest = sha256(b"post-attack");
    let sig = key.sign_prehashed(&digest);
    hsm.verify(KeyRef::Slot(0), &digest, &sig).unwrap();
}
