//! Recovery-slot tests: Fig. 6's non-bootable recovery image on external
//! flash, used only when every regular slot fails verification.

use std::sync::Arc;

use rand::SeedableRng;
use upkit::core::bootloader::{BootAction, BootConfig, BootError, BootMode, Bootloader};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::{write_manifest, FIRMWARE_OFFSET};
use upkit::core::keys::TrustAnchors;
use upkit::crypto::backend::TinyCryptBackend;
use upkit::crypto::ecdsa::SigningKey;
use upkit::crypto::sha256::sha256;
use upkit::flash::layout::configuration_a_with_recovery;
use upkit::flash::{standard, FlashGeometry, MemoryLayout, SimFlash, SlotId};
use upkit::manifest::{Manifest, SignedManifest, Version};

const SLOT_SIZE: u32 = 4096 * 8;
const DEV: u32 = 0x5EC0;

struct World {
    vendor: VendorServer,
    server: UpdateServer,
    anchors: TrustAnchors,
    layout: MemoryLayout,
}

fn world(seed: u64) -> World {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    let layout = configuration_a_with_recovery(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        Box::new(SimFlash::new(FlashGeometry::external_spi_nor())),
        SLOT_SIZE,
    )
    .unwrap();
    World {
        vendor,
        server,
        anchors,
        layout,
    }
}

fn install(w: &mut World, slot: SlotId, version: u16, fw: &[u8]) {
    let manifest = Manifest {
        device_id: DEV,
        nonce: 0,
        old_version: Version(0),
        version: Version(version),
        size: fw.len() as u32,
        payload_size: fw.len() as u32,
        digest: sha256(fw),
        link_offset: 0,
        app_id: 1,
    };
    let signed = SignedManifest {
        manifest,
        vendor_signature: w.vendor.sign_manifest_core(&manifest),
        server_signature: w.server.sign_manifest(&manifest),
    };
    w.layout.erase_slot(slot).unwrap();
    write_manifest(&mut w.layout, slot, &signed).unwrap();
    w.layout.write_slot(slot, FIRMWARE_OFFSET, fw).unwrap();
}

fn bootloader(w: &World) -> Bootloader {
    Bootloader::new(
        Arc::new(TinyCryptBackend),
        w.anchors,
        BootConfig {
            device_id: DEV,
            app_id: 1,
            allowed_link_offsets: vec![0],
            max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
            mode: BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
            recovery_slot: Some(standard::RECOVERY),
        },
    )
}

fn corrupt_firmware(w: &mut World, slot: SlotId) {
    // Clearing a bit is always a legal flash write and breaks the digest.
    w.layout
        .write_slot(slot, FIRMWARE_OFFSET + 5, &[0x00])
        .unwrap();
}

#[test]
fn recovery_unused_while_a_regular_slot_is_valid() {
    let mut w = world(1);
    install(&mut w, standard::SLOT_A, 3, b"running v3");
    install(&mut w, standard::RECOVERY, 1, b"factory v1");
    let outcome = bootloader(&w).boot(&mut w.layout).unwrap();
    assert_eq!(outcome.version, Version(3));
    assert_eq!(outcome.action, BootAction::JumpedInPlace);
}

#[test]
fn recovery_restores_when_both_slots_corrupt() {
    let mut w = world(2);
    install(&mut w, standard::SLOT_A, 3, b"running v3");
    install(&mut w, standard::SLOT_B, 4, b"update  v4");
    install(&mut w, standard::RECOVERY, 1, b"factory v1");
    corrupt_firmware(&mut w, standard::SLOT_A);
    corrupt_firmware(&mut w, standard::SLOT_B);

    let outcome = bootloader(&w).boot(&mut w.layout).unwrap();
    assert_eq!(outcome.action, BootAction::RestoredFromRecovery);
    assert_eq!(outcome.version, Version(1));
    assert_eq!(outcome.booted_slot, standard::SLOT_A);
    assert_eq!(outcome.rejected_slots.len(), 2);

    // The factory image now physically occupies the bootable slot.
    let mut buf = [0u8; 10];
    w.layout
        .read_slot(standard::SLOT_A, FIRMWARE_OFFSET, &mut buf)
        .unwrap();
    assert_eq!(&buf, b"factory v1");

    // And the next boot verifies it like any regular image.
    let outcome = bootloader(&w).boot(&mut w.layout).unwrap();
    assert_eq!(outcome.action, BootAction::JumpedInPlace);
    assert_eq!(outcome.version, Version(1));
}

#[test]
fn corrupt_recovery_cannot_save_the_device() {
    let mut w = world(3);
    install(&mut w, standard::SLOT_A, 3, b"running v3");
    install(&mut w, standard::RECOVERY, 1, b"factory v1");
    corrupt_firmware(&mut w, standard::SLOT_A);
    corrupt_firmware(&mut w, standard::RECOVERY);
    match bootloader(&w).boot(&mut w.layout) {
        Err(BootError::NoValidImage(rejected)) => {
            // Slot A, slot B (empty), and recovery all rejected.
            assert_eq!(rejected.len(), 3);
        }
        other => panic!("expected NoValidImage, got {other:?}"),
    }
}

#[test]
fn forged_recovery_image_rejected() {
    let mut w = world(4);
    let attacker = world(99);
    install(&mut w, standard::SLOT_A, 3, b"running v3");
    corrupt_firmware(&mut w, standard::SLOT_A);
    // Attacker plants their own "recovery" image (wrong keys).
    let fw = b"evil recovery";
    let manifest = Manifest {
        device_id: DEV,
        nonce: 0,
        old_version: Version(0),
        version: Version(1),
        size: fw.len() as u32,
        payload_size: fw.len() as u32,
        digest: sha256(fw),
        link_offset: 0,
        app_id: 1,
    };
    let signed = SignedManifest {
        manifest,
        vendor_signature: attacker.vendor.sign_manifest_core(&manifest),
        server_signature: attacker.server.sign_manifest(&manifest),
    };
    w.layout.erase_slot(standard::RECOVERY).unwrap();
    write_manifest(&mut w.layout, standard::RECOVERY, &signed).unwrap();
    w.layout
        .write_slot(standard::RECOVERY, FIRMWARE_OFFSET, fw)
        .unwrap();
    assert!(matches!(
        bootloader(&w).boot(&mut w.layout),
        Err(BootError::NoValidImage(_))
    ));
}

// ---- per-module recovery in multi-component sets ----
//
// A multi-component device has no external recovery image; instead every
// component's staging slot keeps the last committed copy, and the
// bootloader restores a broken module from it — without ever letting a
// mixed set reach a stable boot.

mod multi_rollback {
    use upkit::core::bootloader::{BootAction, BootError};
    use upkit::flash::SimFlash;
    use upkit::manifest::Version;
    use upkit::net::SessionOutcome;
    use upkit::sim::{update_world, world_geometry, WorldConfig, WorldMode, DEFAULT_MAX_BOOTS};

    fn committed_world(seed: u64, components: u8) -> upkit::sim::UpdateWorld {
        let cfg = WorldConfig {
            seed,
            firmware_size: 6_000,
            slot_size: 4096 * 3,
            mode: WorldMode::Multi { components },
        };
        let mut world = update_world(&cfg, Box::new(SimFlash::new(world_geometry(&cfg))));
        assert!(matches!(world.run_push_once(1), SessionOutcome::Complete));
        world
            .reboot_to_fixed_point(DEFAULT_MAX_BOOTS)
            .expect("commit the staged set");
        world
    }

    #[test]
    fn broken_component_is_restored_from_its_staged_copy() {
        let mut world = committed_world(40, 3);
        let multi = world.multi.clone().unwrap();
        // Corrupt the middle component's bootable copy (bit-clear).
        world
            .layout
            .write_slot(
                multi.components[1].bootable,
                upkit::core::image::FIRMWARE_OFFSET + 9,
                &[0x00],
            )
            .unwrap();
        assert!(world.component_set_mixed(), "the module is broken");

        let report = world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS).unwrap();
        assert_eq!(report.outcome.version, Version(2));
        assert_eq!(
            report.boots, 2,
            "boot 1 restores the module, boot 2 confirms"
        );
        assert_eq!(world.component_versions(), vec![Some(Version(2)); 3]);
        assert!(!world.component_set_mixed());
    }

    #[test]
    fn restore_pass_reports_the_rollback_action() {
        let mut world = committed_world(41, 2);
        let multi = world.multi.clone().unwrap();
        world
            .layout
            .write_slot(
                multi.components[0].bootable,
                upkit::core::image::FIRMWARE_OFFSET,
                &[0x00],
            )
            .unwrap();
        let outcome = world.bootloader().boot(&mut world.layout).unwrap();
        assert_eq!(outcome.action, BootAction::RestoredFromRecovery);
    }

    #[test]
    fn component_with_both_copies_broken_is_not_silently_booted() {
        let mut world = committed_world(42, 2);
        let multi = world.multi.clone().unwrap();
        for slot in [multi.components[1].bootable, multi.components[1].staging] {
            world
                .layout
                .write_slot(slot, upkit::core::image::FIRMWARE_OFFSET + 3, &[0x00])
                .unwrap();
        }
        assert!(matches!(
            world.bootloader().boot(&mut world.layout),
            Err(BootError::NoValidImage(_))
        ));
    }
}
