//! End-to-end tests of the crash-consistency explorer: full boundary
//! coverage, the never-brick invariant on the supported configurations,
//! violation detection + shrinking on the known-unsafe one, and
//! byte-identical results across explorer thread counts.

use std::sync::Arc;

use upkit::chaos::{
    explore, explore_traced, record_boundaries, run_case, shrink_violation, ChaosConfig, FaultClass,
};
use upkit::sim::{WorldConfig, WorldMode};
use upkit::trace::{MemorySink, Tracer};

/// Small scenario: 6 kB firmware in 12 KiB (3-sector) slots keeps every
/// case cheap while still spanning multiple sectors, which is what makes
/// mid-swap faults interesting.
fn scenario(mode: WorldMode) -> WorldConfig {
    WorldConfig {
        seed: 7,
        firmware_size: 6_000,
        slot_size: 4096 * 3,
        mode,
    }
}

#[test]
fn ab_scenario_covers_every_boundary_with_zero_violations() {
    let mut config = ChaosConfig::exhaustive(scenario(WorldMode::Ab));
    config.threads = 2;
    let report = explore(&config);

    assert!(report.recorded_ops > 0, "the recording found no boundaries");
    assert_eq!(
        report.explored.len(),
        report.recorded_ops,
        "exhaustive mode explores every recorded boundary"
    );
    assert_eq!(
        report.cases.len(),
        report.recorded_ops * FaultClass::ALL.len()
    );
    assert!(report.full_coverage());
    assert!(
        report.violations().is_empty(),
        "A/B never-brick violations: {:?}",
        report.violations()
    );
    // A/B recovery is pure re-verification: no case needs a second boot.
    assert_eq!(report.max_boots_to_recovery, 1);
    for case in &report.cases {
        assert!(
            matches!(case.version, Some(1) | Some(2)),
            "case {case:?} settled on an unexpected version"
        );
    }
}

#[test]
fn static_swap_with_recovery_survives_every_fault() {
    let config = ChaosConfig::exhaustive(scenario(WorldMode::StaticSwap { recovery: true }));
    let report = explore(&config);

    assert!(report.full_coverage());
    // The swap itself is recorded: boot-time ops are boundaries too.
    assert!(
        report.recorded_ops > scenario(WorldMode::Ab).slot_size as usize / 4096,
        "expected swap ops in the recording, got {}",
        report.recorded_ops
    );
    assert!(
        report.violations().is_empty(),
        "recovery-slot never-brick violations: {:?}",
        report.violations()
    );
    // Worst case observed: cut mid-swap, second cut mid-restore, then a
    // clean restore — still comfortably bounded.
    assert!(report.max_boots_to_recovery <= 4);
}

#[test]
fn explorer_finds_and_shrinks_the_bare_static_swap_hazard() {
    // Static swap WITHOUT a recovery slot is the configuration the
    // paper's recovery image exists to fix: a cut once the swap has
    // started leaves both slots half-written. The explorer must find
    // that hazard, shrink it to its smallest failing boundary, and emit
    // a working reproducer.
    let config = ChaosConfig::exhaustive(scenario(WorldMode::StaticSwap { recovery: false }));
    let report = explore(&config);

    assert!(report.full_coverage());
    let violations = report.violations();
    assert!(
        !violations.is_empty(),
        "the unsafe configuration should brick somewhere mid-swap"
    );
    // Every violation lies in the boot-time swap, after the session's
    // slot-B erase+write ops: the session phase alone never bricks.
    let session_ops = record_boundaries(&scenario(WorldMode::Ab))
        .iter()
        .filter(|op| !matches!(op, upkit::flash::FlashOp::Reboot))
        .count() as u64;
    for violation in &violations {
        assert!(
            violation.boundary >= session_ops,
            "violation before the swap started: {violation:?}"
        );
    }

    let shrunk = shrink_violation(&config, &report).expect("violations exist, so shrinking works");
    assert!(!shrunk.case.ok());
    assert_eq!(
        shrunk.case.boundary,
        report.minimal_violation().unwrap().boundary,
        "exhaustive exploration already visited every boundary, so the \
         minimal violation is already minimal"
    );
    assert!(shrunk.command.contains("--repro static"));
    assert!(shrunk.command.contains(shrunk.case.fault.label()));

    // The reproducer command's parameters replay to the same result.
    let replayed = run_case(
        &config.scenario,
        shrunk.case.boundary,
        shrunk.case.fault,
        config.max_boots,
        &Tracer::disabled(),
    );
    assert_eq!(replayed, shrunk.case);
}

/// Multi-component scenario kept one sector per slot so the exhaustive
/// (boundary × fault) product stays cheap: staging, the journal commit,
/// and every replay copy are all still distinct boundaries. 2 kB modules
/// leave room for the base OS module's v2 growth (~1.5 kB insert).
fn multi_scenario(components: u8) -> WorldConfig {
    WorldConfig {
        seed: 7,
        firmware_size: 2_000,
        slot_size: 4096,
        mode: WorldMode::Multi { components },
    }
}

#[test]
fn three_component_scenario_covers_every_boundary_with_no_mixed_sets() {
    let mut config = ChaosConfig::exhaustive(multi_scenario(3));
    config.threads = 4;
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
    let report = explore_traced(&config, &tracer);

    assert!(report.full_coverage());
    assert_eq!(
        report.cases.len(),
        report.recorded_ops * FaultClass::ALL.len()
    );
    // The recording spans staging (3 × erase+manifest+firmware), the
    // journal erase + commit record, and the replay (3 × copy + marker,
    // plus the complete marker) — cuts *between* component swaps and
    // double cuts mid-replay are all in the universe.
    assert!(
        report.recorded_ops >= 20,
        "expected staging + journal + replay boundaries, got {}",
        report.recorded_ops
    );
    assert!(
        report.violations().is_empty(),
        "multi-component violations: {:?}",
        report.violations()
    );
    let counters = tracer.counters().snapshot();
    assert_eq!(counters.fault_violations, 0);
    assert_eq!(counters.mixed_set_violations, 0);
    assert_eq!(counters.faults_injected as usize, report.cases.len());
    // Journal replay work shows up in the ledger.
    assert!(counters.components_installed > 0);
    // Every case settles on the complete old set or the complete new set.
    for case in &report.cases {
        assert!(
            matches!(case.version, Some(1) | Some(2)),
            "case {case:?} settled on an unexpected version"
        );
    }
    assert!(report.max_boots_to_recovery <= 4);
}

#[test]
fn two_component_scenario_has_no_violations() {
    let mut config = ChaosConfig::exhaustive(multi_scenario(2));
    config.threads = 2;
    let report = explore(&config);
    assert!(report.full_coverage());
    assert!(
        report.violations().is_empty(),
        "2-component violations: {:?}",
        report.violations()
    );
}

#[test]
fn multi_component_exploration_is_byte_identical_across_thread_counts() {
    let base = ChaosConfig {
        scenario: multi_scenario(3),
        threads: 1,
        max_boots: 8,
        boundary_limit: Some(6),
    };

    let mut reference = None;
    for threads in [1usize, 2, 8] {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let report = explore_traced(&ChaosConfig { threads, ..base }, &tracer);
        let observed = (
            report.explored.clone(),
            report.cases.clone(),
            tracer.counters().snapshot(),
            sink.drain(),
        );
        match &reference {
            None => reference = Some(observed),
            Some(expected) => {
                assert_eq!(expected, &observed, "results differ at {threads} threads");
            }
        }
    }
}

#[test]
fn exploration_is_byte_identical_across_thread_counts() {
    let base = ChaosConfig {
        scenario: scenario(WorldMode::StaticSwap { recovery: true }),
        threads: 1,
        max_boots: 8,
        boundary_limit: Some(5),
    };

    let mut reference = None;
    for threads in [1usize, 2, 8] {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let report = explore_traced(&ChaosConfig { threads, ..base }, &tracer);
        let observed = (
            report.explored.clone(),
            report.cases.clone(),
            tracer.counters().snapshot(),
            sink.drain(),
        );
        match &reference {
            None => reference = Some(observed),
            Some(expected) => {
                assert_eq!(
                    expected.0, observed.0,
                    "explored boundaries differ at {threads} threads"
                );
                assert_eq!(
                    expected.1, observed.1,
                    "case results differ at {threads} threads"
                );
                assert_eq!(
                    expected.2, observed.2,
                    "counter totals differ at {threads} threads"
                );
                assert_eq!(
                    expected.3, observed.3,
                    "trace records differ at {threads} threads"
                );
            }
        }
    }
}
