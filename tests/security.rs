//! Security integration tests: the attack matrix the paper's design
//! motivates, run against both UpKit and the baselines so the comparison
//! is explicit — the same attack bytes, different outcomes.

use std::sync::Arc;

use rand::SeedableRng;
use upkit::baselines::{McubootBootloader, McubootConfig, McubootOutcome, McumgrAgent};
use upkit::core::agent::{AgentConfig, AgentError, AgentPhase, UpdateAgent, UpdatePlan};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::FIRMWARE_OFFSET;
use upkit::core::keys::{KeyAnchor, TrustAnchors};
use upkit::core::verifier::VerifyError;
use upkit::crypto::backend::TinyCryptBackend;
use upkit::crypto::ecdsa::SigningKey;
use upkit::flash::{
    configuration_a, configuration_b, standard, FlashGeometry, MemoryLayout, SimFlash,
};
use upkit::manifest::{DeviceToken, Version};

const SLOT_SIZE: u32 = 4096 * 12;
const DEV: u32 = 0xD00D;
const APP: u32 = 0xA;

struct World {
    vendor: VendorServer,
    server: UpdateServer,
    anchors: TrustAnchors,
}

fn world(seed: u64, firmware: Vec<u8>, version: u16) -> World {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    server.publish(vendor.release(firmware, Version(version), 0, APP));
    World {
        vendor,
        server,
        anchors,
    }
}

fn fresh_device(w: &World) -> (MemoryLayout, UpdateAgent) {
    let layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        SLOT_SIZE,
    )
    .unwrap();
    let agent = UpdateAgent::new(
        Arc::new(TinyCryptBackend),
        w.anchors,
        AgentConfig {
            device_id: DEV,
            app_id: APP,
            supports_differential: true,
            content_key: None,
        },
    );
    (layout, agent)
}

fn plan(installed: u16) -> UpdatePlan {
    UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(installed),
        installed_size: 0,
        allowed_link_offsets: vec![0],
        max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
    }
}

fn feed(
    agent: &mut UpdateAgent,
    layout: &mut MemoryLayout,
    bytes: &[u8],
) -> Result<AgentPhase, AgentError> {
    let mut last = AgentPhase::NeedMore;
    for chunk in bytes.chunks(244) {
        last = agent.push_data(layout, chunk)?;
    }
    Ok(last)
}

#[test]
fn replay_rejected_by_upkit_accepted_by_mcumgr() {
    let w = world(1, vec![0x11; 8_000], 2);
    // Capture a legitimately-signed image for nonce 100.
    let captured = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 100,
            current_version: Version(0),
        })
        .unwrap()
        .image
        .to_bytes();

    // UpKit: a new request (nonce 200) rejects the captured image.
    let (mut layout, mut agent) = fresh_device(&w);
    agent
        .request_device_token(&mut layout, plan(1), 200)
        .unwrap();
    let err = feed(&mut agent, &mut layout, &captured).unwrap_err();
    assert!(matches!(err, AgentError::Verify(VerifyError::WrongNonce)));

    // mcumgr: stores the replay happily.
    let mut layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        SLOT_SIZE,
    )
    .unwrap();
    let mut mcumgr = McumgrAgent::new(standard::SLOT_B);
    mcumgr.begin(&mut layout).unwrap();
    let mut done = false;
    for chunk in captured.chunks(244) {
        done = mcumgr.push_data(&mut layout, chunk).unwrap();
    }
    assert!(done, "mcumgr accepted the replayed image");
}

#[test]
fn downgrade_rejected_by_upkit_accepted_by_mcuboot() {
    // Server only has v2; device runs v5 — v2 is a downgrade.
    let w = world(2, vec![0x22; 8_000], 2);
    let image = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 7,
            current_version: Version(0),
        })
        .unwrap()
        .image;

    // UpKit agent at v5 rejects v2.
    let (mut layout, mut agent) = fresh_device(&w);
    agent.request_device_token(&mut layout, plan(5), 7).unwrap();
    let err = feed(&mut agent, &mut layout, &image.to_bytes()).unwrap_err();
    assert!(matches!(err, AgentError::Verify(VerifyError::StaleVersion)));

    // mcuboot (default config): swaps the valid-but-old image in.
    let mut layout = configuration_b(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        None,
        SLOT_SIZE,
    )
    .unwrap();
    // Install "v5" in primary, stage the v2 image.
    install_raw(&mut layout, standard::SLOT_A, &w, 5, &vec![0x55; 4_000]);
    layout.erase_slot(standard::SLOT_B).unwrap();
    upkit::core::image::write_manifest(&mut layout, standard::SLOT_B, &image.signed_manifest)
        .unwrap();
    layout
        .write_slot(standard::SLOT_B, FIRMWARE_OFFSET, &image.payload)
        .unwrap();
    let mcuboot = McubootBootloader::new(
        Arc::new(TinyCryptBackend),
        McubootConfig {
            primary: standard::SLOT_A,
            staging: standard::SLOT_B,
            vendor_key: KeyAnchor::inline(&w.vendor.verifying_key()),
            downgrade_prevention: false,
        },
    );
    assert_eq!(
        mcuboot.boot(&mut layout).unwrap(),
        McubootOutcome::SwappedNewImage {
            version: Version(2)
        },
        "mcuboot installed the downgrade"
    );
}

#[test]
fn cross_device_image_rejected() {
    let w = world(3, vec![0x33; 6_000], 2);
    // Image prepared for a *different* device id.
    let foreign = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV + 1,
            nonce: 50,
            current_version: Version(0),
        })
        .unwrap()
        .image
        .to_bytes();
    let (mut layout, mut agent) = fresh_device(&w);
    agent
        .request_device_token(&mut layout, plan(1), 50)
        .unwrap();
    let err = feed(&mut agent, &mut layout, &foreign).unwrap_err();
    assert!(matches!(err, AgentError::Verify(VerifyError::WrongDevice)));
}

#[test]
fn wrong_app_image_rejected() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    // Release built for a different product (app id APP+1).
    server.publish(vendor.release(vec![0x44; 6_000], Version(2), 0, APP + 1));
    let w = World {
        anchors: TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key()),
        vendor,
        server,
    };
    let image = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 9,
            current_version: Version(0),
        })
        .unwrap()
        .image
        .to_bytes();
    let (mut layout, mut agent) = fresh_device(&w);
    agent.request_device_token(&mut layout, plan(1), 9).unwrap();
    let err = feed(&mut agent, &mut layout, &image).unwrap_err();
    assert!(matches!(err, AgentError::Verify(VerifyError::WrongAppId)));
}

#[test]
fn fully_forged_image_rejected_even_with_valid_structure() {
    // Attacker builds a structurally perfect image signed with their own
    // keys: rejected on the vendor signature.
    let legit = world(5, vec![0x55; 6_000], 2);
    let attacker = world(6, vec![0x66; 6_000], 3);
    let forged = attacker
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 77,
            current_version: Version(0),
        })
        .unwrap()
        .image
        .to_bytes();
    let (mut layout, mut agent) = fresh_device(&legit);
    agent
        .request_device_token(&mut layout, plan(1), 77)
        .unwrap();
    let err = feed(&mut agent, &mut layout, &forged).unwrap_err();
    assert!(matches!(
        err,
        AgentError::Verify(VerifyError::VendorSignature | VerifyError::ServerSignature)
    ));
}

#[test]
fn compromised_update_server_cannot_forge_firmware() {
    // Double-signature property (i): even with the update-server key, an
    // attacker cannot produce acceptable firmware — the vendor signature
    // covers the digest.
    let w = world(7, vec![0x77; 6_000], 2);
    let legit = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 11,
            current_version: Version(0),
        })
        .unwrap()
        .image;

    // "Stolen server key": re-sign a manifest whose digest points at
    // attacker firmware, keeping the legit vendor signature.
    let mut evil_manifest = legit.signed_manifest.manifest;
    let evil_payload = vec![0xEE; evil_manifest.size as usize];
    evil_manifest.digest = upkit::crypto::sha256::sha256(&evil_payload);
    let evil = upkit::manifest::UpdateImage {
        signed_manifest: upkit::manifest::SignedManifest {
            manifest: evil_manifest,
            vendor_signature: legit.signed_manifest.vendor_signature,
            server_signature: w.server.sign_manifest(&evil_manifest),
        },
        payload: evil_payload,
    };

    let (mut layout, mut agent) = fresh_device(&w);
    agent
        .request_device_token(&mut layout, plan(1), 11)
        .unwrap();
    let err = feed(&mut agent, &mut layout, &evil.to_bytes()).unwrap_err();
    assert!(matches!(
        err,
        AgentError::Verify(VerifyError::VendorSignature)
    ));
}

#[test]
fn compromised_vendor_key_alone_cannot_satisfy_freshness() {
    // Double-signature property (ii): the vendor key alone cannot bind a
    // fresh nonce — the server signature fails.
    let w = world(8, vec![0x88; 6_000], 2);
    let legit = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 500,
            current_version: Version(0),
        })
        .unwrap()
        .image;

    // "Stolen vendor key": attacker re-targets the manifest to nonce 501
    // and re-signs the core; but they cannot produce the server signature.
    let mut evil_manifest = legit.signed_manifest.manifest;
    evil_manifest.nonce = 501;
    let evil = upkit::manifest::UpdateImage {
        signed_manifest: upkit::manifest::SignedManifest {
            manifest: evil_manifest,
            vendor_signature: w.vendor.sign_manifest_core(&evil_manifest),
            // Best the attacker can do: replay the old server signature.
            server_signature: legit.signed_manifest.server_signature,
        },
        payload: legit.payload.clone(),
    };

    let (mut layout, mut agent) = fresh_device(&w);
    agent
        .request_device_token(&mut layout, plan(1), 501)
        .unwrap();
    let err = feed(&mut agent, &mut layout, &evil.to_bytes()).unwrap_err();
    assert!(matches!(
        err,
        AgentError::Verify(VerifyError::ServerSignature)
    ));
}

#[test]
fn bit_flip_anywhere_in_stream_is_caught() {
    let w = world(9, vec![0x99; 4_000], 2);
    let image = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 31,
            current_version: Version(0),
        })
        .unwrap()
        .image
        .to_bytes();

    // Flip one bit at a spread of offsets covering manifest, signatures,
    // and payload; every single one must be rejected.
    for offset in [0usize, 10, 59, 60, 130, 188, 500, 2_000, image.len() - 1] {
        let mut tampered = image.clone();
        tampered[offset] ^= 0x01;
        let (mut layout, mut agent) = fresh_device(&w);
        agent
            .request_device_token(&mut layout, plan(1), 31)
            .unwrap();
        let result = feed(&mut agent, &mut layout, &tampered);
        assert!(result.is_err(), "bit flip at offset {offset} was accepted");
    }
}

#[test]
fn oversized_decode_declaration_is_rejected_and_ledgered() {
    use upkit::core::generation::ServedKind;
    use upkit::trace::{MemorySink, Tracer};

    // A differential update whose LZSS header a compromised proxy
    // inflates to 4 GiB. The dual signatures cover the decoded firmware's
    // digest, not the payload bytes, so the manifest still verifies — the
    // pipeline's slot-derived budget is the only thing standing between
    // the declared length and a 4 GiB allocation on a constrained device.
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    let f1 = vec![0xAA; 8_000];
    let mut f2 = f1.clone();
    f2[..64].copy_from_slice(&[0x5A; 64]);
    server.publish(vendor.release(f1.clone(), Version(1), 0, APP));
    server.publish(vendor.release(f2, Version(2), 0, APP));
    let w = World {
        vendor,
        server,
        anchors,
    };

    let prepared = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 40,
            current_version: Version(1),
        })
        .unwrap();
    assert!(matches!(prepared.kind, ServedKind::Differential { .. }));
    let mut image = prepared.image.clone();
    // LZSS header: 4 magic bytes, 1 params byte, 4-byte declared length.
    image.payload[5..9].copy_from_slice(&u32::MAX.to_le_bytes());

    let (mut layout, mut agent) = fresh_device(&w);
    install_raw(&mut layout, standard::SLOT_A, &w, 1, &f1);
    let tracer = Tracer::with_sink(Box::new(Arc::new(MemorySink::new())));
    layout.set_tracer(tracer.clone());

    let mut p = plan(1);
    p.installed_size = f1.len() as u32;
    agent.request_device_token(&mut layout, p, 40).unwrap();
    let err = feed(&mut agent, &mut layout, &image.to_bytes()).unwrap_err();
    assert!(
        matches!(err, AgentError::Pipeline(_)),
        "expected a typed pipeline rejection, got {err:?}"
    );

    // The ledger tells the same story: one budget overrun, one rejected
    // package, zero forgeries accepted.
    let snapshot = tracer.counters().snapshot();
    assert_eq!(snapshot.decode_overruns, 1);
    assert_eq!(snapshot.packages_rejected, 1);
    assert_eq!(snapshot.forgeries_accepted, 0);

    // The untampered stream still applies cleanly on a fresh device.
    let (mut layout, mut agent) = fresh_device(&w);
    install_raw(&mut layout, standard::SLOT_A, &w, 1, &f1);
    let mut p = plan(1);
    p.installed_size = f1.len() as u32;
    agent.request_device_token(&mut layout, p, 40).unwrap();
    let phase = feed(&mut agent, &mut layout, &prepared.image.to_bytes()).unwrap();
    assert_eq!(phase, AgentPhase::Complete);
}

#[test]
fn framed_container_bombs_are_rejected_and_ledgered() {
    use upkit::core::generation::ServedKind;
    use upkit::delta::{PatchFormat, FRAMED_MAGIC};
    use upkit::trace::{MemorySink, Tracer};

    // The framed container adds attacker-controlled structure — a window
    // directory with declared offsets and lengths. Each tamper below
    // inflates one field in place (the signatures cover the decoded
    // firmware digest, not the payload bytes, so the manifest still
    // verifies); the slot-derived decode budget must reject every one
    // before any allocation matches the declaration.
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    server.set_patch_format(PatchFormat::Framed);
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    let f1 = vec![0xAA; 8_000];
    let mut f2 = f1.clone();
    f2[..64].copy_from_slice(&[0x5A; 64]);
    server.publish(vendor.release(f1.clone(), Version(1), 0, APP));
    server.publish(vendor.release(f2, Version(2), 0, APP));
    let w = World {
        vendor,
        server,
        anchors,
    };

    let prepared = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 41,
            current_version: Version(1),
        })
        .unwrap();
    assert!(matches!(prepared.kind, ServedKind::Differential { .. }));
    assert_eq!(prepared.image.payload[..4], FRAMED_MAGIC);

    // (field under attack, payload byte range of that field)
    // Header: magic[0..4] old_len[4..8] new_len[8..12] window_count[12..16];
    // first directory entry: out_offset[16..20] out_len[20..24] comp[24]
    // body_len[25..29].
    for (label, range) in [
        ("window-count bomb", 12..16),
        ("window-length bomb", 20..24),
        ("body-length bomb", 25..29),
    ] {
        let mut image = prepared.image.clone();
        image.payload[range].copy_from_slice(&u32::MAX.to_le_bytes());

        let (mut layout, mut agent) = fresh_device(&w);
        install_raw(&mut layout, standard::SLOT_A, &w, 1, &f1);
        let tracer = Tracer::with_sink(Box::new(Arc::new(MemorySink::new())));
        layout.set_tracer(tracer.clone());

        let mut p = plan(1);
        p.installed_size = f1.len() as u32;
        agent.request_device_token(&mut layout, p, 41).unwrap();
        let err = feed(&mut agent, &mut layout, &image.to_bytes()).unwrap_err();
        assert!(
            matches!(err, AgentError::Pipeline(_)),
            "{label}: expected a typed pipeline rejection, got {err:?}"
        );
        let snapshot = tracer.counters().snapshot();
        assert_eq!(snapshot.decode_overruns, 1, "{label}");
        assert_eq!(snapshot.packages_rejected, 1, "{label}");
        assert_eq!(snapshot.forgeries_accepted, 0, "{label}");
    }

    // The untampered framed stream still applies cleanly.
    let (mut layout, mut agent) = fresh_device(&w);
    install_raw(&mut layout, standard::SLOT_A, &w, 1, &f1);
    let mut p = plan(1);
    p.installed_size = f1.len() as u32;
    agent.request_device_token(&mut layout, p, 41).unwrap();
    let phase = feed(&mut agent, &mut layout, &prepared.image.to_bytes()).unwrap();
    assert_eq!(phase, AgentPhase::Complete);
}

mod frame_mutations {
    //! Proptest satellite of the adversarial explorer: arbitrary
    //! single-frame mutations and stream replays on an otherwise valid
    //! push session must end in a typed rejection (or a byte-identical
    //! completed install), leave the running slot untouched, and keep
    //! the device booting a valid image.

    use std::sync::OnceLock;

    use proptest::prelude::*;
    use upkit::adversary::{
        frame_tamper, record_baseline, scenario_nonce, Baseline, MutationClass,
    };
    use upkit::flash::{standard, SimFlash};
    use upkit::manifest::Version;
    use upkit::net::{
        FrameAdversary, LinkProfile, LossyLink, PushEndpoints, PushSession, RetryPolicy,
        SessionOutcome, Smartphone, Transport,
    };
    use upkit::sim::failure::{update_world, world_geometry, WorldConfig, WorldMode};

    fn scenario() -> WorldConfig {
        WorldConfig {
            seed: 7,
            firmware_size: 6_000,
            slot_size: 4096 * 3,
            mode: WorldMode::Ab,
        }
    }

    fn baseline() -> &'static Baseline {
        static BASELINE: OnceLock<Baseline> = OnceLock::new();
        BASELINE.get_or_init(|| record_baseline(&scenario()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn single_frame_mutations_end_typed_and_leave_the_device_valid(
            class in 0usize..4,
            target in 0u64..64,
        ) {
            let surface = [
                MutationClass::FrameCorrupt,
                MutationClass::FrameReorder,
                MutationClass::FrameDuplicate,
                MutationClass::DowngradeReplay,
            ][class];
            let scenario = scenario();
            let baseline = baseline();
            let index = if surface == MutationClass::DowngradeReplay {
                target % 2
            } else {
                target % baseline.frames
            };
            let tamper = frame_tamper(surface, index, baseline).unwrap();

            let mut world =
                update_world(&scenario, Box::new(SimFlash::new(world_geometry(&scenario))));
            let spec = world.layout.slot(standard::SLOT_A).unwrap();
            let mut before = vec![0u8; spec.size as usize];
            world.layout.read_slot(standard::SLOT_A, 0, &mut before).unwrap();

            let link = LinkProfile::ble_gatt();
            let mut phone = Smartphone::new();
            let mut session =
                PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
            let outcome = {
                let endpoints = PushEndpoints::new(
                    &world.server,
                    &mut phone,
                    &mut world.agent,
                    &mut world.layout,
                    world.plan.clone(),
                    scenario_nonce(&scenario),
                );
                let mut adversary = FrameAdversary::new(endpoints, tamper);
                session.run_to_completion(&mut adversary).outcome
            };

            // A mutated session ends in a typed state, never a hang or a
            // panic: either the full byte-identical image landed, or the
            // agent rejected with a typed error, or the stream ran short.
            prop_assert!(
                matches!(
                    outcome,
                    SessionOutcome::Complete
                        | SessionOutcome::RejectedAtManifest(_)
                        | SessionOutcome::RejectedAtFirmware(_)
                        | SessionOutcome::Incomplete
                ),
                "unexpected outcome {outcome:?}"
            );
            if surface == MutationClass::DowngradeReplay {
                prop_assert!(matches!(outcome, SessionOutcome::RejectedAtManifest(_)));
            }

            // The running image is byte-identical no matter what arrived.
            let mut after = vec![0u8; spec.size as usize];
            world.layout.read_slot(standard::SLOT_A, 0, &mut after).unwrap();
            prop_assert_eq!(&before, &after, "the running slot was modified");

            // And the device still boots a valid version.
            let completed = outcome.is_complete();
            let report = world.reboot_to_fixed_point(8).unwrap();
            prop_assert!(
                matches!(report.outcome.version, Version(1) | Version(2)),
                "booted {:?}", report.outcome.version
            );
            if completed {
                // A completed session means the byte-identical v2 landed.
                let mut installed = vec![0u8; baseline.booted_bytes.len()];
                world
                    .layout
                    .read_slot(baseline.booted_slot, 0, &mut installed)
                    .unwrap();
                prop_assert_eq!(&installed, &baseline.booted_bytes);
            }
        }
    }
}

fn install_raw(
    layout: &mut MemoryLayout,
    slot: upkit::flash::SlotId,
    w: &World,
    version: u16,
    fw: &[u8],
) {
    use upkit::crypto::sha256::sha256;
    use upkit::manifest::{Manifest, SignedManifest};
    let manifest = Manifest {
        device_id: DEV,
        nonce: 0,
        old_version: Version(0),
        version: Version(version),
        size: fw.len() as u32,
        payload_size: fw.len() as u32,
        digest: sha256(fw),
        link_offset: 0,
        app_id: APP,
    };
    let signed = SignedManifest {
        manifest,
        vendor_signature: w.vendor.sign_manifest_core(&manifest),
        server_signature: w.server.sign_manifest(&manifest),
    };
    layout.erase_slot(slot).unwrap();
    upkit::core::image::write_manifest(layout, slot, &signed).unwrap();
    layout.write_slot(slot, FIRMWARE_OFFSET, fw).unwrap();
}
