//! Tests for the pipeline decryption stage — the paper's future-work
//! extension making payload confidentiality independent of transport
//! security.

use std::sync::Arc;

use rand::SeedableRng;
use upkit::core::agent::{AgentConfig, AgentPhase, UpdateAgent, UpdatePlan};
use upkit::core::generation::{UpdateServer, VendorServer};
use upkit::core::image::FIRMWARE_OFFSET;
use upkit::core::keys::TrustAnchors;
use upkit::crypto::backend::TinyCryptBackend;
use upkit::crypto::ecdsa::SigningKey;
use upkit::flash::{configuration_a, standard, FlashGeometry, MemoryLayout, SimFlash};
use upkit::manifest::{DeviceToken, Version};

const SLOT_SIZE: u32 = 4096 * 12;
const DEV: u32 = 0xE0C0;
const KEY: [u8; 32] = [0x42; 32];

struct World {
    server: UpdateServer,
    anchors: TrustAnchors,
    firmware: Vec<u8>,
}

fn world(seed: u64, encrypt: bool) -> World {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    if encrypt {
        server.set_content_key(KEY);
    }
    let firmware: Vec<u8> = (0..20_000u32).map(|i| (i % 249) as u8).collect();
    server.publish(vendor.release(firmware.clone(), Version(2), 0, 1));
    World {
        anchors: TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key()),
        server,
        firmware,
    }
}

fn device(w: &World, key: Option<[u8; 32]>) -> (MemoryLayout, UpdateAgent) {
    let layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
        SLOT_SIZE,
    )
    .unwrap();
    let agent = UpdateAgent::new(
        Arc::new(TinyCryptBackend),
        w.anchors,
        AgentConfig {
            device_id: DEV,
            app_id: 1,
            supports_differential: true,
            content_key: key,
        },
    );
    (layout, agent)
}

fn run_update(
    w: &World,
    layout: &mut MemoryLayout,
    agent: &mut UpdateAgent,
    nonce: u32,
) -> Result<AgentPhase, upkit::core::agent::AgentError> {
    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(1),
        installed_size: 0,
        allowed_link_offsets: vec![0],
        max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
    };
    let token = agent.request_device_token(layout, plan, nonce).unwrap();
    let prepared = w.server.prepare_update(&token).unwrap();
    let mut last = AgentPhase::NeedMore;
    for chunk in prepared.image.to_bytes().chunks(244) {
        last = agent.push_data(layout, chunk)?;
    }
    Ok(last)
}

#[test]
fn encrypted_update_round_trips() {
    let w = world(1, true);
    let (mut layout, mut agent) = device(&w, Some(KEY));
    assert_eq!(
        run_update(&w, &mut layout, &mut agent, 10).unwrap(),
        AgentPhase::Complete
    );
    let mut stored = vec![0u8; w.firmware.len()];
    layout
        .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut stored)
        .unwrap();
    assert_eq!(stored, w.firmware, "decrypted firmware matches the release");
}

#[test]
fn wire_payload_is_ciphertext() {
    let w = world(2, true);
    let prepared = w
        .server
        .prepare_update(&DeviceToken {
            device_id: DEV,
            nonce: 5,
            current_version: Version(0),
        })
        .unwrap();
    // Same length (stream cipher), different bytes everywhere that matters.
    assert_eq!(prepared.image.payload.len(), w.firmware.len());
    assert_ne!(prepared.image.payload, w.firmware);
    let matching = prepared
        .image
        .payload
        .iter()
        .zip(w.firmware.iter())
        .filter(|(a, b)| a == b)
        .count();
    // Statistically ~1/256 of bytes collide; anything near the plaintext
    // would indicate a broken keystream.
    assert!(
        matching < w.firmware.len() / 64,
        "{matching} matching bytes"
    );
}

#[test]
fn two_requests_use_distinct_keystreams() {
    // The nonce-derived cipher nonce must differ per request, or two
    // captures XOR to plaintext relations.
    let w = world(3, true);
    let image = |nonce: u32| {
        w.server
            .prepare_update(&DeviceToken {
                device_id: DEV,
                nonce,
                current_version: Version(0),
            })
            .unwrap()
            .image
            .payload
    };
    assert_ne!(image(1), image(2));
}

#[test]
fn wrong_content_key_rejected_before_reboot() {
    let w = world(4, true);
    let (mut layout, mut agent) = device(&w, Some([0x43; 32]));
    let err = run_update(&w, &mut layout, &mut agent, 11).unwrap_err();
    assert!(matches!(
        err,
        upkit::core::agent::AgentError::Verify(upkit::core::verifier::VerifyError::DigestMismatch)
    ));
}

#[test]
fn plaintext_update_to_encrypting_device_rejected() {
    // Server without a content key, device expecting encryption: the
    // "decrypted" plaintext is garbage and fails the digest check.
    let w = world(5, false);
    let (mut layout, mut agent) = device(&w, Some(KEY));
    let err = run_update(&w, &mut layout, &mut agent, 12).unwrap_err();
    assert!(matches!(
        err,
        upkit::core::agent::AgentError::Verify(upkit::core::verifier::VerifyError::DigestMismatch)
    ));
}

#[test]
fn encrypted_differential_update_round_trips() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    server.set_content_key(KEY);
    let v1: Vec<u8> = (0..15_000u32).map(|i| (i % 241) as u8).collect();
    let mut v2 = v1.clone();
    v2[400..440].fill(0x77);
    server.publish(vendor.release(v1.clone(), Version(1), 0, 1));
    server.publish(vendor.release(v2.clone(), Version(2), 0, 1));
    let w = World {
        anchors: TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key()),
        server,
        firmware: v2.clone(),
    };
    let (mut layout, mut agent) = device(&w, Some(KEY));
    // Install v1 as the patch base.
    layout.erase_slot(standard::SLOT_A).unwrap();
    layout
        .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &v1)
        .unwrap();

    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(1),
        installed_size: v1.len() as u32,
        allowed_link_offsets: vec![0],
        max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
    };
    let token = agent.request_device_token(&mut layout, plan, 13).unwrap();
    let prepared = w.server.prepare_update(&token).unwrap();
    assert!(
        matches!(
            prepared.kind,
            upkit::core::generation::ServedKind::Differential { .. }
        ),
        "expected a delta"
    );
    let mut last = AgentPhase::NeedMore;
    for chunk in prepared.image.to_bytes().chunks(64) {
        last = agent.push_data(&mut layout, chunk).unwrap();
    }
    assert_eq!(last, AgentPhase::Complete);
    let mut stored = vec![0u8; v2.len()];
    layout
        .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut stored)
        .unwrap();
    assert_eq!(stored, v2);
}
