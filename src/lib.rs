//! # UpKit — reproduction of the ICDCS 2019 update framework
//!
//! A from-scratch Rust implementation of *UpKit: An Open-Source, Portable,
//! and Lightweight Update Framework for Constrained IoT Devices* (Langiu,
//! Boano, Schuß, Römer — ICDCS 2019), including every substrate the paper
//! depends on and the baselines it compares against.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `upkit-core` | update agent FSM, pipeline, verifier, bootloader, vendor/update servers |
//! | [`crypto`] | `upkit-crypto` | SHA-256, HMAC, ECDSA-P256, security backends, simulated HSM |
//! | [`compress`] | `upkit-compress` | LZSS (streaming decoder) |
//! | [`delta`] | `upkit-delta` | bsdiff/bspatch (streaming patcher) |
//! | [`flash`] | `upkit-flash` | NOR-flash simulator, slot tables, POSIX-like slot IO |
//! | [`manifest`] | `upkit-manifest` | manifest, device token, update-image container |
//! | [`net`] | `upkit-net` | BLE-push / CoAP-pull transports, proxies, tamper injection |
//! | [`baselines`] | `upkit-baselines` | mcuboot / mcumgr / LwM2M / Sparrow analogues |
//! | [`sim`] | `upkit-sim` | platform profiles, end-to-end scenarios, failure injection |
//! | [`chaos`] | `upkit-chaos` | crash-consistency explorer: per-boundary fault injection, never-brick proofs |
//! | [`adversary`] | `upkit-adversary` | adversarial-input explorer: mutation campaigns over every untrusted byte surface |
//! | [`footprint`] | `upkit-footprint` | calibrated flash/RAM footprint model (Tables I–II, Fig. 7) |
//! | [`trace`] | `upkit-trace` | structured event tracing, metrics counters, NDJSON sinks |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for the complete flow; the short version:
//!
//! ```
//! use upkit::sim::{run_scenario, Approach, ScenarioConfig};
//!
//! let mut cfg = ScenarioConfig::fig8a(Approach::Push);
//! cfg.firmware_size = 8_192; // keep the doctest fast
//! let result = run_scenario(&cfg);
//! assert!(result.outcome.is_complete());
//! ```

#![warn(missing_docs)]

pub use upkit_adversary as adversary;
pub use upkit_baselines as baselines;
pub use upkit_chaos as chaos;
pub use upkit_compress as compress;
pub use upkit_core as core;
pub use upkit_crypto as crypto;
pub use upkit_delta as delta;
pub use upkit_flash as flash;
pub use upkit_footprint as footprint;
pub use upkit_manifest as manifest;
pub use upkit_net as net;
pub use upkit_sim as sim;
pub use upkit_trace as trace;
