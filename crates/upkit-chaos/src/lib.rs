//! Crash-consistency model checker for UpKit update scenarios.
//!
//! The paper's central robustness claim is that a device applying an
//! update can lose power at *any* moment and still boot a valid image
//! afterwards ("never brick"). The power-loss scenarios in `upkit-sim`
//! spot-check that claim at hand-picked byte budgets; this crate proves
//! it exhaustively for a scenario:
//!
//! 1. **Record** — run the scenario once over an instrumented flash
//!    proxy ([`upkit_flash::FaultFlash`]) that logs every mutating
//!    flash operation: each write (byte range) and each sector erase,
//!    plus reboot markers. Every logged op is a *boundary* at which
//!    power could plausibly fail.
//! 2. **Explore** — re-execute the scenario once per `(boundary, fault)`
//!    pair, injecting one fault from the model below exactly at that
//!    op, then reboot in a loop until the bootloader's decision is
//!    stable (a fixed point).
//! 3. **Check** — assert the never-brick invariant after every case:
//!    the booted slot holds a *dual-signature-valid* image whose
//!    version is at least the pre-update version.
//!
//! # Fault model
//!
//! | Fault | At the boundary op... |
//! |---|---|
//! | [`FaultClass::CleanCut`] | power dies before the op writes anything |
//! | [`FaultClass::TornWrite`] | half the write's bytes land, then power dies |
//! | [`FaultClass::TornErase`] | half the sector reads erased, then power dies |
//! | [`FaultClass::BitFlip`] | op is cut AND a bit of its first byte reads back wrong |
//! | [`FaultClass::DoubleCut`] | clean cut, and a second cut on the first recovery write |
//!
//! Exploration fans out across threads with the same shard-merge
//! discipline as the fleet simulator: each case runs with a private
//! tracer, and results are merged in case-index order, so the report,
//! the counter totals, and the trace byte stream are identical for any
//! thread count.
//!
//! When a violation is found, [`shrink_violation`] reduces it to the
//! smallest failing boundary for that fault class and emits a one-line
//! reproducer command for the `chaos_explore` bench binary.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use upkit_flash::fault::{FaultFlash, FaultKind, FaultPlan, FlashOp};
use upkit_flash::SimFlash;
use upkit_sim::failure::{update_world, world_geometry, WorldConfig, WorldMode};
use upkit_trace::{CountersSnapshot, Event, MemorySink, TraceRecord, Tracer};

/// The five fault classes injected at every explored boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Power dies exactly before the boundary op mutates anything.
    CleanCut,
    /// The boundary write lands half its bytes, then power dies.
    TornWrite,
    /// The boundary erase completes half the sector, then power dies.
    TornErase,
    /// The op is cut and the first byte of its range additionally reads
    /// back with a cleared bit (a weakly-programmed cell).
    BitFlip,
    /// A clean cut at the boundary, then a second cut on the very first
    /// mutating op of the recovery boot — power failing *during*
    /// recovery, the paper's hardest case.
    DoubleCut,
}

impl FaultClass {
    /// Every fault class, in canonical exploration order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::CleanCut,
        FaultClass::TornWrite,
        FaultClass::TornErase,
        FaultClass::BitFlip,
        FaultClass::DoubleCut,
    ];

    /// Stable label used in traces, reports, and reproducer commands.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::CleanCut => "clean_cut",
            FaultClass::TornWrite => "torn_write",
            FaultClass::TornErase => "torn_erase",
            FaultClass::BitFlip => "bit_flip",
            FaultClass::DoubleCut => "double_cut",
        }
    }

    /// Inverse of [`FaultClass::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.label() == label)
    }

    /// The flash-level fault plan realising this class at `boundary`.
    #[must_use]
    pub fn plan(self, boundary: u64) -> FaultPlan {
        let (kind, recovery_cut) = match self {
            FaultClass::CleanCut => (FaultKind::CleanCut, None),
            FaultClass::TornWrite => (FaultKind::TornWrite, None),
            FaultClass::TornErase => (FaultKind::TornErase, None),
            FaultClass::BitFlip => (FaultKind::BitFlip, None),
            // Second cut on the 0th mutating op after power returns.
            FaultClass::DoubleCut => (FaultKind::CleanCut, Some(0)),
        };
        FaultPlan {
            boundary,
            kind,
            recovery_cut,
        }
    }
}

/// Stable label for a scenario mode, used in reproducer commands.
#[must_use]
pub fn mode_label(mode: WorldMode) -> &'static str {
    match mode {
        WorldMode::Ab => "ab",
        WorldMode::StaticSwap { recovery: false } => "static",
        WorldMode::StaticSwap { recovery: true } => "static-recovery",
        WorldMode::Multi { components } => match components {
            2 => "multi-2",
            3 => "multi-3",
            4 => "multi-4",
            5 => "multi-5",
            6 => "multi-6",
            7 => "multi-7",
            8 => "multi-8",
            _ => "multi",
        },
    }
}

/// Inverse of [`mode_label`].
#[must_use]
pub fn mode_from_label(label: &str) -> Option<WorldMode> {
    if let Some(n) = label.strip_prefix("multi-") {
        let components: u8 = n.parse().ok()?;
        return (2..=8)
            .contains(&components)
            .then_some(WorldMode::Multi { components });
    }
    match label {
        "ab" => Some(WorldMode::Ab),
        "static" => Some(WorldMode::StaticSwap { recovery: false }),
        "static-recovery" => Some(WorldMode::StaticSwap { recovery: true }),
        _ => None,
    }
}

/// Parameters of one exploration run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// The update scenario under test.
    pub scenario: WorldConfig,
    /// Worker threads for the case fan-out (results are identical for
    /// any value ≥ 1).
    pub threads: usize,
    /// Reboot budget per case before declaring non-convergence.
    pub max_boots: u32,
    /// Explore at most this many boundaries, evenly strided across the
    /// recording (`None` = every boundary).
    pub boundary_limit: Option<usize>,
}

impl ChaosConfig {
    /// Exhaustive single-scenario exploration with sensible defaults.
    #[must_use]
    pub fn exhaustive(scenario: WorldConfig) -> Self {
        Self {
            scenario,
            threads: 1,
            max_boots: 8,
            boundary_limit: None,
        }
    }
}

/// Outcome of one `(boundary, fault)` case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseResult {
    /// Index of the faulted op in the recorded boundary log.
    pub boundary: u64,
    /// The injected fault class.
    pub fault: FaultClass,
    /// Whether the propagation session was interrupted by the fault.
    pub session_interrupted: bool,
    /// Boots the recovery loop needed to reach a fixed point (0 when it
    /// never did).
    pub boots: u32,
    /// Version running at the fixed point, if one was reached.
    pub version: Option<u16>,
    /// `None` when the never-brick invariant held; otherwise a
    /// description of how it failed.
    pub violation: Option<String>,
}

impl CaseResult {
    /// Whether the never-brick invariant held for this case.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Everything one exploration run learned.
#[derive(Debug)]
pub struct ChaosReport {
    /// The scenario that was explored.
    pub scenario: WorldConfig,
    /// Mutating flash ops recorded for the fault-free run (== the full
    /// boundary universe).
    pub recorded_ops: usize,
    /// The boundaries actually explored (all of them unless
    /// [`ChaosConfig::boundary_limit`] strided them).
    pub explored: Vec<u64>,
    /// One result per `(boundary, fault)` pair, in canonical order.
    pub cases: Vec<CaseResult>,
    /// The worst-case boot count any case needed to converge.
    pub max_boots_to_recovery: u32,
}

impl ChaosReport {
    /// The cases that violated the never-brick invariant.
    #[must_use]
    pub fn violations(&self) -> Vec<&CaseResult> {
        self.cases.iter().filter(|c| !c.ok()).collect()
    }

    /// The violation at the smallest `(boundary, fault)` pair, if any.
    #[must_use]
    pub fn minimal_violation(&self) -> Option<&CaseResult> {
        self.cases
            .iter()
            .filter(|c| !c.ok())
            .min_by_key(|c| (c.boundary, c.fault))
    }

    /// Whether every explored boundary was checked under every fault
    /// class — the coverage obligation: the case set must equal the
    /// full cross product, nothing skipped, nothing duplicated.
    #[must_use]
    pub fn full_coverage(&self) -> bool {
        use std::collections::HashSet;
        let expected: HashSet<(u64, FaultClass)> = self
            .explored
            .iter()
            .flat_map(|&b| FaultClass::ALL.into_iter().map(move |f| (b, f)))
            .collect();
        let actual: HashSet<(u64, FaultClass)> =
            self.cases.iter().map(|c| (c.boundary, c.fault)).collect();
        actual == expected && self.cases.len() == expected.len()
    }
}

/// Runs the scenario once, fault-free, over a recording proxy and
/// returns the full op log: every mutating flash op of the push session,
/// a [`FlashOp::Reboot`] marker, then every mutating op of the post-
/// update boot sequence (a static-swap scenario moves flash at boot, so
/// its boot ops are boundaries too).
#[must_use]
pub fn record_boundaries(scenario: &WorldConfig) -> Vec<FlashOp> {
    let (proxy, log) = FaultFlash::recording(Box::new(SimFlash::new(world_geometry(scenario))));
    let mut world = update_world(scenario, Box::new(proxy));
    let outcome = world.run_push_once(scenario.seed as u32 | 1);
    assert!(
        matches!(outcome, upkit_net::SessionOutcome::Complete),
        "the fault-free recording run must complete, got {outcome:?}"
    );
    log.lock().expect("op log poisoned").push(FlashOp::Reboot);
    world
        .reboot_to_fixed_point(8)
        .expect("the fault-free run must boot");
    let ops = log.lock().expect("op log poisoned").clone();
    ops
}

/// The boundary indices to explore: all of them, or `limit` evenly
/// strided across the recording (always including boundary 0).
#[must_use]
pub fn select_boundaries(total: usize, limit: Option<usize>) -> Vec<u64> {
    match limit {
        Some(limit) if limit < total => (0..limit).map(|i| (i * total / limit) as u64).collect(),
        _ => (0..total as u64).collect(),
    }
}

/// Re-runs the scenario with `fault` injected at `boundary`, reboots to
/// a fixed point, and checks the never-brick invariant. Flash, boot, and
/// fault counters are charged to `tracer`, which also receives
/// `fault_injected` / `fault_checked` events.
pub fn run_case(
    scenario: &WorldConfig,
    boundary: u64,
    fault: FaultClass,
    max_boots: u32,
    tracer: &Tracer,
) -> CaseResult {
    // Build the proxy idle and only arm the plan once the world is
    // provisioned: `update_world` resets the boundary epoch after
    // installing v1, so `boundary` indexes update-time ops exactly as
    // [`record_boundaries`] numbered them.
    let (proxy, handle) = FaultFlash::injectable(Box::new(SimFlash::new(world_geometry(scenario))));
    let mut world = update_world(scenario, Box::new(proxy));
    handle.inject(fault.plan(boundary));
    world.layout.set_tracer(tracer.clone());
    upkit_trace::Counters::add(&tracer.counters().faults_injected, 1);
    tracer.emit(|| Event::FaultInjected {
        boundary,
        fault: fault.label(),
    });

    let outcome = world.run_push_once(scenario.seed as u32 | 1);
    let session_interrupted = !matches!(outcome, upkit_net::SessionOutcome::Complete);

    let base = world.base_version;
    let (boots, version, violation) = match world.reboot_to_fixed_point(max_boots) {
        Ok(report) => {
            let booted = report.outcome.booted_slot;
            let version = report.outcome.version;
            let violation = if !world.slot_verifies(booted) {
                Some(format!(
                    "booted slot {booted:?} does not hold a dual-signature-valid image"
                ))
            } else if version < base {
                Some(format!(
                    "booted version {version} is older than the pre-update version {base}"
                ))
            } else if world.component_set_mixed() {
                // The never-mixed-set invariant (multi-component worlds
                // only; `component_set_mixed` is vacuously false
                // otherwise): a stable boot must run either the complete
                // old set or the complete new set.
                upkit_trace::Counters::add(&tracer.counters().mixed_set_violations, 1);
                Some(format!(
                    "mixed component set at the fixed point: {:?}",
                    world.component_versions()
                ))
            } else {
                None
            };
            (report.boots, Some(version.0), violation)
        }
        Err(err) => (0, None, Some(format!("device bricked: {err}"))),
    };

    if violation.is_some() {
        upkit_trace::Counters::add(&tracer.counters().fault_violations, 1);
    }
    tracer.emit(|| Event::FaultChecked {
        boundary,
        fault: fault.label(),
        boots: u64::from(boots),
        version: u64::from(version.unwrap_or(0)),
        ok: violation.is_none(),
    });

    CaseResult {
        boundary,
        fault,
        session_interrupted,
        boots,
        version,
        violation,
    }
}

/// [`explore_traced`] with tracing disabled.
#[must_use]
pub fn explore(config: &ChaosConfig) -> ChaosReport {
    explore_traced(config, &Tracer::disabled())
}

/// Records the scenario's boundaries, then explores every selected
/// `(boundary, fault)` case across `config.threads` workers.
///
/// Determinism: every case is a pure function of `(scenario, boundary,
/// fault)`; each worker charges a case-private tracer, and the private
/// buffers are merged into `tracer` in case-index order — so the report,
/// counter totals, and trace record sequence are byte-identical for any
/// thread count.
#[must_use]
pub fn explore_traced(config: &ChaosConfig, tracer: &Tracer) -> ChaosReport {
    let ops = record_boundaries(&config.scenario);
    let recorded_ops = ops
        .iter()
        .filter(|op| !matches!(op, FlashOp::Reboot))
        .count();
    let explored = select_boundaries(recorded_ops, config.boundary_limit);

    let cases: Vec<(u64, FaultClass)> = explored
        .iter()
        .flat_map(|&b| FaultClass::ALL.into_iter().map(move |f| (b, f)))
        .collect();

    type Slot = Mutex<Option<(CaseResult, CountersSnapshot, Vec<TraceRecord>)>>;
    let slots: Vec<Slot> = (0..cases.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let threads = config.threads.max(1);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(boundary, fault)) = cases.get(index) else {
                    break;
                };
                let sink = Arc::new(MemorySink::new());
                let case_tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
                let result = run_case(
                    &config.scenario,
                    boundary,
                    fault,
                    config.max_boots,
                    &case_tracer,
                );
                let snapshot = case_tracer.counters().snapshot();
                *slots[index].lock().expect("result slot poisoned") =
                    Some((result, snapshot, sink.drain()));
            });
        }
    })
    .expect("chaos workers do not panic");

    // Merge in case-index order: the parent trace is independent of
    // which worker ran which case.
    let mut results = Vec::with_capacity(cases.len());
    for slot in &slots {
        let (result, snapshot, records) = slot
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("every case ran");
        tracer.absorb(&snapshot, &records);
        results.push(result);
    }

    let max_boots_to_recovery = results.iter().map(|c| c.boots).max().unwrap_or(0);
    ChaosReport {
        scenario: config.scenario,
        recorded_ops,
        explored,
        cases: results,
        max_boots_to_recovery,
    }
}

/// A violation reduced to its smallest failing boundary, plus the
/// one-line command that reproduces it.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimal failing case.
    pub case: CaseResult,
    /// A `cargo run` command reproducing exactly this case.
    pub command: String,
}

/// The reproducer command for one `(scenario, fault, boundary)` case.
#[must_use]
pub fn repro_command(scenario: &WorldConfig, fault: FaultClass, boundary: u64) -> String {
    format!(
        "cargo run --release -p upkit-bench --bin chaos_explore -- --repro {} {} {} {} {} {}",
        mode_label(scenario.mode),
        scenario.seed,
        scenario.firmware_size,
        scenario.slot_size,
        fault.label(),
        boundary
    )
}

/// Shrinks the report's minimal violation to the smallest boundary that
/// still fails under the same fault class, re-running only boundaries
/// the (possibly strided) exploration skipped. Returns `None` when the
/// report has no violations.
#[must_use]
pub fn shrink_violation(config: &ChaosConfig, report: &ChaosReport) -> Option<Shrunk> {
    let worst = report.minimal_violation()?;
    let passed: std::collections::HashSet<u64> = report
        .cases
        .iter()
        .filter(|c| c.fault == worst.fault && c.ok())
        .map(|c| c.boundary)
        .collect();
    let tracer = Tracer::disabled();
    for boundary in 0..worst.boundary {
        if passed.contains(&boundary) {
            continue;
        }
        let case = run_case(
            &config.scenario,
            boundary,
            worst.fault,
            config.max_boots,
            &tracer,
        );
        if !case.ok() {
            let command = repro_command(&config.scenario, case.fault, case.boundary);
            return Some(Shrunk { case, command });
        }
    }
    let command = repro_command(&config.scenario, worst.fault, worst.boundary);
    Some(Shrunk {
        case: worst.clone(),
        command,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for fault in FaultClass::ALL {
            assert_eq!(FaultClass::from_label(fault.label()), Some(fault));
        }
        assert_eq!(FaultClass::from_label("meteor_strike"), None);
        for mode in [
            WorldMode::Ab,
            WorldMode::StaticSwap { recovery: false },
            WorldMode::StaticSwap { recovery: true },
            WorldMode::Multi { components: 2 },
            WorldMode::Multi { components: 3 },
            WorldMode::Multi { components: 8 },
        ] {
            assert_eq!(mode_from_label(mode_label(mode)), Some(mode));
        }
        assert_eq!(mode_from_label("multi-1"), None);
        assert_eq!(mode_from_label("multi-9"), None);
        assert_eq!(mode_from_label("multi-x"), None);
    }

    #[test]
    fn boundary_selection_is_total_or_evenly_strided() {
        assert_eq!(select_boundaries(4, None), vec![0, 1, 2, 3]);
        assert_eq!(select_boundaries(4, Some(10)), vec![0, 1, 2, 3]);
        let strided = select_boundaries(100, Some(4));
        assert_eq!(strided, vec![0, 25, 50, 75]);
    }

    #[test]
    fn double_cut_plan_arms_a_recovery_cut() {
        let plan = FaultClass::DoubleCut.plan(7);
        assert_eq!(plan.boundary, 7);
        assert_eq!(plan.kind, FaultKind::CleanCut);
        assert_eq!(plan.recovery_cut, Some(0));
        assert_eq!(FaultClass::TornErase.plan(3).recovery_cut, None);
    }
}
