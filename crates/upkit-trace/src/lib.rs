//! Structured event tracing and always-on metrics counters for UpKit.
//!
//! The paper's evaluation is entirely about *measured* behaviour — bytes
//! on the wire, flash erases, verification counts, update latency. This
//! crate is the substrate those measurements flow through:
//!
//! * [`Counters`] — a registry of relaxed atomics that is **always on**.
//!   Incrementing a counter is a single relaxed `fetch_add`; hot paths
//!   charge it unconditionally and benches read a [`CountersSnapshot`]
//!   at the end of a run.
//! * [`TraceSink`] + [`Event`] — a structured event stream that is
//!   **zero-cost when disabled**: [`Tracer::emit`] takes a closure and
//!   only builds the event when a sink is installed.
//!
//! Timestamps are *virtual time* in microseconds. The tracer's clock
//! only moves forward ([`Tracer::advance_now_to`] is a `fetch_max`), so
//! a merged trace from several interleaved sessions is monotone by
//! construction: each layer stamps the latest virtual time any driver
//! has announced.
//!
//! The crate is a leaf — every runtime crate depends on it and it
//! depends on nothing — so one [`Tracer`] handle can be threaded from
//! the fleet scheduler down through sessions, the agent pipeline, and
//! the flash layer, producing a single NDJSON stream for a whole update.
//!
//! # `no_std` support
//!
//! With `--no-default-features` the crate is `no_std + alloc`: counters,
//! events, and the [`Tracer`] handle stay available (they only need
//! `core::sync::atomic` and `alloc`), while the lock-based sinks
//! ([`MemorySink`], [`NdjsonSink`]) are host-only behind the `std`
//! feature.

#![cfg_attr(not(feature = "std"), no_std)]
#![warn(
    clippy::std_instead_of_core,
    clippy::std_instead_of_alloc,
    clippy::alloc_instead_of_core
)]

extern crate alloc;

use alloc::boxed::Box;
use alloc::format;
use alloc::string::{String, ToString};
use alloc::sync::Arc;
use alloc::vec::Vec;
use core::fmt::Write as _;
use core::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "std")]
use std::sync::Mutex;

/// Number of per-slot buckets tracked by [`Counters`]. Slot ids at or
/// above this saturate into the last bucket.
pub const SLOT_BUCKETS: usize = 4;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One structured trace event. Variants cover every instrumented layer:
/// transport sessions, the update agent, the streaming pipeline, the
/// flash layout, the bootloader, and the fleet scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// Session: device token handed to the proxy (one round trip).
    TokenExchange {
        /// Stream id of the session (device id in the fleet sims).
        stream: u64,
    },
    /// Session: proxy resolved the token against the update server.
    ProxyFetch {
        /// Stream id of the session.
        stream: u64,
        /// Serialized manifest region length.
        manifest_bytes: u64,
        /// Payload region length.
        payload_bytes: u64,
    },
    /// Session: one link-layer chunk arrived at the device.
    ChunkDelivered {
        /// Stream id of the session.
        stream: u64,
        /// Chunk length in bytes.
        bytes: u64,
    },
    /// Session: a chunk was lost and will be retransmitted.
    ChunkLost {
        /// Stream id of the session.
        stream: u64,
        /// Chunk length in bytes (charged to the air anyway).
        bytes: u64,
        /// Zero-based retransmission attempt index.
        attempt: u64,
    },
    /// Session: device acknowledged the manifest (pull go-ahead).
    GoAhead {
        /// Stream id of the session.
        stream: u64,
    },
    /// Session finished, successfully or not.
    SessionDone {
        /// Stream id of the session.
        stream: u64,
        /// Outcome label (`"complete"`, `"timed_out"`, ...).
        outcome: &'static str,
        /// Total bytes charged toward the device.
        bytes_to_device: u64,
    },
    /// Agent: update state machine moved between states.
    AgentTransition {
        /// Device id the agent is configured with.
        device: u64,
        /// State the agent left.
        from: &'static str,
        /// State the agent entered.
        to: &'static str,
    },
    /// Agent: an ECDSA signature verification ran.
    SignatureChecked {
        /// Device id the agent is configured with.
        device: u64,
        /// Whether the signature verified.
        ok: bool,
    },
    /// Pipeline: the streaming decrypt→decompress→patch chain finished.
    PipelineFinished {
        /// Compressed/encrypted bytes pushed in.
        bytes_in: u64,
        /// Plaintext firmware bytes produced.
        bytes_out: u64,
    },
    /// Flash: bytes read from a slot.
    FlashRead {
        /// Slot index.
        slot: u8,
        /// Bytes read.
        bytes: u64,
    },
    /// Flash: bytes programmed into a slot.
    FlashWrite {
        /// Slot index.
        slot: u8,
        /// Bytes written.
        bytes: u64,
    },
    /// Flash: sectors erased in a slot.
    FlashErase {
        /// Slot index.
        slot: u8,
        /// Sectors erased.
        sectors: u64,
    },
    /// Flash: two slots exchanged contents (A/B swap).
    SlotsSwapped {
        /// First slot index.
        a: u8,
        /// Second slot index.
        b: u8,
    },
    /// Bootloader: a slot was selected and booted.
    Boot {
        /// Slot index booted from.
        slot: u8,
        /// Firmware version found in the slot header.
        version: u64,
    },
    /// Scheduler: the virtual-clock event loop dispatched a device.
    SchedulerDispatch {
        /// Device id dispatched.
        device: u64,
        /// Virtual time of the dispatched event.
        at_micros: u64,
    },
    /// Scheduler: a device finished its campaign.
    DeviceComplete {
        /// Device id.
        device: u64,
        /// Outcome label (`"complete"`, `"gave_up"`, ...).
        outcome: &'static str,
    },
    /// Fleet rollout: one polling round completed.
    RolloutRound {
        /// Round number (1-based).
        round: u64,
        /// Devices converged so far.
        completed: u64,
    },
    /// Bootloader: a staged component was committed to its bootable slot
    /// during journal replay of a multi-component set.
    ComponentCommit {
        /// Component identifier from the manifest component table.
        component: u64,
        /// Bootable slot the component was committed to.
        slot: u8,
        /// Component version now active.
        version: u64,
    },
    /// Bootloader: a bootable component failed verification and was
    /// restored from its staging copy.
    ComponentRollback {
        /// Component identifier from the manifest component table.
        component: u64,
        /// Bootable slot that was restored.
        slot: u8,
    },
    /// Chaos explorer: a fault was injected at a flash-op boundary.
    FaultInjected {
        /// Zero-based mutating-op boundary index the fault fired at.
        boundary: u64,
        /// Fault class label (`"clean_cut"`, `"torn_write"`, ...).
        fault: &'static str,
    },
    /// Chaos explorer: the post-fault reboot loop finished and the
    /// never-brick invariant was checked.
    FaultChecked {
        /// Boundary index the fault fired at.
        boundary: u64,
        /// Fault class label.
        fault: &'static str,
        /// Boot attempts the recovery loop needed.
        boots: u64,
        /// Version stable after recovery (0 when the device bricked).
        version: u64,
        /// Whether the invariant held.
        ok: bool,
    },
    /// Adversarial explorer: one mutated input is about to run the
    /// acceptance path.
    MutationInjected {
        /// Case index within the surface's mutation universe.
        case: u64,
        /// Mutated surface label (`"lzss"`, `"frame_corrupt"`, ...).
        surface: &'static str,
    },
    /// Adversarial explorer: the mutated case finished and the
    /// never-accept / never-panic / bounded-memory invariant was checked.
    MutationChecked {
        /// Case index within the surface's mutation universe.
        case: u64,
        /// Mutated surface label.
        surface: &'static str,
        /// Whether the acceptance path panicked.
        panicked: bool,
        /// Whether the invariant held.
        ok: bool,
    },
    /// Generation: the server ran a fresh diff for a version transition
    /// and stored it in the content-addressed patch cache.
    PatchGenerated {
        /// First 8 bytes (big-endian) of the old image's SHA-256.
        old_digest: u64,
        /// First 8 bytes (big-endian) of the new image's SHA-256.
        new_digest: u64,
        /// Application/hardware identifier the transition belongs to.
        platform: u64,
        /// Patch container label (`"raw"`, `"framed"`).
        format: &'static str,
        /// Finished payload length in bytes.
        bytes: u64,
    },
    /// Campaign orchestrator: the staged rollout advanced to a new stage.
    CampaignStage {
        /// Zero-based stage index now in effect.
        stage: u64,
        /// Fraction of the target cohort admitted, in basis points
        /// (10000 = the whole cohort).
        fraction_bps: u64,
        /// Campaign round (1-based) at which the stage took effect.
        round: u64,
    },
    /// Campaign orchestrator: the fleet-health policy halted the campaign.
    CampaignHalted {
        /// Campaign round (1-based) at which serving stopped.
        round: u64,
        /// Which health counter regressed (`"boot_failures"`,
        /// `"forgeries"`, `"retry_storm"`).
        reason: &'static str,
    },
    /// Generation: a patch request was answered from the
    /// content-addressed cache without re-diffing.
    PatchCacheHit {
        /// First 8 bytes (big-endian) of the old image's SHA-256.
        old_digest: u64,
        /// First 8 bytes (big-endian) of the new image's SHA-256.
        new_digest: u64,
        /// Application/hardware identifier the transition belongs to.
        platform: u64,
        /// Patch container label (`"raw"`, `"framed"`).
        format: &'static str,
    },
    /// Proxy: a caching proxy assembled one downstream stream from its
    /// block cache plus whatever upstream fetches were still needed.
    ProxyServe {
        /// Proxy identifier (gateway index in the topology sims).
        proxy: u64,
        /// First 8 bytes (big-endian) of the stream's SHA-256.
        digest: u64,
        /// Blocks served straight from the cache.
        hits: u64,
        /// Blocks fetched upstream before serving.
        misses: u64,
        /// Blocks joined while another session's fetch was in flight.
        joins: u64,
        /// Bytes moved over the upstream link for this serve.
        upstream_bytes: u64,
        /// Virtual microseconds the downstream session waited for the
        /// stream to be ready.
        wait_micros: u64,
    },
    /// Scheduler: a duty-cycled device's wake event fell in a sleep
    /// window and was deferred to the next awake edge.
    DeviceSleep {
        /// Device id.
        device: u64,
        /// Virtual time the device resumes at.
        until_micros: u64,
    },
}

impl Event {
    /// Stable machine-readable name of the variant, used as the
    /// `"event"` field in NDJSON output.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TokenExchange { .. } => "token_exchange",
            Event::ProxyFetch { .. } => "proxy_fetch",
            Event::ChunkDelivered { .. } => "chunk_delivered",
            Event::ChunkLost { .. } => "chunk_lost",
            Event::GoAhead { .. } => "go_ahead",
            Event::SessionDone { .. } => "session_done",
            Event::AgentTransition { .. } => "agent_transition",
            Event::SignatureChecked { .. } => "signature_checked",
            Event::PipelineFinished { .. } => "pipeline_finished",
            Event::FlashRead { .. } => "flash_read",
            Event::FlashWrite { .. } => "flash_write",
            Event::FlashErase { .. } => "flash_erase",
            Event::SlotsSwapped { .. } => "slots_swapped",
            Event::Boot { .. } => "boot",
            Event::SchedulerDispatch { .. } => "scheduler_dispatch",
            Event::DeviceComplete { .. } => "device_complete",
            Event::RolloutRound { .. } => "rollout_round",
            Event::ComponentCommit { .. } => "component_commit",
            Event::ComponentRollback { .. } => "component_rollback",
            Event::FaultInjected { .. } => "fault_injected",
            Event::FaultChecked { .. } => "fault_checked",
            Event::MutationInjected { .. } => "mutation_injected",
            Event::MutationChecked { .. } => "mutation_checked",
            Event::PatchGenerated { .. } => "patch_generated",
            Event::PatchCacheHit { .. } => "patch_cache_hit",
            Event::CampaignStage { .. } => "campaign_stage",
            Event::CampaignHalted { .. } => "campaign_halted",
            Event::ProxyServe { .. } => "proxy_serve",
            Event::DeviceSleep { .. } => "device_sleep",
        }
    }

    /// Coarse layer the event belongs to (`"session"`, `"agent"`,
    /// `"pipeline"`, `"flash"`, `"boot"`, `"scheduler"`, `"chaos"`,
    /// `"adversary"`, `"generation"`, `"campaign"`, `"proxy"`).
    #[must_use]
    pub fn layer(&self) -> &'static str {
        match self {
            Event::TokenExchange { .. }
            | Event::ProxyFetch { .. }
            | Event::ChunkDelivered { .. }
            | Event::ChunkLost { .. }
            | Event::GoAhead { .. }
            | Event::SessionDone { .. } => "session",
            Event::AgentTransition { .. } | Event::SignatureChecked { .. } => "agent",
            Event::PipelineFinished { .. } => "pipeline",
            Event::FlashRead { .. }
            | Event::FlashWrite { .. }
            | Event::FlashErase { .. }
            | Event::SlotsSwapped { .. } => "flash",
            Event::Boot { .. }
            | Event::ComponentCommit { .. }
            | Event::ComponentRollback { .. } => "boot",
            Event::SchedulerDispatch { .. }
            | Event::DeviceComplete { .. }
            | Event::RolloutRound { .. }
            | Event::DeviceSleep { .. } => "scheduler",
            Event::ProxyServe { .. } => "proxy",
            Event::FaultInjected { .. } | Event::FaultChecked { .. } => "chaos",
            Event::MutationInjected { .. } | Event::MutationChecked { .. } => "adversary",
            Event::PatchGenerated { .. } | Event::PatchCacheHit { .. } => "generation",
            Event::CampaignStage { .. } | Event::CampaignHalted { .. } => "campaign",
        }
    }

    fn write_fields(&self, out: &mut String) {
        // All field values are integers, booleans, or static strings
        // from a fixed vocabulary — no escaping is ever required.
        match self {
            Event::TokenExchange { stream } | Event::GoAhead { stream } => {
                let _ = write!(out, r#","stream":{stream}"#);
            }
            Event::ProxyFetch {
                stream,
                manifest_bytes,
                payload_bytes,
            } => {
                let _ = write!(
                    out,
                    r#","stream":{stream},"manifest_bytes":{manifest_bytes},"payload_bytes":{payload_bytes}"#
                );
            }
            Event::ChunkDelivered { stream, bytes } => {
                let _ = write!(out, r#","stream":{stream},"bytes":{bytes}"#);
            }
            Event::ChunkLost {
                stream,
                bytes,
                attempt,
            } => {
                let _ = write!(
                    out,
                    r#","stream":{stream},"bytes":{bytes},"attempt":{attempt}"#
                );
            }
            Event::SessionDone {
                stream,
                outcome,
                bytes_to_device,
            } => {
                let _ = write!(
                    out,
                    r#","stream":{stream},"outcome":"{outcome}","bytes_to_device":{bytes_to_device}"#
                );
            }
            Event::AgentTransition { device, from, to } => {
                let _ = write!(out, r#","device":{device},"from":"{from}","to":"{to}""#);
            }
            Event::SignatureChecked { device, ok } => {
                let _ = write!(out, r#","device":{device},"ok":{ok}"#);
            }
            Event::PipelineFinished {
                bytes_in,
                bytes_out,
            } => {
                let _ = write!(out, r#","bytes_in":{bytes_in},"bytes_out":{bytes_out}"#);
            }
            Event::FlashRead { slot, bytes } | Event::FlashWrite { slot, bytes } => {
                let _ = write!(out, r#","slot":{slot},"bytes":{bytes}"#);
            }
            Event::FlashErase { slot, sectors } => {
                let _ = write!(out, r#","slot":{slot},"sectors":{sectors}"#);
            }
            Event::SlotsSwapped { a, b } => {
                let _ = write!(out, r#","a":{a},"b":{b}"#);
            }
            Event::Boot { slot, version } => {
                let _ = write!(out, r#","slot":{slot},"version":{version}"#);
            }
            Event::SchedulerDispatch { device, at_micros } => {
                let _ = write!(out, r#","device":{device},"at_micros":{at_micros}"#);
            }
            Event::DeviceComplete { device, outcome } => {
                let _ = write!(out, r#","device":{device},"outcome":"{outcome}""#);
            }
            Event::RolloutRound { round, completed } => {
                let _ = write!(out, r#","round":{round},"completed":{completed}"#);
            }
            Event::ComponentCommit {
                component,
                slot,
                version,
            } => {
                let _ = write!(
                    out,
                    r#","component":{component},"slot":{slot},"version":{version}"#
                );
            }
            Event::ComponentRollback { component, slot } => {
                let _ = write!(out, r#","component":{component},"slot":{slot}"#);
            }
            Event::FaultInjected { boundary, fault } => {
                let _ = write!(out, r#","boundary":{boundary},"fault":"{fault}""#);
            }
            Event::FaultChecked {
                boundary,
                fault,
                boots,
                version,
                ok,
            } => {
                let _ = write!(
                    out,
                    r#","boundary":{boundary},"fault":"{fault}","boots":{boots},"version":{version},"ok":{ok}"#
                );
            }
            Event::MutationInjected { case, surface } => {
                let _ = write!(out, r#","case":{case},"surface":"{surface}""#);
            }
            Event::MutationChecked {
                case,
                surface,
                panicked,
                ok,
            } => {
                let _ = write!(
                    out,
                    r#","case":{case},"surface":"{surface}","panicked":{panicked},"ok":{ok}"#
                );
            }
            Event::PatchGenerated {
                old_digest,
                new_digest,
                platform,
                format,
                bytes,
            } => {
                let _ = write!(
                    out,
                    r#","old_digest":{old_digest},"new_digest":{new_digest},"platform":{platform},"format":"{format}","bytes":{bytes}"#
                );
            }
            Event::PatchCacheHit {
                old_digest,
                new_digest,
                platform,
                format,
            } => {
                let _ = write!(
                    out,
                    r#","old_digest":{old_digest},"new_digest":{new_digest},"platform":{platform},"format":"{format}""#
                );
            }
            Event::CampaignStage {
                stage,
                fraction_bps,
                round,
            } => {
                let _ = write!(
                    out,
                    r#","stage":{stage},"fraction_bps":{fraction_bps},"round":{round}"#
                );
            }
            Event::CampaignHalted { round, reason } => {
                let _ = write!(out, r#","round":{round},"reason":"{reason}""#);
            }
            Event::ProxyServe {
                proxy,
                digest,
                hits,
                misses,
                joins,
                upstream_bytes,
                wait_micros,
            } => {
                let _ = write!(
                    out,
                    r#","proxy":{proxy},"digest":{digest},"hits":{hits},"misses":{misses},"joins":{joins},"upstream_bytes":{upstream_bytes},"wait_micros":{wait_micros}"#
                );
            }
            Event::DeviceSleep {
                device,
                until_micros,
            } => {
                let _ = write!(out, r#","device":{device},"until_micros":{until_micros}"#);
            }
        }
    }
}

/// A timestamped, sequence-numbered event as handed to sinks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time in microseconds at which the event was stamped.
    pub ts_micros: u64,
    /// Monotone per-tracer sequence number (ties broken by emit order).
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl TraceRecord {
    /// Render the record as one NDJSON line (no trailing newline).
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            r#"{{"ts":{},"seq":{},"layer":"{}","event":"{}""#,
            self.ts_micros,
            self.seq,
            self.event.layer(),
            self.event.kind()
        );
        self.event.write_fields(&mut out);
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Destination for trace records. Implementations must tolerate calls
/// from multiple threads (the sharded rollout merges per-shard buffers,
/// but sinks are still shared behind `Arc`).
pub trait TraceSink: Send + Sync {
    /// Consume one record. Ordering across calls follows `seq`.
    fn record(&self, record: &TraceRecord);
}

impl<T: TraceSink + ?Sized> TraceSink for Arc<T> {
    fn record(&self, record: &TraceRecord) {
        (**self).record(record);
    }
}

/// Sink that renders each record as one NDJSON line into a writer.
#[cfg(feature = "std")]
pub struct NdjsonSink<W: std::io::Write + Send> {
    writer: Mutex<W>,
}

#[cfg(feature = "std")]
impl<W: std::io::Write + Send> NdjsonSink<W> {
    /// Wrap `writer`; each record becomes one `\n`-terminated line.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }

    /// Unwrap the writer (flushes buffered lines by dropping the lock).
    ///
    /// # Panics
    /// Panics if the sink mutex was poisoned.
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("ndjson sink poisoned")
    }
}

#[cfg(feature = "std")]
impl<W: std::io::Write + Send> TraceSink for NdjsonSink<W> {
    fn record(&self, record: &TraceRecord) {
        let mut guard = self.writer.lock().expect("ndjson sink poisoned");
        let _ = writeln!(guard, "{}", record.to_ndjson());
    }
}

/// Sink that buffers records in memory — the workhorse for tests and
/// for the per-shard buffers of the sharded rollout.
#[cfg(feature = "std")]
#[derive(Default)]
pub struct MemorySink {
    records: Mutex<Vec<TraceRecord>>,
}

#[cfg(feature = "std")]
impl MemorySink {
    /// Empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of everything recorded so far.
    ///
    /// # Panics
    /// Panics if the sink mutex was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("memory sink poisoned").clone()
    }

    /// Remove and return everything recorded so far.
    ///
    /// # Panics
    /// Panics if the sink mutex was poisoned.
    pub fn drain(&self) -> Vec<TraceRecord> {
        core::mem::take(&mut *self.records.lock().expect("memory sink poisoned"))
    }

    /// Number of records currently buffered.
    ///
    /// # Panics
    /// Panics if the sink mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(feature = "std")]
impl TraceSink for MemorySink {
    fn record(&self, record: &TraceRecord) {
        self.records
            .lock()
            .expect("memory sink poisoned")
            .push(record.clone());
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

macro_rules! counters {
    ($(#[$doc:meta] $name:ident),+ $(,)?) => {
        /// Always-on metrics registry: relaxed atomics charged by the
        /// hot paths whether or not a trace sink is installed.
        ///
        /// Per-slot flash activity lands in [`SLOT_BUCKETS`] buckets
        /// indexed by slot id (ids past the last bucket saturate).
        #[derive(Default)]
        pub struct Counters {
            $(#[$doc] pub $name: AtomicU64,)+
            /// Bytes read, per slot bucket.
            pub flash_reads: [AtomicU64; SLOT_BUCKETS],
            /// Bytes written, per slot bucket.
            pub flash_writes: [AtomicU64; SLOT_BUCKETS],
            /// Sectors erased, per slot bucket.
            pub flash_erases: [AtomicU64; SLOT_BUCKETS],
        }

        /// Plain-integer copy of [`Counters`] for diffing and reports.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct CountersSnapshot {
            $(#[$doc] pub $name: u64,)+
            /// Bytes read, per slot bucket.
            pub flash_reads: [u64; SLOT_BUCKETS],
            /// Bytes written, per slot bucket.
            pub flash_writes: [u64; SLOT_BUCKETS],
            /// Sectors erased, per slot bucket.
            pub flash_erases: [u64; SLOT_BUCKETS],
        }

        impl Counters {
            /// Read every counter (relaxed; exact once quiescent).
            #[must_use]
            pub fn snapshot(&self) -> CountersSnapshot {
                CountersSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                    flash_reads: core::array::from_fn(|i| self.flash_reads[i].load(Ordering::Relaxed)),
                    flash_writes: core::array::from_fn(|i| self.flash_writes[i].load(Ordering::Relaxed)),
                    flash_erases: core::array::from_fn(|i| self.flash_erases[i].load(Ordering::Relaxed)),
                }
            }

            /// Add a snapshot into this registry (shard merge).
            pub fn absorb(&self, s: &CountersSnapshot) {
                $(self.$name.fetch_add(s.$name, Ordering::Relaxed);)+
                for i in 0..SLOT_BUCKETS {
                    self.flash_reads[i].fetch_add(s.flash_reads[i], Ordering::Relaxed);
                    self.flash_writes[i].fetch_add(s.flash_writes[i], Ordering::Relaxed);
                    self.flash_erases[i].fetch_add(s.flash_erases[i], Ordering::Relaxed);
                }
            }

            /// Zero every counter (relaxed). For draining per-shard deltas:
            /// snapshot, reset, absorb the snapshot elsewhere.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
                for i in 0..SLOT_BUCKETS {
                    self.flash_reads[i].store(0, Ordering::Relaxed);
                    self.flash_writes[i].store(0, Ordering::Relaxed);
                    self.flash_erases[i].store(0, Ordering::Relaxed);
                }
            }
        }

        impl CountersSnapshot {
            /// Flat `(name, value)` view over every field, per-slot
            /// buckets expanded as `flash_reads_slot0` etc. — the shape
            /// bench bins serialize into the `metrics` JSON section.
            #[must_use]
            pub fn fields(&self) -> Vec<(String, u64)> {
                let mut out = Vec::with_capacity(16 + 3 * SLOT_BUCKETS);
                $(out.push((stringify!($name).to_string(), self.$name));)+
                for i in 0..SLOT_BUCKETS {
                    out.push((format!("flash_reads_slot{i}"), self.flash_reads[i]));
                    out.push((format!("flash_writes_slot{i}"), self.flash_writes[i]));
                    out.push((format!("flash_erases_slot{i}"), self.flash_erases[i]));
                }
                out
            }
        }
    };
}

counters! {
    /// Link bytes charged toward the device (manifest + payload + overhead).
    link_bytes_to_device,
    /// Link bytes charged from the device (tokens, acks).
    link_bytes_from_device,
    /// Link frames/chunks sent (including ones that were then lost).
    frames_sent,
    /// Link frames/chunks lost to the loss model.
    frames_lost,
    /// Retransmission attempts after a loss.
    retries,
    /// Request/response round trips.
    round_trips,
    /// Virtual microseconds spent on the air.
    link_micros,
    /// Virtual microseconds spent waiting on retry backoff.
    wait_micros,
    /// ECDSA signature verifications performed.
    sig_verifications,
    /// Compressed/encrypted bytes entering the streaming pipeline.
    pipeline_bytes_in,
    /// Plaintext firmware bytes produced by the streaming pipeline.
    pipeline_bytes_out,
    /// Bootloader boot decisions taken.
    boots,
    /// A/B slot swaps performed.
    slot_swaps,
    /// Faults injected by the crash-consistency explorer.
    faults_injected,
    /// Never-brick invariant violations observed by the explorer.
    fault_violations,
    /// Update packages the agent rejected with a typed error.
    packages_rejected,
    /// Tampered packages a device accepted as valid (must stay zero).
    forgeries_accepted,
    /// Decoder inputs rejected for declaring output beyond the budget.
    decode_overruns,
    /// Patch requests answered from the content-addressed patch cache.
    patch_cache_hits,
    /// Patch requests that had to run a fresh diff (cache miss).
    patch_cache_misses,
    /// Verifications skipped by the digest-keyed signed-manifest memo.
    sig_verify_memo_hits,
    /// Devices whose post-install boot failed (fell back to the old slot).
    boots_failed,
    /// Devices rolled back to their previous version after a campaign halt.
    devices_rolled_back,
    /// Campaigns automatically halted by the fleet-health policy.
    campaign_halts,
    /// Blocks a caching proxy served straight from its block cache.
    proxy_cache_hits,
    /// Blocks a caching proxy had to fetch upstream before serving.
    proxy_cache_misses,
    /// Cache blocks evicted under LRU capacity pressure.
    proxy_evictions,
    /// Block fetches a caching proxy issued over its upstream link.
    upstream_fetches,
    /// Bytes moved over caching proxies' upstream (backhaul) links.
    upstream_bytes,
    /// Virtual microseconds upstream links were busy fetching blocks.
    upstream_micros,
    /// Downstream serves that joined an upstream fetch already in flight.
    single_flight_joins,
    /// Duty-cycle sleep deferrals applied to device wake events.
    devices_slept,
    /// Components committed to their bootable slots by the journal replay.
    components_installed,
    /// Components restored from staging after a failed health check.
    components_rolled_back,
    /// Never-mixed-set invariant violations observed by the explorer.
    mixed_set_violations,
}

impl Counters {
    /// Bucket index for a slot id (saturates into the last bucket).
    #[must_use]
    pub fn slot_bucket(slot: u8) -> usize {
        (slot as usize).min(SLOT_BUCKETS - 1)
    }

    /// Charge `n` to a counter (relaxed).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl CountersSnapshot {
    /// Total sectors erased across all slot buckets.
    #[must_use]
    pub fn total_erases(&self) -> u64 {
        self.flash_erases.iter().sum()
    }

    /// Total bytes written across all slot buckets.
    #[must_use]
    pub fn total_flash_writes(&self) -> u64 {
        self.flash_writes.iter().sum()
    }

    /// Total bytes read across all slot buckets.
    #[must_use]
    pub fn total_flash_reads(&self) -> u64 {
        self.flash_reads.iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

struct TracerInner {
    counters: Counters,
    now_micros: AtomicU64,
    seq: AtomicU64,
    sink: Option<Box<dyn TraceSink>>,
}

/// Cheap-to-clone handle combining the always-on [`Counters`] with an
/// optional [`TraceSink`]. Every instrumented struct holds one; clones
/// share the same counters, clock, and sink.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl core::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("now_micros", &self.now_micros())
            .finish()
    }
}

impl Tracer {
    /// Counters only, no sink: [`Tracer::emit`] is a branch and nothing
    /// else. This is the default everywhere a tracer is not supplied.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            inner: Arc::new(TracerInner {
                counters: Counters::default(),
                now_micros: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                sink: None,
            }),
        }
    }

    /// Counters plus a sink receiving every emitted event.
    #[must_use]
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                counters: Counters::default(),
                now_micros: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                sink: Some(sink),
            }),
        }
    }

    /// Convenience: a tracer writing NDJSON lines to `writer`.
    #[cfg(feature = "std")]
    #[must_use]
    pub fn to_ndjson<W: std::io::Write + Send + 'static>(writer: W) -> Self {
        Self::with_sink(Box::new(NdjsonSink::new(writer)))
    }

    /// Whether a sink is installed (event closures run only if so).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.sink.is_some()
    }

    /// The shared metrics registry.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.inner.counters
    }

    /// Current virtual time in microseconds.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.inner.now_micros.load(Ordering::Relaxed)
    }

    /// Move the virtual clock forward to `t` (never backwards — this is
    /// a `fetch_max`, so interleaved drivers keep the merged trace
    /// monotone no matter who stamps last).
    pub fn advance_now_to(&self, t_micros: u64) {
        self.inner.now_micros.fetch_max(t_micros, Ordering::Relaxed);
    }

    /// Hard-reset the clock (tests and shard-local tracers only).
    pub fn reset_now(&self, t_micros: u64) {
        self.inner.now_micros.store(t_micros, Ordering::Relaxed);
    }

    /// Emit an event. The closure only runs when a sink is installed,
    /// so a disabled tracer pays one branch and no allocation.
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(sink) = &self.inner.sink {
            let record = TraceRecord {
                ts_micros: self.now_micros(),
                seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
                event: f(),
            };
            sink.record(&record);
        }
    }

    /// Re-emit a record captured elsewhere, keeping its timestamp but
    /// assigning a fresh sequence number. Used when merging per-shard
    /// memory buffers into a parent trace in deterministic shard order.
    pub fn emit_record(&self, record: &TraceRecord) {
        if let Some(sink) = &self.inner.sink {
            let renumbered = TraceRecord {
                ts_micros: record.ts_micros,
                seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
                event: record.event.clone(),
            };
            sink.record(&renumbered);
        }
    }

    /// Fold a shard-local tracer's counters and (optionally) its
    /// buffered records into this tracer. Records are appended in the
    /// order given, so callers merge shards in shard-index order to
    /// keep output independent of thread count.
    pub fn absorb(&self, counters: &CountersSnapshot, records: &[TraceRecord]) {
        self.inner.counters.absorb(counters);
        for record in records {
            self.emit_record(record);
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let tracer = Tracer::disabled();
        let mut ran = false;
        tracer.emit(|| {
            ran = true;
            Event::GoAhead { stream: 1 }
        });
        assert!(!ran);
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn memory_sink_captures_in_order_with_monotone_seq() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(sink.clone()));
        tracer.advance_now_to(10);
        tracer.emit(|| Event::TokenExchange { stream: 7 });
        tracer.advance_now_to(25);
        tracer.emit(|| Event::ChunkDelivered {
            stream: 7,
            bytes: 64,
        });
        let records = sink.snapshot();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ts_micros, 10);
        assert_eq!(records[1].ts_micros, 25);
        assert!(records[0].seq < records[1].seq);
    }

    #[test]
    fn clock_never_moves_backwards() {
        let tracer = Tracer::disabled();
        tracer.advance_now_to(100);
        tracer.advance_now_to(40);
        assert_eq!(tracer.now_micros(), 100);
        tracer.reset_now(5);
        assert_eq!(tracer.now_micros(), 5);
    }

    #[test]
    fn ndjson_rendering_is_stable() {
        let record = TraceRecord {
            ts_micros: 42,
            seq: 3,
            event: Event::ChunkLost {
                stream: 9,
                bytes: 128,
                attempt: 1,
            },
        };
        assert_eq!(
            record.to_ndjson(),
            r#"{"ts":42,"seq":3,"layer":"session","event":"chunk_lost","stream":9,"bytes":128,"attempt":1}"#
        );
    }

    #[test]
    fn counters_snapshot_and_absorb_round_trip() {
        let a = Counters::default();
        Counters::add(&a.link_bytes_to_device, 1000);
        Counters::add(&a.frames_sent, 5);
        a.flash_erases[1].fetch_add(3, Ordering::Relaxed);

        let b = Counters::default();
        Counters::add(&b.link_bytes_to_device, 500);
        b.absorb(&a.snapshot());

        let merged = b.snapshot();
        assert_eq!(merged.link_bytes_to_device, 1500);
        assert_eq!(merged.frames_sent, 5);
        assert_eq!(merged.flash_erases[1], 3);
        assert_eq!(merged.total_erases(), 3);

        let fields = merged.fields();
        assert!(fields
            .iter()
            .any(|(k, v)| k == "flash_erases_slot1" && *v == 3));
    }

    #[test]
    fn slot_bucket_saturates() {
        assert_eq!(Counters::slot_bucket(0), 0);
        assert_eq!(Counters::slot_bucket(2), 2);
        assert_eq!(Counters::slot_bucket(200), SLOT_BUCKETS - 1);
    }
}
