//! Byte sinks: the crate-local replacement for `std::io::Write`.
//!
//! The device-side decoders ([`crate::Decompressor`], the patchers in
//! `upkit-delta`) produce output incrementally. On the host the natural
//! sink is a growable `Vec<u8>`; on a constrained target the output must
//! land in a caller-provided fixed slice with no heap involvement. This
//! trait is the seam between the two: it is deliberately infallible
//! (like pushing to a `Vec`), and [`FixedBuf`] converts overflow into a
//! sticky flag instead of a panic — the decode budgets established
//! upstream guarantee a correctly sized buffer never overflows, and the
//! flag makes that claim checkable.

use alloc::vec::Vec;

/// Destination for decoded bytes.
///
/// Implementations must accept every byte offered; bounded sinks record
/// overflow out of band (see [`FixedBuf::overflowed`]) rather than
/// failing, which keeps the decoder state machines free of an error
/// path that budget checks already rule out.
pub trait ByteSink {
    /// Appends one byte.
    fn put(&mut self, byte: u8);

    /// Appends a run of bytes.
    fn put_slice(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.put(b);
        }
    }

    /// Bytes accepted so far.
    fn written(&self) -> usize;
}

impl ByteSink for Vec<u8> {
    fn put(&mut self, byte: u8) {
        self.push(byte);
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }

    fn written(&self) -> usize {
        self.len()
    }
}

/// A caller-provided fixed slice with a write cursor.
///
/// Writes beyond the end of the slice are dropped and latch the
/// [`overflowed`](Self::overflowed) flag; they never panic. The
/// allocation-free decode paths (`decompress_into`, `patch_into`, ...)
/// size their budgets from the slice length, so overflow indicates a
/// logic error upstream, not bad input.
#[derive(Debug)]
pub struct FixedBuf<'a> {
    buf: &'a mut [u8],
    len: usize,
    overflowed: bool,
}

impl<'a> FixedBuf<'a> {
    /// Wraps `buf` with the cursor at the start.
    #[must_use]
    pub fn new(buf: &'a mut [u8]) -> Self {
        Self {
            buf,
            len: 0,
            overflowed: false,
        }
    }

    /// The filled prefix of the buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity still available.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.len
    }

    /// Whether any write was dropped for lack of space.
    #[must_use]
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Empties the buffer, keeping the overflow flag.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl ByteSink for FixedBuf<'_> {
    fn put(&mut self, byte: u8) {
        if self.len < self.buf.len() {
            self.buf[self.len] = byte;
            self.len += 1;
        } else {
            self.overflowed = true;
        }
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        let take = bytes.len().min(self.remaining());
        self.buf[self.len..self.len + take].copy_from_slice(&bytes[..take]);
        self.len += take;
        if take < bytes.len() {
            self.overflowed = true;
        }
    }

    fn written(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_appends() {
        let mut v = Vec::new();
        v.put(1);
        v.put_slice(&[2, 3]);
        assert_eq!(v, [1, 2, 3]);
        assert_eq!(ByteSink::written(&v), 3);
    }

    #[test]
    fn fixed_buf_tracks_cursor() {
        let mut backing = [0u8; 4];
        let mut buf = FixedBuf::new(&mut backing);
        assert!(buf.is_empty());
        buf.put(9);
        buf.put_slice(&[8, 7]);
        assert_eq!(buf.as_slice(), [9, 8, 7]);
        assert_eq!(buf.remaining(), 1);
        assert!(!buf.overflowed());
    }

    #[test]
    fn fixed_buf_truncates_without_panicking() {
        let mut backing = [0u8; 2];
        let mut buf = FixedBuf::new(&mut backing);
        buf.put_slice(&[1, 2, 3]);
        assert_eq!(buf.as_slice(), [1, 2]);
        assert!(buf.overflowed());
        buf.put(4);
        assert!(buf.overflowed());
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn clear_keeps_overflow_flag() {
        let mut backing = [0u8; 1];
        let mut buf = FixedBuf::new(&mut backing);
        buf.put_slice(&[1, 2]);
        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.overflowed());
    }
}
