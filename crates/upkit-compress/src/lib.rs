//! LZSS compression for UpKit differential updates.
//!
//! UpKit's pipeline decompresses incoming patches with LZSS, following
//! Stolikj et al.'s finding that `bsdiff` + `lzss` offer the best trade-off
//! between patch size and the RAM/flash cost of the on-device routines. The
//! update *server* compresses (one-shot [`compress`]); the *device*
//! decompresses incrementally with bounded memory ([`Decompressor`]), since
//! the pipeline receives the patch in radio-MTU-sized chunks and must write
//! flash on the fly.
//!
//! # Format
//!
//! A small header (`magic ‖ params ‖ original length`) followed by groups of
//! eight items, each group preceded by a flag byte (LSB first; `1` = literal
//! byte, `0` = 16-bit match token of `window_bits` offset and
//! `16 - window_bits` length bits, lengths starting at
//! [`Params::min_match`]).
//!
//! # Examples
//!
//! ```
//! use upkit_compress::{compress, decompress, Params};
//!
//! let data = b"abcabcabcabcabc-abcabcabcabcabc";
//! let packed = compress(data, Params::default());
//! assert_eq!(decompress(&packed).unwrap(), data);
//! ```

#![cfg_attr(not(feature = "std"), no_std)]
#![warn(missing_docs)]
#![warn(
    clippy::std_instead_of_core,
    clippy::std_instead_of_alloc,
    clippy::alloc_instead_of_core
)]

extern crate alloc;

use alloc::vec;
use alloc::vec::Vec;

pub mod sink;

pub use sink::{ByteSink, FixedBuf};

/// Magic bytes identifying an LZSS stream produced by this crate.
pub const MAGIC: [u8; 4] = *b"LZS1";

/// Size in bytes of the stream header.
pub const HEADER_LEN: usize = 4 + 1 + 4;

/// Largest window any [`Params`] can select (`window_bits == 13`).
///
/// The [`Decompressor`] keeps its sliding window inline at this size, so
/// constructing a decoder never allocates.
pub const MAX_WINDOW: usize = 1 << 13;

/// Longest match any [`Params`] can encode (`window_bits == 8`, so eight
/// length bits).
///
/// This bounds how much output a [`Decompressor`] can emit per input byte:
/// a flag or match-low byte emits nothing, a literal emits one byte, and a
/// match-high byte completes a match of at most this many bytes. Callers
/// draining a decoder into a fixed scratch buffer size it as
/// `chunk_len * MAX_MATCH`.
pub const MAX_MATCH: usize = 3 + (1 << 8) - 1;

/// LZSS window/length configuration.
///
/// `window_bits + length_bits == 16` so a match always packs into two bytes,
/// the encoding used by the small embedded implementations the paper builds
/// on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    window_bits: u8,
}

impl Default for Params {
    /// 4 KiB window, 4 length bits: the configuration whose decoder fits the
    /// ~2 kB RAM budget Table II attributes to UpKit's pipeline module.
    fn default() -> Self {
        Self { window_bits: 12 }
    }
}

impl Params {
    /// Creates a configuration with a `2^window_bits`-byte window.
    ///
    /// # Errors
    ///
    /// Returns [`LzssError::BadParams`] unless `8 <= window_bits <= 13`
    /// (below 8 the window is useless; above 13 fewer than 3 length bits
    /// remain).
    pub fn new(window_bits: u8) -> Result<Self, LzssError> {
        if (8..=13).contains(&window_bits) {
            Ok(Self { window_bits })
        } else {
            Err(LzssError::BadParams)
        }
    }

    /// Window size in bytes.
    #[must_use]
    pub fn window_size(&self) -> usize {
        1 << self.window_bits
    }

    /// Number of bits used for the match offset.
    #[must_use]
    pub fn window_bits(&self) -> u8 {
        self.window_bits
    }

    /// Number of bits used for the match length.
    #[must_use]
    pub fn length_bits(&self) -> u8 {
        16 - self.window_bits
    }

    /// Shortest encodable match (shorter runs are cheaper as literals).
    #[must_use]
    pub fn min_match(&self) -> usize {
        3
    }

    /// Longest encodable match.
    #[must_use]
    pub fn max_match(&self) -> usize {
        self.min_match() + (1 << self.length_bits()) - 1
    }
}

/// Errors produced while decoding an LZSS stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LzssError {
    /// The stream does not begin with the expected magic bytes.
    BadMagic,
    /// The header's parameter byte is out of range.
    BadParams,
    /// A match token referenced data before the start of the output.
    InvalidBackreference,
    /// The stream ended before the declared original length was produced.
    Truncated,
    /// The stream produced more data than the declared original length.
    TrailingData,
    /// The header declared an original length beyond the decode budget.
    BudgetExceeded,
}

impl core::fmt::Display for LzssError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMagic => f.write_str("missing LZSS magic bytes"),
            Self::BadParams => f.write_str("LZSS parameter byte out of range"),
            Self::InvalidBackreference => {
                f.write_str("LZSS match references data before stream start")
            }
            Self::Truncated => f.write_str("LZSS stream truncated"),
            Self::TrailingData => f.write_str("LZSS stream longer than declared"),
            Self::BudgetExceeded => f.write_str("LZSS declared length exceeds decode budget"),
        }
    }
}

impl core::error::Error for LzssError {}

/// Compresses `data` in one shot (server-side operation).
#[must_use]
pub fn compress(data: &[u8], params: Params) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + data.len() / 2 + 16);
    out.extend_from_slice(&MAGIC);
    out.push(params.window_bits);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());

    let window = params.window_size();
    let min_match = params.min_match();
    let max_match = params.max_match();

    // Hash chains over 3-byte prefixes for match search.
    const HASH_BITS: usize = 15;
    const HASH_SIZE: usize = 1 << HASH_BITS;
    let hash = |bytes: &[u8]| -> usize {
        let v = (u32::from(bytes[0]) << 16) | (u32::from(bytes[1]) << 8) | u32::from(bytes[2]);
        (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
    };
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; data.len()];

    // The flag byte is created lazily so an empty input emits no items.
    let mut flag_pos = 0usize;
    let mut flag_bit = 8u8;
    let push_item = |out: &mut Vec<u8>,
                     flag_pos: &mut usize,
                     flag_bit: &mut u8,
                     literal: bool,
                     bytes: &[u8]| {
        if *flag_bit == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if literal {
            out[*flag_pos] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
        out.extend_from_slice(bytes);
    };

    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + min_match <= data.len() {
            let mut candidate = head[hash(&data[i..])];
            let limit = i.saturating_sub(window);
            let mut tries = 64;
            while candidate != usize::MAX && candidate >= limit && tries > 0 {
                let max_here = max_match.min(data.len() - i);
                let mut len = 0;
                while len < max_here && data[candidate + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = i - candidate;
                    if len == max_here {
                        break;
                    }
                }
                candidate = prev[candidate];
                tries -= 1;
            }
        }

        if best_len >= min_match {
            // Match token: offset-1 in the low window_bits, length-min in
            // the high bits of a 16-bit little-endian word.
            let token =
                ((best_dist - 1) as u16) | ((best_len - min_match) as u16) << params.window_bits;
            push_item(
                &mut out,
                &mut flag_pos,
                &mut flag_bit,
                false,
                &token.to_le_bytes(),
            );
            // Index every position covered by the match.
            let end = i + best_len;
            while i < end {
                if i + min_match <= data.len() {
                    let h = hash(&data[i..]);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            push_item(&mut out, &mut flag_pos, &mut flag_bit, true, &data[i..=i]);
            if i + min_match <= data.len() {
                let h = hash(&data[i..]);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    out
}

/// Decompresses a complete LZSS stream in one call.
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, LzssError> {
    decompress_with_budget(stream, u64::MAX)
}

/// Decompresses a complete LZSS stream, rejecting headers that declare an
/// original length beyond `budget` bytes (see [`Decompressor::with_budget`]).
pub fn decompress_with_budget(stream: &[u8], budget: u64) -> Result<Vec<u8>, LzssError> {
    let mut decoder = Decompressor::with_budget(budget);
    let mut out = Vec::new();
    decoder.push(stream, &mut out)?;
    decoder.finish()?;
    Ok(out)
}

/// Decompresses a complete LZSS stream into a caller-provided slice,
/// returning the number of bytes written.
///
/// The slice length doubles as the decode budget: a header declaring
/// more output than `out` can hold is rejected with
/// [`LzssError::BudgetExceeded`] before any byte is produced, so this
/// path never allocates and can never overrun the buffer.
pub fn decompress_into(stream: &[u8], out: &mut [u8]) -> Result<usize, LzssError> {
    let mut decoder = Decompressor::with_budget(out.len() as u64);
    let mut buf = FixedBuf::new(out);
    decoder.push(stream, &mut buf)?;
    decoder.finish()?;
    debug_assert!(!buf.overflowed(), "budget bounds every write");
    Ok(buf.len())
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DecodeState {
    Header { filled: usize },
    Flags,
    Literal,
    MatchLow,
    MatchHigh { low: u8 },
    Done,
}

/// Incremental LZSS decoder with memory bounded by the window size.
///
/// Accepts input in arbitrary chunk sizes — radio MTUs in UpKit's pipeline —
/// and appends decoded bytes to a caller-supplied [`ByteSink`]. The decoder
/// keeps only the sliding window (inline, [`MAX_WINDOW`] = 8 KiB) plus a
/// fixed-size state machine, matching the constrained-device RAM budget;
/// neither construction nor decoding ever allocates.
#[derive(Clone)]
pub struct Decompressor {
    state: DecodeState,
    header: [u8; HEADER_LEN],
    params: Params,
    expected_len: u64,
    budget: u64,
    produced: u64,
    window: [u8; MAX_WINDOW],
    window_size: usize,
    window_pos: usize,
    window_filled: usize,
    flags: u8,
    flags_left: u8,
}

impl core::fmt::Debug for Decompressor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Decompressor")
            .field("state", &self.state)
            .field("params", &self.params)
            .field("expected_len", &self.expected_len)
            .field("produced", &self.produced)
            .finish_non_exhaustive()
    }
}

impl Default for Decompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Decompressor {
    /// Creates a decoder expecting a full stream starting with the header.
    #[must_use]
    pub fn new() -> Self {
        Self::with_budget(u64::MAX)
    }

    /// Creates a decoder that rejects any stream whose header declares an
    /// original length beyond `budget` bytes.
    ///
    /// The declared length drives how much output the caller accumulates
    /// and writes downstream; on a device the bound is the target flash
    /// slot, so a header lying about its length is rejected with
    /// [`LzssError::BudgetExceeded`] before any byte is produced.
    #[must_use]
    pub fn with_budget(budget: u64) -> Self {
        Self {
            state: DecodeState::Header { filled: 0 },
            header: [0; HEADER_LEN],
            params: Params::default(),
            expected_len: 0,
            budget,
            produced: 0,
            window: [0; MAX_WINDOW],
            window_size: 0,
            window_pos: 0,
            window_filled: 0,
            flags: 0,
            flags_left: 0,
        }
    }

    /// Total bytes produced so far.
    #[must_use]
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Declared original length (0 until the header has been parsed).
    #[must_use]
    pub fn expected_len(&self) -> u64 {
        self.expected_len
    }

    /// Returns `true` once the declared original length has been produced.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == DecodeState::Done
    }

    /// Feeds `input` to the decoder, appending decoded bytes to `out`.
    pub fn push<S: ByteSink + ?Sized>(
        &mut self,
        input: &[u8],
        out: &mut S,
    ) -> Result<(), LzssError> {
        for &byte in input {
            self.push_byte(byte, out)?;
        }
        Ok(())
    }

    /// Declares end of input; fails if the stream was incomplete.
    pub fn finish(&self) -> Result<(), LzssError> {
        if self.state == DecodeState::Done {
            Ok(())
        } else {
            Err(LzssError::Truncated)
        }
    }

    fn push_byte<S: ByteSink + ?Sized>(&mut self, byte: u8, out: &mut S) -> Result<(), LzssError> {
        match self.state {
            DecodeState::Header { filled } => {
                self.header[filled] = byte;
                let filled = filled + 1;
                if filled == HEADER_LEN {
                    if self.header[..4] != MAGIC {
                        return Err(LzssError::BadMagic);
                    }
                    self.params = Params::new(self.header[4])?;
                    self.expected_len = u64::from(u32::from_le_bytes(
                        self.header[5..9].try_into().expect("4 bytes"),
                    ));
                    if self.expected_len > self.budget {
                        return Err(LzssError::BudgetExceeded);
                    }
                    self.window_size = self.params.window_size();
                    self.state = if self.expected_len == 0 {
                        DecodeState::Done
                    } else {
                        DecodeState::Flags
                    };
                } else {
                    self.state = DecodeState::Header { filled };
                }
                Ok(())
            }
            DecodeState::Flags => {
                self.flags = byte;
                self.flags_left = 8;
                self.state = if self.flags & 1 == 1 {
                    DecodeState::Literal
                } else {
                    DecodeState::MatchLow
                };
                self.consume_flag();
                Ok(())
            }
            DecodeState::Literal => {
                self.emit(byte, out);
                self.advance()
            }
            DecodeState::MatchLow => {
                self.state = DecodeState::MatchHigh { low: byte };
                Ok(())
            }
            DecodeState::MatchHigh { low } => {
                let token = u16::from_le_bytes([low, byte]);
                let dist = usize::from(token & ((1 << self.params.window_bits) - 1)) + 1;
                let len = usize::from(token >> self.params.window_bits) + self.params.min_match();
                if dist > self.window_filled {
                    return Err(LzssError::InvalidBackreference);
                }
                for _ in 0..len {
                    if self.produced >= self.expected_len {
                        return Err(LzssError::TrailingData);
                    }
                    let idx = (self.window_pos + self.window_size - dist) % self.window_size;
                    let value = self.window[idx];
                    self.emit(value, out);
                }
                self.advance()
            }
            DecodeState::Done => Err(LzssError::TrailingData),
        }
    }

    fn emit<S: ByteSink + ?Sized>(&mut self, byte: u8, out: &mut S) {
        out.put(byte);
        self.window[self.window_pos] = byte;
        self.window_pos = (self.window_pos + 1) % self.window_size;
        self.window_filled = (self.window_filled + 1).min(self.window_size);
        self.produced += 1;
    }

    fn consume_flag(&mut self) {
        self.flags >>= 1;
        self.flags_left -= 1;
    }

    fn advance(&mut self) -> Result<(), LzssError> {
        if self.produced > self.expected_len {
            return Err(LzssError::TrailingData);
        }
        if self.produced == self.expected_len {
            self.state = DecodeState::Done;
            return Ok(());
        }
        if self.flags_left == 0 {
            self.state = DecodeState::Flags;
        } else {
            self.state = if self.flags & 1 == 1 {
                DecodeState::Literal
            } else {
                DecodeState::MatchLow
            };
            self.consume_flag();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let packed = compress(data, Params::default());
        assert_eq!(decompress(&packed).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
    }

    #[test]
    fn single_byte() {
        round_trip(b"x");
    }

    #[test]
    fn short_literals() {
        round_trip(b"ab");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data = b"firmware".repeat(500);
        let packed = compress(&data, Params::default());
        assert!(
            packed.len() < data.len() / 4,
            "{} vs {}",
            packed.len(),
            data.len()
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_data_round_trips() {
        // Pseudo-random bytes: little repetition, stream grows slightly.
        let mut state = 0x1234_5678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn run_longer_than_max_match() {
        let data = vec![0xaa; 10_000];
        round_trip(&data);
    }

    #[test]
    fn all_window_sizes_round_trip() {
        let data = b"the quick brown fox jumps over the lazy dog ".repeat(200);
        for bits in 8..=13 {
            let params = Params::new(bits).unwrap();
            let packed = compress(&data, params);
            assert_eq!(decompress(&packed).unwrap(), data, "window_bits {bits}");
        }
    }

    #[test]
    fn max_match_and_max_window_dominate_every_params() {
        for bits in 8..=13 {
            let params = Params::new(bits).unwrap();
            assert!(params.max_match() <= MAX_MATCH, "window_bits {bits}");
            assert!(params.window_size() <= MAX_WINDOW, "window_bits {bits}");
        }
    }

    #[test]
    fn params_reject_out_of_range() {
        assert_eq!(Params::new(7), Err(LzssError::BadParams));
        assert_eq!(Params::new(14), Err(LzssError::BadParams));
        assert!(Params::new(8).is_ok());
        assert!(Params::new(13).is_ok());
    }

    #[test]
    fn params_accessors() {
        let p = Params::new(12).unwrap();
        assert_eq!(p.window_size(), 4096);
        assert_eq!(p.length_bits(), 4);
        assert_eq!(p.min_match(), 3);
        assert_eq!(p.max_match(), 18);
    }

    #[test]
    fn streaming_matches_one_shot_for_any_chunking() {
        let data = b"streaming chunked decode ".repeat(300);
        let packed = compress(&data, Params::default());
        for chunk_size in [1usize, 2, 3, 7, 20, 64, 1000] {
            let mut decoder = Decompressor::new();
            let mut out = Vec::new();
            for chunk in packed.chunks(chunk_size) {
                decoder.push(chunk, &mut out).unwrap();
            }
            decoder.finish().unwrap();
            assert_eq!(out, data, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut packed = compress(b"hello world", Params::default());
        packed[0] = b'X';
        assert_eq!(decompress(&packed), Err(LzssError::BadMagic));
    }

    #[test]
    fn rejects_bad_params_byte() {
        let mut packed = compress(b"hello world", Params::default());
        packed[4] = 200;
        assert_eq!(decompress(&packed), Err(LzssError::BadParams));
    }

    #[test]
    fn rejects_truncated_stream() {
        let packed = compress(&b"hello world, hello world".repeat(10), Params::default());
        let truncated = &packed[..packed.len() - 3];
        let mut decoder = Decompressor::new();
        let mut out = Vec::new();
        decoder.push(truncated, &mut out).unwrap();
        assert_eq!(decoder.finish(), Err(LzssError::Truncated));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut packed = compress(b"payload payload payload", Params::default());
        packed.push(0xff);
        assert_eq!(decompress(&packed), Err(LzssError::TrailingData));
    }

    #[test]
    fn rejects_invalid_backreference() {
        // Hand-craft a stream whose first item is a match (flag bit 0):
        // nothing is in the window yet, so any match is invalid.
        let mut stream = Vec::new();
        stream.extend_from_slice(&MAGIC);
        stream.push(12);
        stream.extend_from_slice(&8u32.to_le_bytes());
        stream.push(0b0000_0000); // all matches
        stream.extend_from_slice(&0u16.to_le_bytes()); // dist 1, len 3
        assert_eq!(decompress(&stream), Err(LzssError::InvalidBackreference));
    }

    #[test]
    fn decoder_reports_progress() {
        let data = b"progress".repeat(100);
        let packed = compress(&data, Params::default());
        let mut decoder = Decompressor::new();
        let mut out = Vec::new();
        decoder.push(&packed[..packed.len() / 2], &mut out).unwrap();
        assert!(decoder.produced() > 0);
        assert_eq!(decoder.expected_len(), data.len() as u64);
        assert!(!decoder.is_done());
        decoder.push(&packed[packed.len() / 2..], &mut out).unwrap();
        assert!(decoder.is_done());
        assert_eq!(decoder.produced(), data.len() as u64);
    }

    #[test]
    fn window_limits_match_distance() {
        // Two identical blocks separated by more than the window size must
        // still round-trip (the second block simply re-encodes).
        let params = Params::new(8).unwrap(); // 256-byte window
        let block = b"unique-block-content-123".to_vec();
        let mut data = block.clone();
        data.extend(core::iter::repeat_n(b'.', 1000));
        data.extend_from_slice(&block);
        let packed = compress(&data, params);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn huge_declared_length_is_rejected_by_budget() {
        // Allocation-DoS shape: a 9-byte header declaring a 4 GiB output.
        // The declared length sizes what the caller accumulates, so a
        // budgeted decoder must reject it at the header, before producing
        // a single byte.
        let mut stream = compress(b"tiny", Params::default());
        stream[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decompress_with_budget(&stream, 4096).unwrap_err();
        assert_eq!(err, LzssError::BudgetExceeded);
        let mut decoder = Decompressor::with_budget(4096);
        let mut out = Vec::new();
        assert_eq!(
            decoder.push(&stream, &mut out),
            Err(LzssError::BudgetExceeded)
        );
        assert!(out.is_empty(), "no output before the budget check");
    }

    #[test]
    fn decompress_into_matches_vec_path() {
        let data = b"fixed-buffer parity ".repeat(200);
        let packed = compress(&data, Params::default());
        let mut out = vec![0u8; data.len()];
        let written = decompress_into(&packed, &mut out).unwrap();
        assert_eq!(written, data.len());
        assert_eq!(out, data);
        // An exactly-sized buffer is the tightest admissible budget; one
        // byte less must reject at the header, before any output.
        let mut short = vec![0u8; data.len() - 1];
        assert_eq!(
            decompress_into(&packed, &mut short),
            Err(LzssError::BudgetExceeded)
        );
    }

    #[test]
    fn budget_admits_honest_streams() {
        let data = b"honest firmware body".repeat(64);
        let packed = compress(&data, Params::default());
        assert_eq!(
            decompress_with_budget(&packed, data.len() as u64).unwrap(),
            data
        );
        assert_eq!(
            decompress_with_budget(&packed, data.len() as u64 - 1),
            Err(LzssError::BudgetExceeded)
        );
    }
}
