//! LwM2M-like pull update agent.
//!
//! LwM2M's firmware-update object is the state-of-the-art pull mechanism
//! the paper compares against (Fig. 7b). Its security characteristics,
//! reproduced here:
//!
//! * **No verification in the agent** — the downloaded image is written to
//!   flash and handed to the bootloader; integrity and authenticity are
//!   the bootloader's problem.
//! * **Freshness only from transport security** — update freshness relies
//!   on an end-to-end DTLS session between device and server. When a
//!   gateway or proxy terminates that session (the common smartphone /
//!   border-router deployment), replay protection evaporates. The
//!   [`Lwm2mAgent::secure_channel_end_to_end`] flag models exactly this.

use upkit_core::image::write_manifest;
use upkit_flash::{LayoutError, MemoryLayout, SlotId};
use upkit_manifest::{ManifestError, SignedManifest, SIGNED_MANIFEST_LEN};

/// Errors from the LwM2M-like agent.
#[derive(Debug)]
#[non_exhaustive]
pub enum Lwm2mError {
    /// Flash failure.
    Layout(LayoutError),
    /// Image framing unparseable.
    Framing(ManifestError),
    /// Download exceeded the declared length.
    TooMuchData,
    /// Operation in the wrong state.
    WrongState,
    /// The session was replayed/hijacked and end-to-end security is on:
    /// the DTLS layer (simulated) detects non-fresh traffic.
    TransportReplayDetected,
}

impl core::fmt::Display for Lwm2mError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Layout(e) => write!(f, "flash error: {e}"),
            Self::Framing(e) => write!(f, "framing error: {e}"),
            Self::TooMuchData => f.write_str("download exceeded declared length"),
            Self::WrongState => f.write_str("operation invalid in current state"),
            Self::TransportReplayDetected => f.write_str("DTLS session rejected replayed traffic"),
        }
    }
}

impl std::error::Error for Lwm2mError {}

impl From<LayoutError> for Lwm2mError {
    fn from(e: LayoutError) -> Self {
        Self::Layout(e)
    }
}

#[derive(Debug, PartialEq, Eq)]
enum DownloadState {
    Idle,
    Header,
    Body,
    Done,
}

/// The LwM2M-like pull agent.
#[derive(Debug)]
pub struct Lwm2mAgent {
    target: SlotId,
    state: DownloadState,
    header_buf: Vec<u8>,
    manifest: Option<SignedManifest>,
    body_received: u64,
    write_pos: u32,
    /// Whether the DTLS session reaches the update server end to end
    /// (true only when no gateway/proxy terminates it).
    pub secure_channel_end_to_end: bool,
}

impl Lwm2mAgent {
    /// Creates an idle agent targeting `slot`.
    #[must_use]
    pub fn new(target: SlotId, secure_channel_end_to_end: bool) -> Self {
        Self {
            target,
            state: DownloadState::Idle,
            header_buf: Vec::with_capacity(SIGNED_MANIFEST_LEN),
            manifest: None,
            body_received: 0,
            write_pos: 0,
            secure_channel_end_to_end,
        }
    }

    /// Starts a firmware download (LwM2M `/5/0/1` write).
    pub fn begin(&mut self, layout: &mut MemoryLayout) -> Result<(), Lwm2mError> {
        layout.erase_slot(self.target)?;
        self.state = DownloadState::Header;
        self.header_buf.clear();
        self.manifest = None;
        self.body_received = 0;
        self.write_pos = upkit_core::image::FIRMWARE_OFFSET;
        Ok(())
    }

    /// Accepts downloaded blocks. `fresh_session` tells the simulated DTLS
    /// layer whether these bytes come from a live server session (`true`)
    /// or are replayed by an intermediary (`false`). With an end-to-end
    /// channel, replays are caught; without one they are indistinguishable.
    pub fn push_data(
        &mut self,
        layout: &mut MemoryLayout,
        mut chunk: &[u8],
        fresh_session: bool,
    ) -> Result<bool, Lwm2mError> {
        if self.secure_channel_end_to_end && !fresh_session {
            return Err(Lwm2mError::TransportReplayDetected);
        }
        while !chunk.is_empty() {
            match self.state {
                DownloadState::Header => {
                    let need = SIGNED_MANIFEST_LEN - self.header_buf.len();
                    let take = need.min(chunk.len());
                    self.header_buf.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    if self.header_buf.len() == SIGNED_MANIFEST_LEN {
                        let manifest = SignedManifest::from_bytes(&self.header_buf)
                            .map_err(Lwm2mError::Framing)?;
                        write_manifest(layout, self.target, &manifest)?;
                        self.manifest = Some(manifest);
                        self.state = DownloadState::Body;
                    }
                }
                DownloadState::Body => {
                    let expected = u64::from(
                        self.manifest
                            .as_ref()
                            .expect("header parsed")
                            .manifest
                            .payload_size,
                    );
                    let remaining = expected - self.body_received;
                    if remaining == 0 {
                        return Err(Lwm2mError::TooMuchData);
                    }
                    let take = (remaining as usize).min(chunk.len());
                    layout.write_slot(self.target, self.write_pos, &chunk[..take])?;
                    self.write_pos += take as u32;
                    self.body_received += take as u64;
                    chunk = &chunk[take..];
                    if self.body_received == expected {
                        if !chunk.is_empty() {
                            return Err(Lwm2mError::TooMuchData);
                        }
                        self.state = DownloadState::Done;
                        return Ok(true);
                    }
                }
                DownloadState::Idle | DownloadState::Done => return Err(Lwm2mError::WrongState),
            }
        }
        Ok(self.state == DownloadState::Done)
    }

    /// Whether the download finished (the device then reboots; all
    /// verification happens in the bootloader).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == DownloadState::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_core::generation::{UpdateServer, VendorServer};
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_flash::{configuration_b, standard, FlashGeometry, SimFlash};
    use upkit_manifest::{DeviceToken, Version};

    fn layout() -> MemoryLayout {
        configuration_b(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 64,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            None,
            4096 * 8,
        )
        .unwrap()
    }

    fn wire(seed: u64, fw: Vec<u8>) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        server.publish(vendor.release(fw, Version(2), 0, 0xA));
        server
            .prepare_update(&DeviceToken {
                device_id: 1,
                nonce: 1,
                current_version: Version(0),
            })
            .unwrap()
            .image
            .to_bytes()
    }

    #[test]
    fn downloads_and_stores_without_verification() {
        let mut layout = layout();
        let mut bytes = wire(180, vec![0xAA; 3_000]);
        let len = bytes.len();
        bytes[len - 1] ^= 0xFF; // corrupt: the agent will not notice
        let mut agent = Lwm2mAgent::new(standard::SLOT_B, false);
        agent.begin(&mut layout).unwrap();
        let mut done = false;
        for block in bytes.chunks(64) {
            done = agent.push_data(&mut layout, block, true).unwrap();
        }
        assert!(done, "corrupt image accepted: no agent verification");
    }

    #[test]
    fn end_to_end_dtls_catches_replay() {
        let mut layout = layout();
        let bytes = wire(181, vec![0xBB; 1_000]);
        let mut agent = Lwm2mAgent::new(standard::SLOT_B, true);
        agent.begin(&mut layout).unwrap();
        assert!(matches!(
            agent.push_data(&mut layout, &bytes[..64], false),
            Err(Lwm2mError::TransportReplayDetected)
        ));
    }

    #[test]
    fn proxied_deployment_accepts_replay() {
        // The paper's architectural point: with a gateway in the path the
        // DTLS session terminates at the proxy, and replayed bytes are
        // accepted without complaint.
        let mut layout = layout();
        let replayed = wire(182, vec![0xCC; 1_000]);
        let mut agent = Lwm2mAgent::new(standard::SLOT_B, false);
        agent.begin(&mut layout).unwrap();
        let mut done = false;
        for block in replayed.chunks(64) {
            done = agent.push_data(&mut layout, block, false).unwrap();
        }
        assert!(done, "replay accepted through the proxy");
    }

    #[test]
    fn state_machine_guards() {
        let mut layout = layout();
        let bytes = wire(183, vec![0xDD; 500]);
        let mut agent = Lwm2mAgent::new(standard::SLOT_B, false);
        assert!(matches!(
            agent.push_data(&mut layout, &bytes, true),
            Err(Lwm2mError::WrongState)
        ));
        agent.begin(&mut layout).unwrap();
        let mut extended = bytes.clone();
        extended.push(0);
        let mut result = Ok(false);
        for block in extended.chunks(64) {
            result = agent.push_data(&mut layout, block, true);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(Lwm2mError::TooMuchData)));
    }
}
