//! State-of-the-art baselines the UpKit paper compares against.
//!
//! Each baseline reproduces the *security-relevant behaviour* of its
//! namesake, running over the same flash and manifest substrates as UpKit
//! so the comparison experiments are apples to apples:
//!
//! * [`mcumgr`] — push distribution with **no** agent-side verification
//!   and **no** freshness (Fig. 7c comparison).
//! * [`lwm2m`] — pull distribution, verification deferred to the
//!   bootloader, freshness only from (terminable) transport security
//!   (Fig. 7b comparison).
//! * [`mcuboot`] — boot-time single-signature verification with swap
//!   loading; accepts replays/downgrades by default (Fig. 7a comparison).
//! * [`sparrow`] — CRC-only integrity, the Sparrow/Deluge class of
//!   systems; demonstrates why checksums are not security.
//!
//! [`session`] adapts the mcumgr and LwM2M agents onto `upkit-net`'s
//! resumable session state machines, so baseline and UpKit updates run
//! under identical link, loss, and retry models.
//!
//! The flash/RAM *footprints* of these systems for Fig. 7 are modeled in
//! `upkit-footprint` (they come from the paper's measurements); this crate
//! models their *behaviour*.

#![warn(missing_docs)]

pub mod crc;
pub mod lwm2m;
pub mod mcuboot;
pub mod mcumgr;
pub mod session;
pub mod sparrow;

pub use lwm2m::{Lwm2mAgent, Lwm2mError};
pub use mcuboot::{McubootBootloader, McubootConfig, McubootError, McubootOutcome};
pub use mcumgr::{McumgrAgent, McumgrError};
pub use session::{Lwm2mEndpoints, McumgrEndpoints};
pub use sparrow::{SparrowAgent, SparrowError};
