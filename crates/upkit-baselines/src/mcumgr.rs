//! mcumgr-like push update agent.
//!
//! MCU Manager (mcumgr) is the state-of-the-art push distribution tool the
//! paper compares against (Fig. 7c): it uploads an image over BLE or a
//! serial shell and **performs no verification at all** — integrity,
//! authenticity, version checks, everything is deferred to mcuboot after a
//! reboot. It also has no freshness mechanism: any image the proxy offers
//! is stored. This module reproduces that behaviour so the evaluation can
//! measure what UpKit's agent-side verification saves.

use upkit_core::image::write_manifest;
use upkit_flash::{LayoutError, MemoryLayout, SlotId};
use upkit_manifest::{ManifestError, SignedManifest, SIGNED_MANIFEST_LEN};

/// Errors from the mcumgr-like agent — note the absence of any
/// verification-related variant.
#[derive(Debug)]
#[non_exhaustive]
pub enum McumgrError {
    /// Flash failure.
    Layout(LayoutError),
    /// Image header unparseable (framing only, not authenticity).
    Framing(ManifestError),
    /// Upload exceeded the declared image length.
    TooMuchData,
    /// An operation happened in the wrong upload state.
    WrongState,
}

impl core::fmt::Display for McumgrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Layout(e) => write!(f, "flash error: {e}"),
            Self::Framing(e) => write!(f, "image framing error: {e}"),
            Self::TooMuchData => f.write_str("upload exceeded declared length"),
            Self::WrongState => f.write_str("operation invalid in current upload state"),
        }
    }
}

impl std::error::Error for McumgrError {}

impl From<LayoutError> for McumgrError {
    fn from(e: LayoutError) -> Self {
        Self::Layout(e)
    }
}

#[derive(Debug, PartialEq, Eq)]
enum UploadState {
    Idle,
    Header,
    Body,
    Done,
}

/// The mcumgr-like agent: store-and-reboot, zero checks.
#[derive(Debug)]
pub struct McumgrAgent {
    target: SlotId,
    state: UploadState,
    header_buf: Vec<u8>,
    manifest: Option<SignedManifest>,
    body_received: u64,
    write_pos: u32,
}

impl McumgrAgent {
    /// Creates an idle agent targeting `slot`.
    #[must_use]
    pub fn new(target: SlotId) -> Self {
        Self {
            target,
            state: UploadState::Idle,
            header_buf: Vec::with_capacity(SIGNED_MANIFEST_LEN),
            manifest: None,
            body_received: 0,
            write_pos: 0,
        }
    }

    /// Begins an upload: erases the slot (mcumgr's `image erase`).
    pub fn begin(&mut self, layout: &mut MemoryLayout) -> Result<(), McumgrError> {
        layout.erase_slot(self.target)?;
        self.state = UploadState::Header;
        self.header_buf.clear();
        self.manifest = None;
        self.body_received = 0;
        self.write_pos = upkit_core::image::FIRMWARE_OFFSET;
        Ok(())
    }

    /// Accepts upload chunks. Everything parseable is stored — no
    /// signature, nonce, version, or digest check happens here.
    pub fn push_data(
        &mut self,
        layout: &mut MemoryLayout,
        mut chunk: &[u8],
    ) -> Result<bool, McumgrError> {
        while !chunk.is_empty() {
            match self.state {
                UploadState::Header => {
                    let need = SIGNED_MANIFEST_LEN - self.header_buf.len();
                    let take = need.min(chunk.len());
                    self.header_buf.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    if self.header_buf.len() == SIGNED_MANIFEST_LEN {
                        let manifest = SignedManifest::from_bytes(&self.header_buf)
                            .map_err(McumgrError::Framing)?;
                        write_manifest(layout, self.target, &manifest)?;
                        self.manifest = Some(manifest);
                        self.state = UploadState::Body;
                    }
                }
                UploadState::Body => {
                    let expected = u64::from(
                        self.manifest
                            .as_ref()
                            .expect("header parsed")
                            .manifest
                            .payload_size,
                    );
                    let remaining = expected - self.body_received;
                    if remaining == 0 {
                        return Err(McumgrError::TooMuchData);
                    }
                    let take = (remaining as usize).min(chunk.len());
                    layout.write_slot(self.target, self.write_pos, &chunk[..take])?;
                    self.write_pos += take as u32;
                    self.body_received += take as u64;
                    chunk = &chunk[take..];
                    if self.body_received == expected {
                        if !chunk.is_empty() {
                            return Err(McumgrError::TooMuchData);
                        }
                        self.state = UploadState::Done;
                        return Ok(true);
                    }
                }
                UploadState::Idle | UploadState::Done => return Err(McumgrError::WrongState),
            }
        }
        Ok(self.state == UploadState::Done)
    }

    /// Whether the upload finished (mcumgr then marks the image for test
    /// and the device reboots — verification happens only in mcuboot).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == UploadState::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_core::generation::{UpdateServer, VendorServer};
    use upkit_core::image::FIRMWARE_OFFSET;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_flash::{configuration_a, standard, FlashGeometry, SimFlash};
    use upkit_manifest::{DeviceToken, Version};

    fn layout() -> MemoryLayout {
        configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 64,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            4096 * 16,
        )
        .unwrap()
    }

    fn image(seed: u64, fw: Vec<u8>, nonce: u32) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        server.publish(vendor.release(fw, Version(2), 0, 0xA));
        server
            .prepare_update(&DeviceToken {
                device_id: 1,
                nonce,
                current_version: Version(0),
            })
            .unwrap()
            .image
            .to_bytes()
    }

    #[test]
    fn stores_uploaded_image() {
        let mut layout = layout();
        let fw = vec![0x5A; 10_000];
        let wire = image(160, fw.clone(), 1);
        let mut agent = McumgrAgent::new(standard::SLOT_B);
        agent.begin(&mut layout).unwrap();
        let mut done = false;
        for chunk in wire.chunks(300) {
            done = agent.push_data(&mut layout, chunk).unwrap();
        }
        assert!(done);
        let mut stored = vec![0u8; fw.len()];
        layout
            .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut stored)
            .unwrap();
        assert_eq!(stored, fw);
    }

    #[test]
    fn accepts_tampered_firmware_without_complaint() {
        // The vulnerability UpKit's agent-side verification fixes: mcumgr
        // happily stores corrupt firmware; the device will reboot for
        // nothing.
        let mut layout = layout();
        let mut wire = image(161, vec![0x5A; 5_000], 1);
        let len = wire.len();
        wire[len - 10] ^= 0xFF;
        let mut agent = McumgrAgent::new(standard::SLOT_B);
        agent.begin(&mut layout).unwrap();
        let mut done = false;
        for chunk in wire.chunks(300) {
            done = agent.push_data(&mut layout, chunk).unwrap();
        }
        assert!(done, "tampered image accepted by the agent");
    }

    #[test]
    fn accepts_replayed_image_no_freshness() {
        // A replayed (old-nonce) image is indistinguishable to mcumgr.
        let mut layout = layout();
        let replayed = image(162, vec![0x11; 2_000], 42);
        let mut agent = McumgrAgent::new(standard::SLOT_B);
        agent.begin(&mut layout).unwrap();
        let mut done = false;
        for chunk in replayed.chunks(100) {
            done = agent.push_data(&mut layout, chunk).unwrap();
        }
        assert!(done, "replay accepted: no freshness mechanism");
    }

    #[test]
    fn rejects_overflow_and_wrong_state() {
        let mut layout = layout();
        let wire = image(163, vec![0x11; 500], 1);
        let mut agent = McumgrAgent::new(standard::SLOT_B);
        assert!(matches!(
            agent.push_data(&mut layout, &wire),
            Err(McumgrError::WrongState)
        ));
        agent.begin(&mut layout).unwrap();
        let mut extended = wire.clone();
        extended.push(0);
        let mut result = Ok(false);
        for chunk in extended.chunks(256) {
            result = agent.push_data(&mut layout, chunk);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(McumgrError::TooMuchData)));
    }
}
