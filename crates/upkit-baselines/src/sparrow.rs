//! Sparrow-like update agent: CRC-only "verification".
//!
//! Sparrow (Contiki) and Deluge (TinyOS) verify only a CRC over the
//! received image — enough against random corruption, worthless against
//! tampering, since anyone can recompute a keyless checksum. The paper
//! cites both as examples of incomplete update security (Sect. II, VII);
//! this agent exists so the security experiments can show a forged image
//! sailing through a CRC check that UpKit's verifier rejects.

use upkit_flash::{LayoutError, MemoryLayout, SlotId};

use crate::crc::crc16_ccitt;

/// Wire format: `len u32 ‖ crc16 u16 ‖ firmware` — a minimal
/// Sparrow/Deluge-style framing with a CRC trailer in the header.
pub const HEADER_LEN: usize = 4 + 2;

/// Errors from the Sparrow-like agent.
#[derive(Debug)]
#[non_exhaustive]
pub enum SparrowError {
    /// Flash failure.
    Layout(LayoutError),
    /// The CRC over the received image does not match the header.
    CrcMismatch,
    /// More data than the header declared.
    TooMuchData,
    /// Operation in the wrong state.
    WrongState,
}

impl core::fmt::Display for SparrowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Layout(e) => write!(f, "flash error: {e}"),
            Self::CrcMismatch => f.write_str("image CRC mismatch"),
            Self::TooMuchData => f.write_str("image exceeded declared length"),
            Self::WrongState => f.write_str("operation invalid in current state"),
        }
    }
}

impl std::error::Error for SparrowError {}

impl From<LayoutError> for SparrowError {
    fn from(e: LayoutError) -> Self {
        Self::Layout(e)
    }
}

/// Builds the Sparrow wire image for `firmware` (the sender side).
#[must_use]
pub fn encode_image(firmware: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + firmware.len());
    out.extend_from_slice(&(firmware.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc16_ccitt(firmware).to_le_bytes());
    out.extend_from_slice(firmware);
    out
}

#[derive(Debug, PartialEq, Eq)]
enum State {
    Idle,
    Header,
    Body,
    Done,
}

/// The CRC-only agent.
#[derive(Debug)]
pub struct SparrowAgent {
    target: SlotId,
    state: State,
    header: Vec<u8>,
    expected_len: u32,
    expected_crc: u16,
    received: u32,
    crc_state: Vec<u8>,
    write_pos: u32,
}

impl SparrowAgent {
    /// Creates an idle agent targeting `slot`.
    #[must_use]
    pub fn new(target: SlotId) -> Self {
        Self {
            target,
            state: State::Idle,
            header: Vec::with_capacity(HEADER_LEN),
            expected_len: 0,
            expected_crc: 0,
            received: 0,
            crc_state: Vec::new(),
            write_pos: 0,
        }
    }

    /// Starts a reception.
    pub fn begin(&mut self, layout: &mut MemoryLayout) -> Result<(), SparrowError> {
        layout.erase_slot(self.target)?;
        self.state = State::Header;
        self.header.clear();
        self.crc_state.clear();
        self.received = 0;
        self.write_pos = 0;
        Ok(())
    }

    /// Accepts chunks; on the final one, checks the CRC.
    pub fn push_data(
        &mut self,
        layout: &mut MemoryLayout,
        mut chunk: &[u8],
    ) -> Result<bool, SparrowError> {
        while !chunk.is_empty() {
            match self.state {
                State::Header => {
                    let need = HEADER_LEN - self.header.len();
                    let take = need.min(chunk.len());
                    self.header.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    if self.header.len() == HEADER_LEN {
                        self.expected_len =
                            u32::from_le_bytes(self.header[0..4].try_into().expect("4 bytes"));
                        self.expected_crc =
                            u16::from_le_bytes(self.header[4..6].try_into().expect("2 bytes"));
                        self.state = State::Body;
                    }
                }
                State::Body => {
                    let remaining = self.expected_len - self.received;
                    if remaining == 0 {
                        return Err(SparrowError::TooMuchData);
                    }
                    let take = (remaining as usize).min(chunk.len());
                    layout.write_slot(self.target, self.write_pos, &chunk[..take])?;
                    self.crc_state.extend_from_slice(&chunk[..take]);
                    self.write_pos += take as u32;
                    self.received += take as u32;
                    chunk = &chunk[take..];
                    if self.received == self.expected_len {
                        if !chunk.is_empty() {
                            return Err(SparrowError::TooMuchData);
                        }
                        if crc16_ccitt(&self.crc_state) != self.expected_crc {
                            return Err(SparrowError::CrcMismatch);
                        }
                        self.state = State::Done;
                        return Ok(true);
                    }
                }
                State::Idle | State::Done => return Err(SparrowError::WrongState),
            }
        }
        Ok(self.state == State::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upkit_flash::{configuration_b, standard, FlashGeometry, SimFlash};

    fn layout() -> MemoryLayout {
        configuration_b(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 16,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            None,
            4096 * 4,
        )
        .unwrap()
    }

    #[test]
    fn accepts_valid_crc_image() {
        let mut layout = layout();
        let wire = encode_image(b"honest firmware bytes");
        let mut agent = SparrowAgent::new(standard::SLOT_B);
        agent.begin(&mut layout).unwrap();
        let mut done = false;
        for chunk in wire.chunks(7) {
            done = agent.push_data(&mut layout, chunk).unwrap();
        }
        assert!(done);
    }

    #[test]
    fn detects_accidental_corruption() {
        let mut layout = layout();
        let mut wire = encode_image(b"honest firmware bytes");
        let len = wire.len();
        wire[len - 2] ^= 0x10; // corruption after CRC computation
        let mut agent = SparrowAgent::new(standard::SLOT_B);
        agent.begin(&mut layout).unwrap();
        let mut result = Ok(false);
        for chunk in wire.chunks(7) {
            result = agent.push_data(&mut layout, chunk);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(SparrowError::CrcMismatch)));
    }

    #[test]
    fn tampering_with_recomputed_crc_sails_through() {
        // The attack CRC cannot stop: the attacker swaps the firmware AND
        // recomputes the checksum. Sparrow accepts; UpKit's signature
        // verification would reject.
        let mut layout = layout();
        let forged = encode_image(b"malicious firmware!");
        let mut agent = SparrowAgent::new(standard::SLOT_B);
        agent.begin(&mut layout).unwrap();
        let mut done = false;
        for chunk in forged.chunks(16) {
            done = agent.push_data(&mut layout, chunk).unwrap();
        }
        assert!(done, "forged image accepted: CRC is not a security check");
    }

    #[test]
    fn state_guards() {
        let mut layout = layout();
        let mut agent = SparrowAgent::new(standard::SLOT_B);
        assert!(matches!(
            agent.push_data(&mut layout, b"xx"),
            Err(SparrowError::WrongState)
        ));
        agent.begin(&mut layout).unwrap();
        let mut wire = encode_image(b"fw");
        wire.push(0);
        let mut result = Ok(false);
        for chunk in wire.chunks(3) {
            result = agent.push_data(&mut layout, chunk);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(SparrowError::TooMuchData)));
    }
}
