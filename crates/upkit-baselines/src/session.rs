//! Session-layer adapters for the baseline agents.
//!
//! [`McumgrEndpoints`] and [`Lwm2mEndpoints`] implement
//! [`upkit_net::SessionEndpoints`], so the mcumgr- and LwM2M-like agents
//! run on the *same* resumable [`PushSession`](upkit_net::PushSession) /
//! [`PullSession`](upkit_net::PullSession) state machines as UpKit —
//! identical link charging, loss sampling, and retry policy. What differs
//! is only what the paper's comparison is about: these agents verify
//! nothing, so sessions that UpKit would reject at the manifest complete
//! happily here.
//!
//! Neither baseline protocol has UpKit's device-token handshake, so
//! `request_token` fabricates a token advertising version 0 (both
//! baselines always take the full image) and uses the slot of the
//! handshake to run the agent's `begin` (slot erase) — the operation each
//! real protocol performs before its upload/download starts.

use upkit_core::agent::{AgentError, AgentPhase, AgentState};
use upkit_flash::MemoryLayout;
use upkit_manifest::{DeviceToken, Version, SIGNED_MANIFEST_LEN};
use upkit_net::{SessionEndpoints, SessionStream, StreamResolution};

use crate::lwm2m::{Lwm2mAgent, Lwm2mError};
use crate::mcumgr::{McumgrAgent, McumgrError};

fn split_stream(wire: Vec<u8>) -> StreamResolution {
    if wire.is_empty() {
        return StreamResolution::ProxyEmpty;
    }
    let cut = SIGNED_MANIFEST_LEN.min(wire.len());
    let (manifest, payload) = wire.split_at(cut);
    StreamResolution::Stream(SessionStream {
        manifest: manifest.to_vec(),
        payload: payload.to_vec(),
    })
}

/// Phase reported to the session after a successful baseline delivery:
/// the baselines accept any parseable header, so the manifest region
/// boundary *is* manifest acceptance.
fn phase_after(done: bool, delivered: usize) -> AgentPhase {
    if done {
        AgentPhase::Complete
    } else if delivered == SIGNED_MANIFEST_LEN {
        AgentPhase::ManifestAccepted
    } else {
        AgentPhase::NeedMore
    }
}

fn map_mcumgr(e: McumgrError) -> AgentError {
    match e {
        McumgrError::Layout(e) => AgentError::Layout(e),
        // An unparseable header is the closest thing mcumgr has to a
        // manifest failure.
        McumgrError::Framing(_) => {
            AgentError::Verify(upkit_core::verifier::VerifyError::VendorSignature)
        }
        McumgrError::TooMuchData => AgentError::TooMuchData,
        McumgrError::WrongState => AgentError::WrongState(AgentState::Waiting),
    }
}

fn map_lwm2m(e: Lwm2mError) -> AgentError {
    match e {
        Lwm2mError::Layout(e) => AgentError::Layout(e),
        Lwm2mError::Framing(_) => {
            AgentError::Verify(upkit_core::verifier::VerifyError::VendorSignature)
        }
        Lwm2mError::TooMuchData => AgentError::TooMuchData,
        Lwm2mError::WrongState => AgentError::WrongState(AgentState::Waiting),
        // DTLS catching replayed traffic is a freshness violation — the
        // same property UpKit's nonce check provides end to end.
        Lwm2mError::TransportReplayDetected => {
            AgentError::Verify(upkit_core::verifier::VerifyError::WrongNonce)
        }
    }
}

/// [`SessionEndpoints`] adapter running a [`McumgrAgent`] under a push
/// session: the smartphone streams `wire` (a serialized update image) and
/// the agent stores it without verification.
pub struct McumgrEndpoints<'a> {
    agent: &'a mut McumgrAgent,
    layout: &'a mut MemoryLayout,
    wire: Option<Vec<u8>>,
    device_id: u32,
    nonce: u32,
    delivered: usize,
}

impl<'a> McumgrEndpoints<'a> {
    /// `wire` is what the proxy will forward — `None` models a server
    /// with nothing newer, an empty vector a broken proxy.
    pub fn new(
        agent: &'a mut McumgrAgent,
        layout: &'a mut MemoryLayout,
        wire: Option<Vec<u8>>,
        device_id: u32,
        nonce: u32,
    ) -> Self {
        Self {
            agent,
            layout,
            wire,
            device_id,
            nonce,
            delivered: 0,
        }
    }
}

impl SessionEndpoints for McumgrEndpoints<'_> {
    fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
        self.agent.begin(self.layout).map_err(map_mcumgr)?;
        Ok(DeviceToken {
            device_id: self.device_id,
            nonce: self.nonce,
            // mcumgr has no differential support: always the full image.
            current_version: Version(0),
        })
    }

    fn resolve_stream(&mut self, _token: &DeviceToken) -> StreamResolution {
        match self.wire.take() {
            None => StreamResolution::NoUpdate,
            Some(wire) => split_stream(wire),
        }
    }

    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
        let done = self
            .agent
            .push_data(self.layout, chunk)
            .map_err(map_mcumgr)?;
        self.delivered += chunk.len();
        Ok(phase_after(done, self.delivered))
    }
}

/// [`SessionEndpoints`] adapter running a [`Lwm2mAgent`] under a pull
/// session. `fresh_session` is handed to the simulated DTLS layer on
/// every block, exactly as [`Lwm2mAgent::push_data`] takes it.
pub struct Lwm2mEndpoints<'a> {
    agent: &'a mut Lwm2mAgent,
    layout: &'a mut MemoryLayout,
    wire: Option<Vec<u8>>,
    device_id: u32,
    nonce: u32,
    fresh_session: bool,
    delivered: usize,
}

impl<'a> Lwm2mEndpoints<'a> {
    /// `wire` as in [`McumgrEndpoints::new`]; `fresh_session` is `false`
    /// when an intermediary replays the bytes.
    pub fn new(
        agent: &'a mut Lwm2mAgent,
        layout: &'a mut MemoryLayout,
        wire: Option<Vec<u8>>,
        device_id: u32,
        nonce: u32,
        fresh_session: bool,
    ) -> Self {
        Self {
            agent,
            layout,
            wire,
            device_id,
            nonce,
            fresh_session,
            delivered: 0,
        }
    }
}

impl SessionEndpoints for Lwm2mEndpoints<'_> {
    fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
        self.agent.begin(self.layout).map_err(map_lwm2m)?;
        Ok(DeviceToken {
            device_id: self.device_id,
            nonce: self.nonce,
            current_version: Version(0),
        })
    }

    fn resolve_stream(&mut self, _token: &DeviceToken) -> StreamResolution {
        match self.wire.take() {
            None => StreamResolution::NoUpdate,
            Some(wire) => split_stream(wire),
        }
    }

    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
        let done = self
            .agent
            .push_data(self.layout, chunk, self.fresh_session)
            .map_err(map_lwm2m)?;
        self.delivered += chunk.len();
        Ok(phase_after(done, self.delivered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_core::generation::{UpdateServer, VendorServer};
    use upkit_core::image::FIRMWARE_OFFSET;
    use upkit_core::verifier::VerifyError;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_flash::{configuration_a, standard, FlashGeometry, SimFlash};
    use upkit_net::{
        LinkProfile, LossyLink, PullSession, PushSession, RetryPolicy, SessionEventKind,
        SessionOutcome, Step, Transport,
    };

    fn layout() -> MemoryLayout {
        configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 64,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            4096 * 16,
        )
        .unwrap()
    }

    fn wire(seed: u64, fw: Vec<u8>) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        server.publish(vendor.release(fw, Version(2), 0, 0xA));
        server
            .prepare_update(&DeviceToken {
                device_id: 1,
                nonce: 1,
                current_version: Version(0),
            })
            .unwrap()
            .image
            .to_bytes()
    }

    #[test]
    fn mcumgr_session_stores_image_without_verification() {
        let mut layout = layout();
        let fw = vec![0x5A; 10_000];
        let mut bytes = wire(170, fw.clone());
        let len = bytes.len();
        bytes[len - 10] ^= 0xFF; // corrupt: the agent will not notice
        let mut agent = McumgrAgent::new(standard::SLOT_B);
        let link = LinkProfile::ble_gatt();
        let mut session =
            PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
        let mut endpoints = McumgrEndpoints::new(&mut agent, &mut layout, Some(bytes), 1, 1);
        let report = session.run_to_completion(&mut endpoints);
        assert_eq!(report.outcome, SessionOutcome::Complete);
        assert!(agent.is_done(), "tampered image accepted: no verification");
        assert!(report.accounting.bytes_to_device > fw.len() as u64);
    }

    #[test]
    fn mcumgr_session_survives_a_lossy_link() {
        let mut layout = layout();
        let bytes = wire(171, vec![0x33; 6_000]);
        let mut agent = McumgrAgent::new(standard::SLOT_B);
        let link = LinkProfile::ble_gatt();
        let mut session = PushSession::new(
            LossyLink::bernoulli(link, 0.15, 0xBA5E),
            RetryPolicy::for_link(&link),
            7,
        );
        let mut endpoints = McumgrEndpoints::new(&mut agent, &mut layout, Some(bytes), 1, 1);
        let mut losses = 0u32;
        let report = loop {
            match session.step(&mut endpoints) {
                Step::Progress(event) => {
                    if matches!(event.kind, SessionEventKind::ChunkLost { .. }) {
                        losses += 1;
                    }
                }
                Step::Done(report) => break report,
            }
        };
        assert_eq!(report.outcome, SessionOutcome::Complete);
        assert!(losses > 0, "expected retransmissions at 15 % loss");
    }

    #[test]
    fn mcumgr_session_reports_no_update_and_proxy_empty() {
        let mut layout = layout();
        let mut agent = McumgrAgent::new(standard::SLOT_B);
        let link = LinkProfile::ble_gatt();
        let mut session =
            PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
        let mut endpoints = McumgrEndpoints::new(&mut agent, &mut layout, None, 1, 1);
        let report = session.run_to_completion(&mut endpoints);
        assert_eq!(report.outcome, SessionOutcome::NoUpdateAvailable);

        let mut agent = McumgrAgent::new(standard::SLOT_B);
        let mut session =
            PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
        let mut endpoints = McumgrEndpoints::new(&mut agent, &mut layout, Some(Vec::new()), 1, 1);
        let report = session.run_to_completion(&mut endpoints);
        assert_eq!(report.outcome, SessionOutcome::ProxyEmpty);
    }

    #[test]
    fn lwm2m_session_downloads_and_stores() {
        let mut layout = layout();
        let fw = vec![0xAA; 3_000];
        let bytes = wire(172, fw.clone());
        let mut agent = Lwm2mAgent::new(standard::SLOT_B, false);
        let link = LinkProfile::ieee802154_6lowpan();
        let mut session =
            PullSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
        let mut endpoints = Lwm2mEndpoints::new(&mut agent, &mut layout, Some(bytes), 1, 1, true);
        let report = session.run_to_completion(&mut endpoints);
        assert_eq!(report.outcome, SessionOutcome::Complete);
        let mut stored = vec![0u8; fw.len()];
        layout
            .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut stored)
            .unwrap();
        assert_eq!(stored, fw);
    }

    #[test]
    fn lwm2m_end_to_end_session_rejects_replay() {
        let mut layout = layout();
        let bytes = wire(173, vec![0xBB; 1_000]);
        let mut agent = Lwm2mAgent::new(standard::SLOT_B, true);
        let link = LinkProfile::ieee802154_6lowpan();
        let mut session =
            PullSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
        let mut endpoints = Lwm2mEndpoints::new(&mut agent, &mut layout, Some(bytes), 1, 1, false);
        let report = session.run_to_completion(&mut endpoints);
        assert_eq!(
            report.outcome,
            SessionOutcome::RejectedAtManifest(AgentError::Verify(VerifyError::WrongNonce))
        );
    }

    #[test]
    fn lwm2m_proxied_session_accepts_replay() {
        // The paper's architectural point, now on session machinery: a
        // proxy-terminated DTLS channel lets replayed bytes complete.
        let mut layout = layout();
        let bytes = wire(174, vec![0xCC; 1_000]);
        let mut agent = Lwm2mAgent::new(standard::SLOT_B, false);
        let link = LinkProfile::ieee802154_6lowpan();
        let mut session =
            PullSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
        let mut endpoints = Lwm2mEndpoints::new(&mut agent, &mut layout, Some(bytes), 1, 1, false);
        let report = session.run_to_completion(&mut endpoints);
        assert_eq!(report.outcome, SessionOutcome::Complete);
    }
}
