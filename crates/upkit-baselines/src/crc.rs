//! CRC-16/CCITT-FALSE, the integrity check used by Sparrow- and
//! Deluge-style update systems.
//!
//! The paper's point (Sect. II/VII): a CRC detects accidental corruption
//! but offers **no** protection against tampering, because an attacker can
//! simply recompute it. [`crate::sparrow`] uses this module to demonstrate
//! exactly that.

/// Computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection).
#[must_use]
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = crc16_ccitt(b"firmware image");
        let mut tampered = b"firmware image".to_vec();
        tampered[3] ^= 1;
        assert_ne!(a, crc16_ccitt(&tampered));
    }

    #[test]
    fn attacker_can_recompute() {
        // The security hole: CRC over attacker-chosen data is trivially
        // recomputable — there is no key.
        let evil = b"malicious firmware";
        let crc = crc16_ccitt(evil);
        assert_eq!(crc16_ccitt(evil), crc); // deterministic, keyless
    }
}
