//! mcuboot-like bootloader.
//!
//! MCUboot is the portable bootloader the paper compares against
//! (Fig. 7a). Differences from UpKit's bootloader that matter to the
//! evaluation:
//!
//! * Verification happens **only here** — after the device has already
//!   downloaded, stored, and rebooted. An invalid image costs a full
//!   download plus a reboot before it is detected.
//! * Only the **vendor** signature is checked; there is no update-server
//!   signature, so no device/request binding: any vendor-signed image for
//!   the right platform is accepted, including replayed or (with the
//!   default configuration) downgraded ones.
//! * Loading always swaps the staging slot into the primary slot
//!   (mcuboot's classic swap strategy) — the cost Fig. 8c's A/B mode
//!   avoids.

use std::sync::Arc;

use upkit_core::image::{read_firmware_chunks, read_manifest};
use upkit_core::keys::KeyAnchor;
use upkit_core::verifier::FirmwareDigester;
use upkit_crypto::backend::{SecurityBackend, SecurityError};
use upkit_flash::{LayoutError, MemoryLayout, SlotId};
use upkit_manifest::{SignedManifest, Version};

/// mcuboot-like configuration.
#[derive(Clone, Debug)]
pub struct McubootConfig {
    /// The slot the MCU executes from.
    pub primary: SlotId,
    /// The staging slot uploads land in.
    pub staging: SlotId,
    /// The single trusted (vendor) key.
    pub vendor_key: KeyAnchor,
    /// Optional downgrade prevention (off by default in mcuboot).
    pub downgrade_prevention: bool,
}

/// Boot outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McubootOutcome {
    /// Staging was valid and swapped into the primary slot.
    SwappedNewImage {
        /// Version now running.
        version: Version,
    },
    /// Booted the existing primary image (staging absent or invalid).
    BootedExisting {
        /// Version now running.
        version: Version,
        /// Whether an invalid staged image was detected and discarded —
        /// i.e. the wasted-download case.
        staging_was_invalid: bool,
    },
}

/// Boot errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum McubootError {
    /// Neither slot holds a valid image.
    NoValidImage,
    /// Flash failure.
    Layout(LayoutError),
}

impl core::fmt::Display for McubootError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoValidImage => f.write_str("no valid image in either slot"),
            Self::Layout(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl std::error::Error for McubootError {}

impl From<LayoutError> for McubootError {
    fn from(e: LayoutError) -> Self {
        Self::Layout(e)
    }
}

/// The mcuboot-like bootloader.
pub struct McubootBootloader {
    backend: Arc<dyn SecurityBackend>,
    config: McubootConfig,
}

impl core::fmt::Debug for McubootBootloader {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("McubootBootloader").finish_non_exhaustive()
    }
}

impl McubootBootloader {
    /// Creates the bootloader.
    #[must_use]
    pub fn new(backend: Arc<dyn SecurityBackend>, config: McubootConfig) -> Self {
        Self { backend, config }
    }

    /// Single-signature + digest verification of one slot. No device ID,
    /// nonce, or server-signature checks — mcuboot has none of them.
    pub fn verify_slot(
        &self,
        layout: &mut MemoryLayout,
        slot: SlotId,
    ) -> Result<SignedManifest, SecurityError> {
        let signed = match read_manifest(layout, slot) {
            Ok(Some(signed)) => signed,
            _ => return Err(SecurityError::BadSignature),
        };
        let digest = self.backend.digest(&signed.manifest.vendor_signed_bytes());
        self.backend.verify(
            self.config.vendor_key.key_ref(),
            &digest,
            &signed.vendor_signature,
        )?;
        let mut digester = FirmwareDigester::new();
        read_firmware_chunks(layout, slot, signed.manifest.size, 4096, |chunk| {
            digester.update(chunk)
        })
        .map_err(|_| SecurityError::BadSignature)?;
        if digester.finalize() != signed.manifest.digest {
            return Err(SecurityError::BadSignature);
        }
        Ok(signed)
    }

    /// Boot: verify staging; if valid (and newer, when downgrade
    /// prevention is on) swap it in; otherwise boot the primary.
    pub fn boot(&self, layout: &mut MemoryLayout) -> Result<McubootOutcome, McubootError> {
        let primary = self.verify_slot(layout, self.config.primary).ok();
        let staging = self.verify_slot(layout, self.config.staging).ok();

        // mcumgr-style uploads always land in staging; the slot not being
        // verifiable is the "wasted download" signal.
        let staging_present = read_manifest(layout, self.config.staging)
            .ok()
            .flatten()
            .is_some();

        match (primary, staging) {
            (primary_signed, Some(staged)) => {
                let downgrade = self.config.downgrade_prevention
                    && primary_signed
                        .as_ref()
                        .is_some_and(|p| staged.manifest.version <= p.manifest.version);
                if downgrade {
                    let p = primary_signed.expect("checked in downgrade condition");
                    Ok(McubootOutcome::BootedExisting {
                        version: p.manifest.version,
                        staging_was_invalid: false,
                    })
                } else {
                    layout.swap_slots(self.config.primary, self.config.staging)?;
                    Ok(McubootOutcome::SwappedNewImage {
                        version: staged.manifest.version,
                    })
                }
            }
            (Some(p), None) => Ok(McubootOutcome::BootedExisting {
                version: p.manifest.version,
                staging_was_invalid: staging_present,
            }),
            (None, None) => Err(McubootError::NoValidImage),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_core::image::{write_manifest, FIRMWARE_OFFSET};
    use upkit_crypto::backend::TinyCryptBackend;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_crypto::sha256::sha256;
    use upkit_flash::{configuration_b, standard, FlashGeometry, SimFlash};
    use upkit_manifest::{server_sign, vendor_sign, Manifest};

    fn layout() -> MemoryLayout {
        configuration_b(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 64,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            None,
            4096 * 8,
        )
        .unwrap()
    }

    fn install(
        layout: &mut MemoryLayout,
        slot: SlotId,
        vendor: &SigningKey,
        version: u16,
        fw: &[u8],
    ) {
        let manifest = Manifest {
            device_id: 0,
            nonce: 0,
            old_version: Version(0),
            version: Version(version),
            size: fw.len() as u32,
            payload_size: fw.len() as u32,
            digest: sha256(fw),
            link_offset: 0,
            app_id: 0xA,
        };
        // mcuboot images carry only the vendor signature; fill the server
        // slot with a self-signature to satisfy the container format.
        let signed = SignedManifest {
            manifest,
            vendor_signature: vendor_sign(&manifest, vendor),
            server_signature: server_sign(&manifest, vendor),
        };
        layout.erase_slot(slot).unwrap();
        write_manifest(layout, slot, &signed).unwrap();
        layout.write_slot(slot, FIRMWARE_OFFSET, fw).unwrap();
    }

    fn boot_with(vendor: &SigningKey, downgrade_prevention: bool) -> McubootBootloader {
        McubootBootloader::new(
            Arc::new(TinyCryptBackend),
            McubootConfig {
                primary: standard::SLOT_A,
                staging: standard::SLOT_B,
                vendor_key: KeyAnchor::inline(&vendor.verifying_key()),
                downgrade_prevention,
            },
        )
    }

    #[test]
    fn swaps_valid_staged_image() {
        let vendor = SigningKey::generate(&mut StdRng::seed_from_u64(170));
        let mut layout = layout();
        install(&mut layout, standard::SLOT_A, &vendor, 1, b"v1 image");
        install(&mut layout, standard::SLOT_B, &vendor, 2, b"v2 image");
        let boot = boot_with(&vendor, false);
        assert_eq!(
            boot.boot(&mut layout).unwrap(),
            McubootOutcome::SwappedNewImage {
                version: Version(2)
            }
        );
    }

    #[test]
    fn invalid_staging_detected_only_after_reboot() {
        let vendor = SigningKey::generate(&mut StdRng::seed_from_u64(171));
        let mut layout = layout();
        install(&mut layout, standard::SLOT_A, &vendor, 1, b"v1 image");
        install(&mut layout, standard::SLOT_B, &vendor, 2, b"v2 image");
        // Corrupt the staged firmware after storage (as a tampered upload
        // would be): the device has already paid download + reboot.
        layout
            .write_slot(standard::SLOT_B, FIRMWARE_OFFSET, &[0x00])
            .unwrap();
        let boot = boot_with(&vendor, false);
        match boot.boot(&mut layout).unwrap() {
            McubootOutcome::BootedExisting {
                version,
                staging_was_invalid,
            } => {
                assert_eq!(version, Version(1));
                assert!(staging_was_invalid, "the wasted-download signal");
            }
            other => panic!("expected rollback, got {other:?}"),
        }
    }

    #[test]
    fn accepts_downgrade_by_default() {
        // The update-freshness hole: a valid but *old* vendor-signed image
        // is swapped in without complaint.
        let vendor = SigningKey::generate(&mut StdRng::seed_from_u64(172));
        let mut layout = layout();
        install(&mut layout, standard::SLOT_A, &vendor, 5, b"v5 image");
        install(&mut layout, standard::SLOT_B, &vendor, 2, b"v2 image");
        let boot = boot_with(&vendor, false);
        assert_eq!(
            boot.boot(&mut layout).unwrap(),
            McubootOutcome::SwappedNewImage {
                version: Version(2)
            }
        );
    }

    #[test]
    fn downgrade_prevention_keeps_newer_primary() {
        let vendor = SigningKey::generate(&mut StdRng::seed_from_u64(173));
        let mut layout = layout();
        install(&mut layout, standard::SLOT_A, &vendor, 5, b"v5 image");
        install(&mut layout, standard::SLOT_B, &vendor, 2, b"v2 image");
        let boot = boot_with(&vendor, true);
        match boot.boot(&mut layout).unwrap() {
            McubootOutcome::BootedExisting { version, .. } => assert_eq!(version, Version(5)),
            other => panic!("expected existing image, got {other:?}"),
        }
    }

    #[test]
    fn rejects_foreign_vendor_signature() {
        let vendor = SigningKey::generate(&mut StdRng::seed_from_u64(174));
        let attacker = SigningKey::generate(&mut StdRng::seed_from_u64(175));
        let mut layout = layout();
        install(&mut layout, standard::SLOT_A, &vendor, 1, b"legit v1");
        install(&mut layout, standard::SLOT_B, &attacker, 9, b"evil  v9");
        let boot = boot_with(&vendor, false);
        match boot.boot(&mut layout).unwrap() {
            McubootOutcome::BootedExisting { version, .. } => assert_eq!(version, Version(1)),
            other => panic!("expected rollback, got {other:?}"),
        }
    }

    #[test]
    fn no_image_anywhere_is_fatal() {
        let vendor = SigningKey::generate(&mut StdRng::seed_from_u64(176));
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout.erase_slot(standard::SLOT_B).unwrap();
        let boot = boot_with(&vendor, false);
        assert!(matches!(
            boot.boot(&mut layout),
            Err(McubootError::NoValidImage)
        ));
    }
}
