//! Proves the steady-state hot paths are allocation-free.
//!
//! A counting global allocator wraps the system allocator; each test runs
//! its setup (allocations welcome), snapshots the counter, drives many
//! iterations of the device hot path — block verify over flash, bsdiff /
//! block-diff / framed / LZSS application into fixed buffers — and asserts
//! the counter did not move. This is the executable form of the `no_std`
//! portability claim: a device can run these loops from static buffers
//! with no heap at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use upkit_core::image::{read_firmware_chunks, FIRMWARE_OFFSET};
use upkit_core::verifier::FirmwareDigester;
use upkit_flash::{configuration_a, standard, FlashGeometry, MemoryLayout, SimFlash};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn layout_with_firmware(fw: &[u8]) -> MemoryLayout {
    let mut layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry {
            size: 4096 * 32,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        })),
        4096 * 16,
    )
    .unwrap();
    layout.erase_slot(standard::SLOT_A).unwrap();
    layout
        .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, fw)
        .unwrap();
    layout
}

fn sample_firmware(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

fn related_images() -> (Vec<u8>, Vec<u8>) {
    let old = sample_firmware(16_384);
    let mut new = old.clone();
    for i in (0..new.len()).step_by(97) {
        new[i] = new[i].wrapping_add(7);
    }
    new.extend_from_slice(&[0xA5; 300]);
    (old, new)
}

/// The bootloader/agent block-verify loop — chunked flash reads feeding the
/// SHA-256 digester — performs zero heap allocations once set up.
#[test]
fn block_verify_loop_is_allocation_free() {
    let fw = sample_firmware(20_000);
    let mut layout = layout_with_firmware(&fw);
    let expected = upkit_crypto::sha256::sha256(&fw);

    // Warm up once so any lazily-initialized state is paid for.
    let mut digester = FirmwareDigester::new();
    read_firmware_chunks(&mut layout, standard::SLOT_A, fw.len() as u32, 4096, |c| {
        digester.update(c)
    })
    .unwrap();
    assert_eq!(digester.finalize(), expected);

    let before = allocations();
    for _ in 0..16 {
        let mut digester = FirmwareDigester::new();
        read_firmware_chunks(&mut layout, standard::SLOT_A, fw.len() as u32, 4096, |c| {
            digester.update(c)
        })
        .unwrap();
        assert_eq!(digester.finalize(), expected);
    }
    assert_eq!(
        allocations() - before,
        0,
        "block-verify loop must not allocate"
    );
}

/// Patch application into caller-provided buffers — bsdiff, block-diff,
/// and raw LZSS — performs zero heap allocations end to end.
#[test]
fn patch_apply_loop_is_allocation_free() {
    let (old, new) = related_images();

    let bsdiff_patch = upkit_delta::diff(&old, &new);
    let block_delta = upkit_delta::blockdiff::diff(&old, &new);
    let lzss = upkit_compress::compress(&new, upkit_compress::Params::default());

    let mut out = vec![0u8; new.len()];

    // Warm up each decoder once.
    assert_eq!(
        upkit_delta::patch_into(&old, &bsdiff_patch, &mut out).unwrap(),
        new.len()
    );
    assert_eq!(out, new);

    let before = allocations();
    for _ in 0..8 {
        out.fill(0);
        let n = upkit_delta::patch_into(&old, &bsdiff_patch, &mut out).unwrap();
        assert_eq!(&out[..n], &new[..]);

        out.fill(0);
        let n = upkit_delta::blockdiff::patch_into(&old, &block_delta, &mut out).unwrap();
        assert_eq!(&out[..n], &new[..]);

        out.fill(0);
        let n = upkit_compress::decompress_into(&lzss, &mut out).unwrap();
        assert_eq!(&out[..n], &new[..]);
    }
    assert_eq!(
        allocations() - before,
        0,
        "patch-apply loop must not allocate"
    );
}

/// The framed decoder allocates only at setup (the `Arc` around the old
/// image and the window directory, 13 bytes per window); the body loop —
/// per-window patchers, LZSS decompression through stack scratch — is
/// allocation-free even across window boundaries.
#[test]
fn framed_body_loop_is_allocation_free() {
    let (old, new) = related_images();

    // Small windows + compression so the steady-state loop crosses several
    // window boundaries and exercises the decompressor drain path.
    let options = upkit_delta::FramedDiffOptions {
        window_len: 4096,
        threads: 1,
        lzss: Some(upkit_compress::Params::default()),
    };
    let container = upkit_delta::framed_diff(&old, &new, &options);

    let window_count = u32::from_le_bytes(container[12..16].try_into().expect("4 bytes")) as usize;
    assert!(
        window_count >= 4,
        "want several windows, got {window_count}"
    );
    let body_start = upkit_delta::framed::FRAMED_HEADER_LEN
        + window_count * upkit_delta::framed::WINDOW_HEADER_LEN;

    let mut out = vec![0u8; new.len()];
    let mut sink = upkit_compress::FixedBuf::new(&mut out);
    let mut patcher = upkit_delta::FramedPatcher::with_budget(old.as_slice(), new.len() as u64);
    // Setup: header + directory (the patcher's only allocations).
    patcher.push(&container[..body_start], &mut sink).unwrap();

    let before = allocations();
    for chunk in container[body_start..].chunks(512) {
        patcher.push(chunk, &mut sink).unwrap();
    }
    patcher.finish().unwrap();
    assert_eq!(
        allocations() - before,
        0,
        "framed body loop must not allocate"
    );
    assert_eq!(sink.len(), new.len());
    assert_eq!(sink.as_slice(), &new[..]);
}
