//! Parallel multi-target update generation.
//!
//! The server-side hot path — diff → compress → hash → double-sign, once
//! per device token — is embarrassingly parallel across tokens: every job
//! reads the shared [`UpdateServer`] immutably (its delta and patch caches
//! are internally synchronized) and touches nothing owned by another job.
//! [`ParallelGenerator`] runs a campaign batch in two phases over the
//! index-slotted worker pool from [`upkit_delta::pool`]:
//!
//! 1. **Warm**: each *distinct* base version in the batch is diffed against
//!    the newest release exactly once, in sorted base order, populating the
//!    server's content-addressed patch cache. This is where the heavy work
//!    (suffix array, bsdiff, compression) happens — one job per transition,
//!    never one per device.
//! 2. **Prepare**: one job per token assembles and signs its manifest. All
//!    diffs are cache hits by construction, so this phase is signature
//!    bound and scales with the token count.
//!
//! Output is *byte-identical* to running [`UpdateServer::prepare_update`]
//! sequentially over the same batch: manifests are pure functions of token
//! and release, signatures use deterministic RFC 6979 nonces, and the
//! cached diff/compression results are deterministic functions of the two
//! images. Traces are deterministic too: every job runs under its own
//! tracer and the per-job records are merged in input order, so the merged
//! trace does not depend on the thread count or worker scheduling (the
//! same two phases run even at one thread). Tests assert both identities
//! end to end.

use alloc::collections::BTreeSet;
use alloc::sync::Arc;

use upkit_delta::pool::parallel_map;
use upkit_manifest::{DeviceToken, Version};
use upkit_trace::{CountersSnapshot, MemorySink, TraceRecord, Tracer};

use crate::generation::{PreparedUpdate, UpdateServer};

/// One job's contribution to the merged campaign trace.
type JobTrace = (CountersSnapshot, Vec<TraceRecord>);

/// Runs `job` under its own tracer and returns its result plus the trace
/// delta to merge into the parent. When the parent tracer is disabled the
/// job tracer skips record buffering and only counters are collected.
fn traced_job<R>(parent_enabled: bool, job: impl FnOnce(&Tracer) -> R) -> (R, JobTrace) {
    if parent_enabled {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let result = job(&tracer);
        (result, (tracer.counters().snapshot(), sink.drain()))
    } else {
        let tracer = Tracer::disabled();
        let result = job(&tracer);
        (result, (tracer.counters().snapshot(), Vec::new()))
    }
}

/// Fans [`UpdateServer::prepare_update`] calls for a batch of device
/// tokens out across worker threads.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use upkit_core::generation::{UpdateServer, VendorServer};
/// use upkit_core::parallel::ParallelGenerator;
/// use upkit_crypto::ecdsa::SigningKey;
/// use upkit_manifest::{DeviceToken, Version};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let vendor = VendorServer::new(SigningKey::generate(&mut rng));
/// let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
/// server.publish(vendor.release(vec![0xAB; 4096], Version(1), 0, 0xF1));
///
/// let tokens: Vec<DeviceToken> = (0..8)
///     .map(|i| DeviceToken { device_id: i, nonce: i + 1, current_version: Version(0) })
///     .collect();
/// let prepared = ParallelGenerator::with_threads(&server, 4).prepare_updates(&tokens);
/// assert!(prepared.iter().all(|p| p.is_some()));
/// ```
pub struct ParallelGenerator<'s> {
    server: &'s UpdateServer,
    threads: usize,
}

impl<'s> ParallelGenerator<'s> {
    /// Creates a generator sized to the host's available parallelism.
    #[must_use]
    pub fn new(server: &'s UpdateServer) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, core::num::NonZeroUsize::get);
        Self::with_threads(server, threads)
    }

    /// Creates a generator with an explicit worker count (min 1).
    #[must_use]
    pub fn with_threads(server: &'s UpdateServer, threads: usize) -> Self {
        Self {
            server,
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this generator spawns.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Prepares one update per token, in parallel, tracing into the
    /// server's own tracer (see [`UpdateServer::set_tracer`]).
    ///
    /// `result[i]` corresponds to `tokens[i]` and equals — byte for byte —
    /// what `server.prepare_update(&tokens[i])` returns.
    #[must_use]
    pub fn prepare_updates(&self, tokens: &[DeviceToken]) -> Vec<Option<PreparedUpdate>> {
        self.prepare_updates_traced(tokens, self.server.tracer())
    }

    /// [`Self::prepare_updates`] tracing into an explicit tracer.
    ///
    /// The merged trace is deterministic: warm jobs are absorbed in sorted
    /// base-version order, prepare jobs in token order, and each job's
    /// records are contiguous — so the bytes a sink sees do not depend on
    /// the thread count. (One caveat: two base versions publishing
    /// byte-identical firmware share a cache key, and which of the two
    /// warm jobs scores the miss is then a race; distinct images — the
    /// normal case — cannot race because their keys differ.)
    #[must_use]
    pub fn prepare_updates_traced(
        &self,
        tokens: &[DeviceToken],
        tracer: &Tracer,
    ) -> Vec<Option<PreparedUpdate>> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let enabled = tracer.is_enabled();

        // Phase 1: warm each distinct base version once, in sorted order.
        // `warm` no-ops for bases with nothing to diff (unknown version,
        // already newest), so no further filtering is needed here.
        let bases: Vec<Version> = tokens
            .iter()
            .filter(|t| t.supports_differential())
            .map(|t| t.current_version)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let warmed = parallel_map(&bases, self.threads, |_, &base| {
            traced_job(enabled, |job_tracer| self.server.warm(base, job_tracer)).1
        });
        for (snapshot, records) in &warmed {
            tracer.absorb(snapshot, records);
        }

        // Phase 2: per-token manifest assembly and signing. Every diff the
        // batch needs is cached now, so these jobs only hit.
        let prepared = parallel_map(tokens, self.threads, |_, token| {
            traced_job(enabled, |job_tracer| {
                self.server.prepare_update_traced(token, job_tracer)
            })
        });
        let mut results = Vec::with_capacity(tokens.len());
        for (result, (snapshot, records)) in prepared {
            tracer.absorb(&snapshot, &records);
            results.push(result);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::VendorServer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_delta::PatchFormat;
    use upkit_manifest::Version;

    fn campaign_server(seed: u64, versions: u16, size: usize) -> (VendorServer, UpdateServer) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        let mut state = seed as u32 | 1;
        let base: Vec<u8> = (0..size)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect();
        for v in 1..=versions {
            let mut firmware = base.clone();
            let at = (usize::from(v) * 131) % (size - 64);
            for byte in &mut firmware[at..at + 64] {
                *byte = byte.wrapping_add(v as u8);
            }
            server.publish(vendor.release(firmware, Version(v), 0, 0xF1));
        }
        (vendor, server)
    }

    fn tokens(count: u32, max_base: u16) -> Vec<DeviceToken> {
        (0..count)
            .map(|i| DeviceToken {
                device_id: 0x2000 + i,
                nonce: i.wrapping_mul(0x9E37_79B9) | 1,
                current_version: Version((i as u16) % (max_base + 1)),
            })
            .collect()
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let (_, server) = campaign_server(900, 4, 6_000);
        let batch = tokens(12, 3);
        let sequential: Vec<_> = batch.iter().map(|t| server.prepare_update(t)).collect();
        let parallel = ParallelGenerator::with_threads(&server, 4).prepare_updates(&batch);
        assert_eq!(sequential.len(), parallel.len());
        for (i, (s, p)) in sequential.iter().zip(parallel.iter()).enumerate() {
            match (s, p) {
                (Some(s), Some(p)) => {
                    assert_eq!(s.image.to_bytes(), p.image.to_bytes(), "token {i}");
                    assert_eq!(s.kind, p.kind, "token {i}");
                }
                (None, None) => {}
                _ => panic!("token {i}: sequential and parallel disagree on Some/None"),
            }
        }
    }

    #[test]
    fn result_order_matches_token_order() {
        let (_, server) = campaign_server(901, 2, 3_000);
        let batch = tokens(9, 1);
        let prepared = ParallelGenerator::with_threads(&server, 3).prepare_updates(&batch);
        for (token, update) in batch.iter().zip(prepared.iter()) {
            let update = update.as_ref().expect("campaign serves everyone");
            let manifest = update.image.signed_manifest.manifest;
            assert_eq!(manifest.device_id, token.device_id);
            assert_eq!(manifest.nonce, token.nonce);
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let (_, server) = campaign_server(902, 3, 4_000);
        let batch = tokens(10, 2);
        let reference: Vec<_> = ParallelGenerator::with_threads(&server, 1)
            .prepare_updates(&batch)
            .into_iter()
            .map(|p| p.map(|p| p.image.to_bytes()))
            .collect();
        for threads in [2usize, 5, 16] {
            let out: Vec<_> = ParallelGenerator::with_threads(&server, threads)
                .prepare_updates(&batch)
                .into_iter()
                .map(|p| p.map(|p| p.image.to_bytes()))
                .collect();
            assert_eq!(reference, out, "{threads} threads");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, server) = campaign_server(903, 1, 1_000);
        assert!(ParallelGenerator::new(&server)
            .prepare_updates(&[])
            .is_empty());
    }

    #[test]
    fn more_threads_than_tokens_is_fine() {
        let (_, server) = campaign_server(904, 1, 1_000);
        let batch = tokens(2, 0);
        let prepared = ParallelGenerator::with_threads(&server, 64).prepare_updates(&batch);
        assert_eq!(prepared.len(), 2);
        assert!(prepared.iter().all(Option::is_some));
    }

    #[test]
    fn campaign_diffs_each_transition_exactly_once() {
        // 12 devices across 3 differential bases: the warm phase pays for
        // 3 diffs, every per-token job is a pure cache hit.
        let (_, server) = campaign_server(905, 4, 6_000);
        let batch = tokens(12, 3);
        let tracer = Tracer::disabled();
        let prepared =
            ParallelGenerator::with_threads(&server, 4).prepare_updates_traced(&batch, &tracer);
        assert!(prepared.iter().all(Option::is_some));
        let counters = tracer.counters().snapshot();
        // Bases 1..=3 warm and diff; base 0 has no release and serves full.
        assert_eq!(counters.patch_cache_misses, 3, "one diff per transition");
        let differential = batch
            .iter()
            .filter(|t| t.current_version.0 != 0 && t.current_version.0 != 4)
            .count() as u64;
        assert_eq!(counters.patch_cache_hits, differential, "repeats all hit");
    }

    #[test]
    fn repeated_campaign_performs_zero_re_diffs() {
        // The regression the content-addressed cache exists to prevent:
        // running the same campaign twice (a retry storm, a second poll
        // wave) must not diff anything again. The counters pin it.
        let (_, server) = campaign_server(907, 3, 5_000);
        let generator = ParallelGenerator::with_threads(&server, 4);
        let batch = tokens(10, 2);

        let first = Tracer::disabled();
        let warmup = generator.prepare_updates_traced(&batch, &first);
        assert!(warmup.iter().all(Option::is_some));
        assert_eq!(first.counters().snapshot().patch_cache_misses, 2);

        let second = Tracer::disabled();
        let prepared = generator.prepare_updates_traced(&batch, &second);
        assert!(prepared.iter().all(Option::is_some));
        let counters = second.counters().snapshot();
        assert_eq!(counters.patch_cache_misses, 0, "zero re-diffs on repeat");
        assert!(counters.patch_cache_hits > 0);
    }

    #[test]
    fn merged_trace_is_identical_across_thread_counts() {
        use upkit_trace::MemorySink;

        // Fresh identically-seeded server per thread count; the merged
        // trace (records and counters) must not depend on scheduling.
        let render = |threads: usize, format: PatchFormat| {
            let (_, mut server) = campaign_server(906, 3, 5_000);
            server.set_patch_format(format);
            let sink = Arc::new(MemorySink::new());
            let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
            let batch = tokens(10, 2);
            let prepared = ParallelGenerator::with_threads(&server, threads)
                .prepare_updates_traced(&batch, &tracer);
            assert!(prepared.iter().all(Option::is_some));
            let lines: Vec<String> = sink.drain().iter().map(TraceRecord::to_ndjson).collect();
            (lines, tracer.counters().snapshot())
        };
        for format in [PatchFormat::Raw, PatchFormat::Framed] {
            let (reference_lines, reference_counters) = render(1, format);
            assert!(
                reference_lines
                    .iter()
                    .any(|l| l.contains("patch_generated")),
                "warm phase emits generation events"
            );
            for threads in [2usize, 8] {
                let (lines, counters) = render(threads, format);
                assert_eq!(reference_lines, lines, "{threads} threads ({format:?})");
                assert_eq!(
                    reference_counters, counters,
                    "{threads} threads ({format:?})"
                );
            }
        }
    }
}
