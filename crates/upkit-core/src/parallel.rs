//! Parallel multi-target update generation.
//!
//! The server-side hot path — diff → compress → hash → double-sign, once
//! per device token — is embarrassingly parallel across tokens: every job
//! reads the shared [`UpdateServer`] immutably (its delta/payload caches
//! are internally synchronized) and touches nothing owned by another job.
//! [`ParallelGenerator`] fans a batch of tokens out over a small pool of
//! scoped worker threads fed from a bounded job queue, and writes each
//! result into the slot matching its input index, so the output order is
//! deterministic regardless of worker scheduling.
//!
//! Output is *byte-identical* to running [`UpdateServer::prepare_update`]
//! sequentially over the same batch: manifests are pure functions of token
//! and release, signatures use deterministic RFC 6979 nonces, and the
//! cached diff/compression results are deterministic functions of the two
//! images. Tests assert this identity end to end.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use upkit_manifest::DeviceToken;

use crate::generation::{PreparedUpdate, UpdateServer};

/// A fixed-capacity multi-producer/multi-consumer queue of job indices.
///
/// The bound keeps the producer from racing arbitrarily far ahead of the
/// workers when batches are huge (a fleet-scale poll burst): `push` blocks
/// once `capacity` jobs are waiting, `pop` blocks until a job or close
/// arrives.
struct JobQueue {
    state: Mutex<JobQueueState>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

struct JobQueueState {
    jobs: VecDeque<usize>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(JobQueueState {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn push(&self, job: usize) {
        let mut state = self.state.lock().expect("queue lock");
        while state.jobs.len() >= self.capacity {
            state = self.not_full.wait(state).expect("queue lock");
        }
        state.jobs.push_back(job);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Returns `None` once the queue is closed and drained.
    fn pop(&self) -> Option<usize> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }
}

/// Fans [`UpdateServer::prepare_update`] calls for a batch of device
/// tokens out across worker threads.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use upkit_core::generation::{UpdateServer, VendorServer};
/// use upkit_core::parallel::ParallelGenerator;
/// use upkit_crypto::ecdsa::SigningKey;
/// use upkit_manifest::{DeviceToken, Version};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let vendor = VendorServer::new(SigningKey::generate(&mut rng));
/// let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
/// server.publish(vendor.release(vec![0xAB; 4096], Version(1), 0, 0xF1));
///
/// let tokens: Vec<DeviceToken> = (0..8)
///     .map(|i| DeviceToken { device_id: i, nonce: i + 1, current_version: Version(0) })
///     .collect();
/// let prepared = ParallelGenerator::with_threads(&server, 4).prepare_updates(&tokens);
/// assert!(prepared.iter().all(|p| p.is_some()));
/// ```
pub struct ParallelGenerator<'s> {
    server: &'s UpdateServer,
    threads: usize,
}

impl<'s> ParallelGenerator<'s> {
    /// Creates a generator sized to the host's available parallelism.
    #[must_use]
    pub fn new(server: &'s UpdateServer) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::with_threads(server, threads)
    }

    /// Creates a generator with an explicit worker count (min 1).
    #[must_use]
    pub fn with_threads(server: &'s UpdateServer, threads: usize) -> Self {
        Self {
            server,
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this generator spawns.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Prepares one update per token, in parallel.
    ///
    /// `result[i]` corresponds to `tokens[i]` and equals — byte for byte —
    /// what `server.prepare_update(&tokens[i])` returns.
    #[must_use]
    pub fn prepare_updates(&self, tokens: &[DeviceToken]) -> Vec<Option<PreparedUpdate>> {
        if tokens.is_empty() {
            return Vec::new();
        }
        if self.threads == 1 || tokens.len() == 1 {
            return tokens
                .iter()
                .map(|t| self.server.prepare_update(t))
                .collect();
        }

        // One result slot per token: workers write disjoint indices, so
        // ordering is fixed by the input no matter who finishes first.
        let results: Vec<Mutex<Option<PreparedUpdate>>> =
            tokens.iter().map(|_| Mutex::new(None)).collect();
        let queue = JobQueue::new(self.threads * 2);

        crossbeam::thread::scope(|scope| {
            for _ in 0..self.threads.min(tokens.len()) {
                scope.spawn(|_| {
                    while let Some(index) = queue.pop() {
                        let prepared = self.server.prepare_update(&tokens[index]);
                        *results[index].lock().expect("result lock") = prepared;
                    }
                });
            }
            for index in 0..tokens.len() {
                queue.push(index);
            }
            queue.close();
        })
        .expect("generation workers do not panic");

        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("result lock"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::VendorServer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_manifest::Version;

    fn campaign_server(seed: u64, versions: u16, size: usize) -> (VendorServer, UpdateServer) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        let mut state = seed as u32 | 1;
        let base: Vec<u8> = (0..size)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect();
        for v in 1..=versions {
            let mut firmware = base.clone();
            let at = (usize::from(v) * 131) % (size - 64);
            for byte in &mut firmware[at..at + 64] {
                *byte = byte.wrapping_add(v as u8);
            }
            server.publish(vendor.release(firmware, Version(v), 0, 0xF1));
        }
        (vendor, server)
    }

    fn tokens(count: u32, max_base: u16) -> Vec<DeviceToken> {
        (0..count)
            .map(|i| DeviceToken {
                device_id: 0x2000 + i,
                nonce: i.wrapping_mul(0x9E37_79B9) | 1,
                current_version: Version((i as u16) % (max_base + 1)),
            })
            .collect()
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let (_, server) = campaign_server(900, 4, 6_000);
        let batch = tokens(12, 3);
        let sequential: Vec<_> = batch.iter().map(|t| server.prepare_update(t)).collect();
        let parallel = ParallelGenerator::with_threads(&server, 4).prepare_updates(&batch);
        assert_eq!(sequential.len(), parallel.len());
        for (i, (s, p)) in sequential.iter().zip(parallel.iter()).enumerate() {
            match (s, p) {
                (Some(s), Some(p)) => {
                    assert_eq!(s.image.to_bytes(), p.image.to_bytes(), "token {i}");
                    assert_eq!(s.kind, p.kind, "token {i}");
                }
                (None, None) => {}
                _ => panic!("token {i}: sequential and parallel disagree on Some/None"),
            }
        }
    }

    #[test]
    fn result_order_matches_token_order() {
        let (_, server) = campaign_server(901, 2, 3_000);
        let batch = tokens(9, 1);
        let prepared = ParallelGenerator::with_threads(&server, 3).prepare_updates(&batch);
        for (token, update) in batch.iter().zip(prepared.iter()) {
            let update = update.as_ref().expect("campaign serves everyone");
            let manifest = update.image.signed_manifest.manifest;
            assert_eq!(manifest.device_id, token.device_id);
            assert_eq!(manifest.nonce, token.nonce);
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let (_, server) = campaign_server(902, 3, 4_000);
        let batch = tokens(10, 2);
        let reference: Vec<_> = ParallelGenerator::with_threads(&server, 1)
            .prepare_updates(&batch)
            .into_iter()
            .map(|p| p.map(|p| p.image.to_bytes()))
            .collect();
        for threads in [2usize, 5, 16] {
            let out: Vec<_> = ParallelGenerator::with_threads(&server, threads)
                .prepare_updates(&batch)
                .into_iter()
                .map(|p| p.map(|p| p.image.to_bytes()))
                .collect();
            assert_eq!(reference, out, "{threads} threads");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, server) = campaign_server(903, 1, 1_000);
        assert!(ParallelGenerator::new(&server)
            .prepare_updates(&[])
            .is_empty());
    }

    #[test]
    fn more_threads_than_tokens_is_fine() {
        let (_, server) = campaign_server(904, 1, 1_000);
        let batch = tokens(2, 0);
        let prepared = ParallelGenerator::with_threads(&server, 64).prepare_updates(&batch);
        assert_eq!(prepared.len(), 2);
        assert!(prepared.iter().all(Option::is_some));
    }
}
