//! Multi-component transactional installs: the commit journal.
//!
//! ROADMAP item 4's hard requirement — *no power cut may ever leave a
//! device running a mixed component set* — needs more than per-slot
//! atomicity: a base OS and its app modules must flip together or not at
//! all. UpKit achieves that with a two-phase, flash-journaled install:
//!
//! 1. **Stage** — every component of the new set is written to its
//!    inactive (staging) slot and health-checked in place, in dependency
//!    order. Bootable slots are never touched in this phase; a cut
//!    anywhere leaves the running (old) set intact.
//! 2. **Commit** — only after *all* components verified is the signed
//!    multi-payload manifest written into the journal slot. This record
//!    (component set digest + per-slot targets, both signatures) is the
//!    transaction's commit point: once it exists and verifies, the set
//!    WILL become active; until then the install is invisible.
//!
//! The bootloader *replays* the journal: a valid, incomplete record makes
//! it roll forward — copy each staged component into its bootable slot in
//! table order, programming a per-component done marker (NOR bit-clear,
//! no erase needed) after each copy, then a final complete marker.
//! `MemoryLayout::copy_slot` never modifies its source, so replaying a
//! half-finished copy from any interruption — including a second cut mid
//! replay — is idempotent. A *stable* boot (the only kind that returns
//! control to application code) therefore only ever sees either the
//! complete old set (no valid commit record) or the complete new set
//! (record + complete marker): the never-mixed-set invariant.
//!
//! Journal slot layout:
//!
//! | offset | bytes | contents |
//! |---|---|---|
//! | 0 | ≤ [`JOURNAL_RECORD_MAX`] | [`SignedMultiManifest`] commit record |
//! | [`JOURNAL_DONE_OFFSET`] | [`MAX_COMPONENTS`] | per-component done markers |
//! | [`JOURNAL_COMPLETE_OFFSET`] | 1 | set-complete marker |
//!
//! Markers are single bytes programmed `0xFF → 0x00`; NOR flash clears
//! bits without an erase, so marker writes are atomic enough (a torn
//! marker write can only happen *after* its copy completed, and any
//! partially-programmed byte still reads as "set").

use alloc::vec::Vec;

use upkit_crypto::backend::{SecurityBackend, SecurityError};
use upkit_flash::{LayoutError, MemoryLayout, SlotId};
use upkit_manifest::{
    ComponentEntry, ManifestError, SignedManifest, SignedMultiManifest, MAX_COMPONENTS,
};

use crate::keys::TrustAnchors;
use crate::verifier::VerifyError;

/// Maximum serialized size of a journal commit record. A full
/// [`SignedMultiManifest`] with [`MAX_COMPONENTS`] entries is 538 bytes;
/// the cap leaves headroom and keeps the marker offsets fixed.
pub const JOURNAL_RECORD_MAX: usize = 1024;

/// Byte offset of the per-component done markers in the journal slot.
pub const JOURNAL_DONE_OFFSET: u32 = JOURNAL_RECORD_MAX as u32;

/// Byte offset of the set-complete marker in the journal slot.
pub const JOURNAL_COMPLETE_OFFSET: u32 = JOURNAL_DONE_OFFSET + MAX_COMPONENTS as u32;

/// Total journal bytes used (slot must be at least this big).
pub const JOURNAL_LEN: u32 = JOURNAL_COMPLETE_OFFSET + 1;

/// One component's slot pair in a multi-component configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComponentSlots {
    /// The slot the component executes from.
    pub bootable: SlotId,
    /// The inactive slot new versions are staged into.
    pub staging: SlotId,
}

/// One component's update payload: its slot-image header plus firmware.
#[derive(Clone, Debug)]
pub struct ComponentImage {
    /// The per-component signed manifest written to the staging slot's
    /// header (each component slot is a standard single-image slot, so
    /// the bootloader's per-slot verifier applies unchanged).
    pub signed_manifest: SignedManifest,
    /// The component's firmware bytes.
    pub firmware: Vec<u8>,
}

/// Why staging a component set was aborted. The old set remains active in
/// every case: the commit record is only written after staging succeeds.
#[derive(Debug)]
#[non_exhaustive]
pub enum StageError {
    /// Flash failure (a power cut surfaces here as
    /// `LayoutError::Flash(FlashError::PowerLoss)`).
    Layout(LayoutError),
    /// The commit record is structurally invalid (no component table,
    /// validation failure, or it does not fit the journal).
    Record(ManifestError),
    /// The record's component table does not match this device's slot
    /// configuration, or the supplied images do not match the table.
    SetMismatch,
    /// A staged component failed its post-write health check; its staging
    /// slot was erased again (per-module rollback) and nothing was
    /// committed.
    ComponentHealth {
        /// The failing component's identifier.
        component_id: u32,
        /// Why verification failed.
        error: VerifyError,
    },
}

impl core::fmt::Display for StageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Layout(e) => write!(f, "flash error while staging: {e}"),
            Self::Record(e) => write!(f, "invalid commit record: {e}"),
            Self::SetMismatch => f.write_str("component table does not match device slots"),
            Self::ComponentHealth {
                component_id,
                error,
            } => write!(
                f,
                "component {component_id:#x} failed health check: {error}"
            ),
        }
    }
}

impl core::error::Error for StageError {}

impl From<LayoutError> for StageError {
    fn from(e: LayoutError) -> Self {
        Self::Layout(e)
    }
}

/// Reads the commit record from the journal slot.
///
/// Returns `Ok(None)` when no *structurally valid* record is present — an
/// erased journal, a torn record write, or corrupt bytes all look the
/// same: the transaction never committed. Signature verification is the
/// caller's job (it needs the security backend).
pub fn read_journal_record(
    layout: &MemoryLayout,
    journal: SlotId,
) -> Result<Option<SignedMultiManifest>, LayoutError> {
    let mut buf = [0u8; JOURNAL_RECORD_MAX];
    layout.read_slot(journal, 0, &mut buf)?;
    if buf.iter().all(|&b| b == 0xFF) {
        return Ok(None);
    }
    // Trailing erased bytes after the record are ignored by the parser
    // (the component table is count-delimited).
    match SignedMultiManifest::from_bytes(&buf) {
        Ok(record) if record.multi.components.is_some() => Ok(Some(record)),
        // A journal record without a component table has nothing to
        // replay; treat it like a torn record.
        Ok(_) | Err(_) => Ok(None),
    }
}

/// Whether the journal marker byte at `offset` has been programmed.
///
/// Any byte that is no longer fully erased counts as set: markers are
/// written only after the operation they record has completed, so even a
/// torn marker write proves completion.
pub fn journal_marker_set(
    layout: &MemoryLayout,
    journal: SlotId,
    offset: u32,
) -> Result<bool, LayoutError> {
    let mut b = [0u8; 1];
    layout.read_slot(journal, offset, &mut b)?;
    Ok(b[0] != 0xFF)
}

/// Programs the journal marker byte at `offset` (NOR bit-clear; the
/// journal sector is not erased).
pub fn set_journal_marker(
    layout: &mut MemoryLayout,
    journal: SlotId,
    offset: u32,
) -> Result<(), LayoutError> {
    layout.write_slot(journal, offset, &[0x00])
}

/// Verifies a commit record's two signatures through the security
/// backend, over the table-extended signed regions.
pub fn check_record_signatures(
    backend: &dyn SecurityBackend,
    anchors: &TrustAnchors,
    record: &SignedMultiManifest,
) -> Result<(), VerifyError> {
    let vendor_digest = backend.digest(&record.multi.vendor_signed_bytes());
    backend
        .verify(
            anchors.vendor.key_ref(),
            &vendor_digest,
            &record.vendor_signature,
        )
        .map_err(|e| match e {
            SecurityError::BadSignature => VerifyError::VendorSignature,
            other => VerifyError::Backend(other),
        })?;
    let server_digest = backend.digest(&record.multi.server_signed_bytes());
    backend
        .verify(
            anchors.server.key_ref(),
            &server_digest,
            &record.server_signature,
        )
        .map_err(|e| match e {
            SecurityError::BadSignature => VerifyError::ServerSignature,
            other => VerifyError::Backend(other),
        })
}

/// Resolves a table entry to this device's slot pair for that component's
/// bootable slot.
#[must_use]
pub fn slots_for_entry<'a>(
    components: &'a [ComponentSlots],
    entry: &ComponentEntry,
) -> Option<&'a ComponentSlots> {
    components.iter().find(|c| c.bootable.0 == entry.slot)
}
