//! The update agent: UpKit's on-device FSM (Sect. IV-B, Fig. 4).
//!
//! The agent is transport-agnostic: whether bytes arrive over a BLE push
//! connection or CoAP pull responses, the network code simply feeds them to
//! [`UpdateAgent::push_data`] and the FSM routes them through verification
//! and the pipeline. The eight states of the paper's Fig. 4 are modeled
//! explicitly:
//!
//! ```text
//! Waiting → StartUpdate → ReceiveManifest → VerifyManifest
//!        → ReceiveFirmware → VerifyFirmware → (Reboot)
//!                         ↘ Cleaning (on any failure)
//! ```
//!
//! The two verification states are where UpKit departs from mcumgr/LwM2M:
//! an invalid manifest stops the update **before** a single firmware byte
//! is transferred, and an invalid firmware stops it **before** the reboot —
//! the early-rejection property evaluated in the paper's security analysis.

use alloc::sync::Arc;
use alloc::vec::Vec;

use upkit_crypto::backend::SecurityBackend;
use upkit_flash::{LayoutError, MemoryLayout, SlotId};
use upkit_manifest::{DeviceToken, Manifest, SignedManifest, Version, SIGNED_MANIFEST_LEN};
use upkit_trace::{Counters, Event};

use crate::image::write_manifest;
use crate::keys::TrustAnchors;
use crate::pipeline::{Pipeline, PipelineError};
use crate::verifier::{FirmwareDigester, Verifier, VerifyContext, VerifyError};

/// The FSM states (Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgentState {
    /// Idle; no update session in progress.
    Waiting,
    /// Token issued; erasing the target slot.
    StartUpdate,
    /// Accumulating signed-manifest bytes.
    ReceiveManifest,
    /// Manifest complete; verification in progress.
    VerifyManifest,
    /// Accumulating payload bytes through the pipeline.
    ReceiveFirmware,
    /// Payload complete; firmware digest verification in progress.
    VerifyFirmware,
    /// Verified update stored; the device may reboot to apply it.
    ReadyToReboot,
    /// A failure occurred; session state must be cleaned before reuse.
    Cleaning,
}

impl AgentState {
    /// Stable lowercase name for trace output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Waiting => "waiting",
            Self::StartUpdate => "start_update",
            Self::ReceiveManifest => "receive_manifest",
            Self::VerifyManifest => "verify_manifest",
            Self::ReceiveFirmware => "receive_firmware",
            Self::VerifyFirmware => "verify_firmware",
            Self::ReadyToReboot => "ready_to_reboot",
            Self::Cleaning => "cleaning",
        }
    }
}

/// Device-constant agent configuration.
#[derive(Clone, Debug)]
pub struct AgentConfig {
    /// This device's unique 32-bit identifier.
    pub device_id: u32,
    /// Application/hardware identifier of the firmware this device runs.
    pub app_id: u32,
    /// Whether the differential pipeline stages are compiled in.
    pub supports_differential: bool,
    /// Content-confidentiality key. When set, every update payload is
    /// expected to be ChaCha20-encrypted under this key (the paper's
    /// future-work pipeline decryption stage); unencrypted payloads then
    /// fail the firmware digest check.
    pub content_key: Option<[u8; upkit_crypto::chacha20::KEY_LEN]>,
}

impl AgentConfig {
    /// Configuration without content confidentiality.
    #[must_use]
    pub fn new(device_id: u32, app_id: u32, supports_differential: bool) -> Self {
        Self {
            device_id,
            app_id,
            supports_differential,
            content_key: None,
        }
    }
}

/// Per-update slot plan: where the current image lives and where the new
/// one goes. Chosen by the device integration before each update (the
/// paper's *Start update* state erases "the memory slot containing the
/// oldest firmware").
#[derive(Clone, Debug)]
pub struct UpdatePlan {
    /// Slot that will receive the new image.
    pub target_slot: SlotId,
    /// Slot holding the currently-running image (differential base).
    pub current_slot: SlotId,
    /// Version of the currently-running image.
    pub installed_version: Version,
    /// Size in bytes of the currently-running firmware.
    pub installed_size: u32,
    /// Link offsets acceptable for the target slot.
    pub allowed_link_offsets: Vec<u32>,
    /// Maximum firmware size the target slot can hold.
    pub max_firmware_size: u32,
}

/// What [`UpdateAgent::push_data`] reports after consuming a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgentPhase {
    /// More data is needed.
    NeedMore,
    /// The manifest was just verified; firmware transfer may begin.
    ///
    /// In the push flow this is the moment the agent notifies the
    /// smartphone to start sending the firmware (steps 10–11 of Fig. 2).
    ManifestAccepted,
    /// The firmware was stored and verified; the device may reboot.
    Complete,
}

/// Errors produced by the agent FSM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AgentError {
    /// An operation was invalid in the current state.
    WrongState(AgentState),
    /// Manifest or firmware verification failed.
    Verify(VerifyError),
    /// The pipeline rejected the payload.
    Pipeline(PipelineError),
    /// A flash/layout operation failed.
    Layout(LayoutError),
    /// More payload bytes arrived than the manifest declared.
    TooMuchData,
}

impl core::fmt::Display for AgentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WrongState(s) => write!(f, "operation invalid in agent state {s:?}"),
            Self::Verify(e) => write!(f, "verification failed: {e}"),
            Self::Pipeline(e) => write!(f, "pipeline error: {e}"),
            Self::Layout(e) => write!(f, "flash layout error: {e}"),
            Self::TooMuchData => f.write_str("payload exceeded the declared size"),
        }
    }
}

impl core::error::Error for AgentError {}

impl From<VerifyError> for AgentError {
    fn from(e: VerifyError) -> Self {
        Self::Verify(e)
    }
}

impl From<PipelineError> for AgentError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<LayoutError> for AgentError {
    fn from(e: LayoutError) -> Self {
        Self::Layout(e)
    }
}

#[derive(Debug)]
struct Session {
    plan: UpdatePlan,
    nonce: u32,
    manifest_buf: Vec<u8>,
    accepted: Option<SignedManifest>,
    pipeline: Option<Pipeline>,
    payload_received: u64,
}

impl Session {
    /// The manifest accepted by `verify_manifest`. Its absence in a
    /// firmware-phase state is an internal invariant violation, so debug
    /// builds assert while release builds degrade to a typed error.
    fn accepted_manifest(&self, state: AgentState) -> Result<Manifest, AgentError> {
        match self.accepted.as_ref() {
            Some(signed) => Ok(signed.manifest),
            None => {
                debug_assert!(false, "agent state {state:?} requires an accepted manifest");
                Err(AgentError::WrongState(state))
            }
        }
    }

    /// The pipeline constructed alongside the accepted manifest; same
    /// invariant policy as [`Session::accepted_manifest`].
    fn pipeline_mut(&mut self, state: AgentState) -> Result<&mut Pipeline, AgentError> {
        match self.pipeline.as_mut() {
            Some(pipeline) => Ok(pipeline),
            None => {
                debug_assert!(false, "agent state {state:?} requires a pipeline");
                Err(AgentError::WrongState(state))
            }
        }
    }
}

/// A session must exist in every non-idle state; if it does not, the
/// FSM was corrupted — assert in debug builds, return a typed error in
/// release builds instead of panicking on externally triggered paths.
fn active_session(
    state: AgentState,
    session: Option<&mut Session>,
) -> Result<&mut Session, AgentError> {
    match session {
        Some(session) => Ok(session),
        None => {
            debug_assert!(false, "agent state {state:?} requires an active session");
            Err(AgentError::WrongState(state))
        }
    }
}

/// The update agent.
pub struct UpdateAgent {
    backend: Arc<dyn SecurityBackend>,
    anchors: TrustAnchors,
    config: AgentConfig,
    state: AgentState,
    session: Option<Session>,
}

impl core::fmt::Debug for UpdateAgent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("UpdateAgent")
            .field("state", &self.state)
            .field("device_id", &self.config.device_id)
            .finish_non_exhaustive()
    }
}

impl UpdateAgent {
    /// Creates an idle agent.
    #[must_use]
    pub fn new(
        backend: Arc<dyn SecurityBackend>,
        anchors: TrustAnchors,
        config: AgentConfig,
    ) -> Self {
        Self {
            backend,
            anchors,
            config,
            state: AgentState::Waiting,
            session: None,
        }
    }

    /// Current FSM state.
    #[must_use]
    pub fn state(&self) -> AgentState {
        self.state
    }

    /// Moves the FSM and emits the transition on the layout's tracer —
    /// the agent observes through whatever tracer its flash is wired to,
    /// so one `MemoryLayout::set_tracer` call captures both layers.
    fn transition(&mut self, layout: &MemoryLayout, to: AgentState) {
        let from = self.state;
        self.state = to;
        if from != to {
            let device = u64::from(self.config.device_id);
            layout.tracer().emit(|| Event::AgentTransition {
                device,
                from: from.name(),
                to: to.name(),
            });
        }
    }

    /// The manifest accepted in this session, once verified.
    #[must_use]
    pub fn accepted_manifest(&self) -> Option<&SignedManifest> {
        self.session.as_ref().and_then(|s| s.accepted.as_ref())
    }

    /// *Waiting → StartUpdate → ReceiveManifest*: issues a device token for
    /// a fresh update request and erases the target slot.
    ///
    /// `nonce` must be freshly generated per request (the device
    /// integration typically draws it from its RNG); the agent remembers it
    /// to enforce freshness during manifest verification.
    pub fn request_device_token(
        &mut self,
        layout: &mut MemoryLayout,
        plan: UpdatePlan,
        nonce: u32,
    ) -> Result<DeviceToken, AgentError> {
        if self.state != AgentState::Waiting {
            return Err(AgentError::WrongState(self.state));
        }
        self.transition(layout, AgentState::StartUpdate);
        if let Err(e) = layout.erase_slot(plan.target_slot) {
            // Stay recoverable: a failed erase returns the FSM to idle
            // instead of stranding it in StartUpdate.
            self.transition(layout, AgentState::Waiting);
            return Err(e.into());
        }
        let token = DeviceToken {
            device_id: self.config.device_id,
            nonce,
            current_version: if self.config.supports_differential {
                plan.installed_version
            } else {
                Version(0)
            },
        };
        self.session = Some(Session {
            plan,
            nonce,
            manifest_buf: Vec::with_capacity(SIGNED_MANIFEST_LEN),
            accepted: None,
            pipeline: None,
            payload_received: 0,
        });
        self.transition(layout, AgentState::ReceiveManifest);
        Ok(token)
    }

    /// Feeds received bytes (manifest first, then payload — a single chunk
    /// may span the boundary). On any error the FSM drops to
    /// [`AgentState::Cleaning`]; call [`UpdateAgent::reset`] to recover.
    pub fn push_data(
        &mut self,
        layout: &mut MemoryLayout,
        chunk: &[u8],
    ) -> Result<AgentPhase, AgentError> {
        match self.push_data_inner(layout, chunk) {
            Ok(phase) => Ok(phase),
            Err(e) => {
                // Every typed rejection is ledgered: the security tests pin
                // this counter against the forgery counter staying zero.
                Counters::add(&layout.tracer().counters().packages_rejected, 1);
                self.transition(layout, AgentState::Cleaning);
                Err(e)
            }
        }
    }

    fn push_data_inner(
        &mut self,
        layout: &mut MemoryLayout,
        mut chunk: &[u8],
    ) -> Result<AgentPhase, AgentError> {
        let mut phase = AgentPhase::NeedMore;
        while !chunk.is_empty() {
            let state = self.state;
            match state {
                AgentState::ReceiveManifest => {
                    let session = active_session(state, self.session.as_mut())?;
                    let need = SIGNED_MANIFEST_LEN - session.manifest_buf.len();
                    let take = need.min(chunk.len());
                    session.manifest_buf.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    if session.manifest_buf.len() == SIGNED_MANIFEST_LEN {
                        self.transition(layout, AgentState::VerifyManifest);
                        self.verify_manifest(layout)?;
                        phase = AgentPhase::ManifestAccepted;
                        self.transition(layout, AgentState::ReceiveFirmware);
                    }
                }
                AgentState::ReceiveFirmware => {
                    let session = active_session(state, self.session.as_mut())?;
                    let manifest = session.accepted_manifest(state)?;
                    let remaining = u64::from(manifest.payload_size) - session.payload_received;
                    if remaining == 0 {
                        return Err(AgentError::TooMuchData);
                    }
                    let take = (remaining as usize).min(chunk.len());
                    session.pipeline_mut(state)?.push(layout, &chunk[..take])?;
                    Counters::add(&layout.tracer().counters().pipeline_bytes_in, take as u64);
                    session.payload_received += take as u64;
                    chunk = &chunk[take..];
                    if session.payload_received == u64::from(manifest.payload_size) {
                        if !chunk.is_empty() {
                            return Err(AgentError::TooMuchData);
                        }
                        self.transition(layout, AgentState::VerifyFirmware);
                        self.verify_firmware(layout)?;
                        self.transition(layout, AgentState::ReadyToReboot);
                        phase = AgentPhase::Complete;
                    }
                }
                state => return Err(AgentError::WrongState(state)),
            }
        }
        Ok(phase)
    }

    /// *VerifyManifest*: double-signature + field validation, then pipeline
    /// construction and manifest persistence.
    fn verify_manifest(&mut self, layout: &mut MemoryLayout) -> Result<(), AgentError> {
        let session = active_session(self.state, self.session.as_mut())?;
        let signed = SignedManifest::from_bytes(&session.manifest_buf)
            .map_err(|_| AgentError::Verify(VerifyError::VendorSignature))?;

        let ctx = VerifyContext {
            device_id: self.config.device_id,
            expected_nonce: Some(session.nonce),
            installed_version: session.plan.installed_version,
            supports_differential: self.config.supports_differential,
            app_id: self.config.app_id,
            allowed_link_offsets: session.plan.allowed_link_offsets.clone(),
            max_size: session.plan.max_firmware_size,
        };
        let verified =
            Verifier::new(self.backend.as_ref(), &self.anchors).verify_manifest(&signed, &ctx);
        // Each manifest carries two signatures (vendor + update server).
        Counters::add(&layout.tracer().counters().sig_verifications, 2);
        let device = u64::from(self.config.device_id);
        let ok = verified.is_ok();
        layout
            .tracer()
            .emit(|| Event::SignatureChecked { device, ok });
        verified?;

        let manifest = signed.manifest;
        let mut pipeline = if manifest.is_differential() {
            Pipeline::new_differential(
                layout,
                session.plan.target_slot,
                session.plan.current_slot,
                session.plan.installed_size,
                manifest.size,
            )?
        } else {
            Pipeline::new_full(layout, session.plan.target_slot, manifest.size)?
        };

        if let Some(key) = &self.config.content_key {
            let nonce =
                crate::keys::content_nonce(manifest.device_id, manifest.nonce, manifest.version);
            pipeline.enable_decryption(upkit_crypto::chacha20::ChaCha20::new(key, &nonce));
        }

        // Persist the manifest so the bootloader can re-verify after reboot.
        write_manifest(layout, session.plan.target_slot, &signed)?;

        session.accepted = Some(signed);
        session.pipeline = Some(pipeline);
        Ok(())
    }

    /// *VerifyFirmware*: flush the pipeline and compare the stored
    /// firmware's digest with the manifest's.
    fn verify_firmware(&mut self, layout: &mut MemoryLayout) -> Result<(), AgentError> {
        let state = self.state;
        let session = active_session(state, self.session.as_mut())?;
        let manifest = session.accepted_manifest(state)?;
        let produced = session.pipeline_mut(state)?.finish(layout)?;
        let bytes_in = session.payload_received;
        Counters::add(&layout.tracer().counters().pipeline_bytes_out, produced);
        layout.tracer().emit(|| Event::PipelineFinished {
            bytes_in,
            bytes_out: produced,
        });

        // Read the firmware back from flash: what is verified is what will
        // boot, not what happened to pass through RAM.
        let mut digester = FirmwareDigester::new();
        crate::image::read_firmware_chunks(
            layout,
            session.plan.target_slot,
            manifest.size,
            4096,
            |chunk| digester.update(chunk),
        )?;
        let computed = digester.finalize();
        Verifier::new(self.backend.as_ref(), &self.anchors)
            .verify_firmware_digest(&manifest, &computed)?;
        Ok(())
    }

    /// *Cleaning → Waiting*: invalidates the target slot (erasing its
    /// header so the bootloader can never pick up a half-written image) and
    /// reinitializes the FSM. Also usable from `ReadyToReboot` after the
    /// device integration has acted on the update.
    pub fn reset(&mut self, layout: &mut MemoryLayout) -> Result<(), AgentError> {
        if let Some(session) = self.session.take() {
            if self.state == AgentState::Cleaning {
                // Invalidate: erase the first sector (the manifest header).
                layout.erase_slot_sector(session.plan.target_slot, 0)?;
            }
        }
        self.transition(layout, AgentState::Waiting);
        Ok(())
    }

    /// Wire payload bytes received so far in this session.
    #[must_use]
    pub fn payload_received(&self) -> u64 {
        self.session.as_ref().map_or(0, |s| s.payload_received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_crypto::backend::TinyCryptBackend;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_crypto::sha256::sha256;
    use upkit_flash::{configuration_a, standard, FlashGeometry, SimFlash};
    use upkit_manifest::{server_sign, vendor_sign, Manifest, UpdateImage};

    const SLOT_SIZE: u32 = 4096 * 16;
    const LINK_OFFSET: u32 = 0x1000;
    const APP_ID: u32 = 0xAB01;
    const DEVICE_ID: u32 = 0x11223344;

    struct Fixture {
        vendor: SigningKey,
        server: SigningKey,
        layout: MemoryLayout,
        agent: UpdateAgent,
    }

    use crate::image::FIRMWARE_OFFSET;
    use upkit_flash::MemoryLayout;

    fn fixture(seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let layout = configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 64,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            SLOT_SIZE,
        )
        .unwrap();
        let agent = UpdateAgent::new(
            Arc::new(TinyCryptBackend),
            TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key()),
            AgentConfig {
                device_id: DEVICE_ID,
                app_id: APP_ID,
                supports_differential: true,
                content_key: None,
            },
        );
        Fixture {
            vendor,
            server,
            layout,
            agent,
        }
    }

    fn plan() -> UpdatePlan {
        UpdatePlan {
            target_slot: standard::SLOT_B,
            current_slot: standard::SLOT_A,
            installed_version: Version(1),
            installed_size: 0,
            allowed_link_offsets: vec![LINK_OFFSET],
            max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
        }
    }

    fn make_image(
        fix: &Fixture,
        token: &DeviceToken,
        firmware: &[u8],
        version: Version,
    ) -> UpdateImage {
        let manifest = Manifest {
            device_id: token.device_id,
            nonce: token.nonce,
            old_version: Version(0),
            version,
            size: firmware.len() as u32,
            payload_size: firmware.len() as u32,
            digest: sha256(firmware),
            link_offset: LINK_OFFSET,
            app_id: APP_ID,
        };
        UpdateImage {
            signed_manifest: upkit_manifest::SignedManifest {
                manifest,
                vendor_signature: vendor_sign(&manifest, &fix.vendor),
                server_signature: server_sign(&manifest, &fix.server),
            },
            payload: firmware.to_vec(),
        }
    }

    fn firmware(seed: u32, len: usize) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn full_update_happy_path() {
        let mut fix = fixture(90);
        assert_eq!(fix.agent.state(), AgentState::Waiting);
        let token = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 555)
            .unwrap();
        assert_eq!(token.device_id, DEVICE_ID);
        assert_eq!(token.nonce, 555);
        assert_eq!(fix.agent.state(), AgentState::ReceiveManifest);

        let fw = firmware(1, 10_000);
        let image = make_image(&fix, &token, &fw, Version(2));
        let wire = image.to_bytes();

        let mut saw_manifest_accept = false;
        let mut final_phase = AgentPhase::NeedMore;
        for chunk in wire.chunks(333) {
            final_phase = fix.agent.push_data(&mut fix.layout, chunk).unwrap();
            if final_phase == AgentPhase::ManifestAccepted {
                saw_manifest_accept = true;
            }
        }
        assert!(saw_manifest_accept || final_phase == AgentPhase::Complete);
        assert_eq!(final_phase, AgentPhase::Complete);
        assert_eq!(fix.agent.state(), AgentState::ReadyToReboot);

        // Firmware landed in the target slot.
        let mut stored = vec![0u8; fw.len()];
        fix.layout
            .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut stored)
            .unwrap();
        assert_eq!(stored, fw);
        // Manifest landed in the header.
        let header = crate::image::read_manifest(&fix.layout, standard::SLOT_B)
            .unwrap()
            .unwrap();
        assert_eq!(header, image.signed_manifest);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let mut fix = fixture(91);
        let token = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 7)
            .unwrap();
        let fw = firmware(2, 2_000);
        let wire = make_image(&fix, &token, &fw, Version(2)).to_bytes();
        let mut last = AgentPhase::NeedMore;
        for byte in &wire {
            last = fix
                .agent
                .push_data(&mut fix.layout, core::slice::from_ref(byte))
                .unwrap();
        }
        assert_eq!(last, AgentPhase::Complete);
    }

    #[test]
    fn wrong_nonce_rejected_before_firmware_transfer() {
        let mut fix = fixture(92);
        let token = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 1234)
            .unwrap();
        let fw = firmware(3, 5_000);
        let stale_token = DeviceToken {
            nonce: 999,
            ..token
        };
        let image = make_image(&fix, &stale_token, &fw, Version(2));
        let err = fix
            .agent
            .push_data(&mut fix.layout, &image.signed_manifest.to_bytes())
            .unwrap_err();
        assert!(matches!(err, AgentError::Verify(VerifyError::WrongNonce)));
        assert_eq!(fix.agent.state(), AgentState::Cleaning);
        // Zero firmware bytes were accepted: early rejection.
        assert_eq!(fix.agent.payload_received(), 0);
    }

    #[test]
    fn downgrade_rejected() {
        let mut fix = fixture(93);
        let token = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 1)
            .unwrap();
        let fw = firmware(4, 1_000);
        let image = make_image(&fix, &token, &fw, Version(1)); // == installed
        let err = fix
            .agent
            .push_data(&mut fix.layout, &image.signed_manifest.to_bytes())
            .unwrap_err();
        assert!(matches!(err, AgentError::Verify(VerifyError::StaleVersion)));
    }

    #[test]
    fn tampered_firmware_rejected_before_reboot() {
        let mut fix = fixture(94);
        let token = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 2)
            .unwrap();
        let fw = firmware(5, 8_000);
        let image = make_image(&fix, &token, &fw, Version(2));
        let mut wire = image.to_bytes();
        let len = wire.len();
        wire[len - 100] ^= 0xFF; // corrupt firmware tail in transit
        let mut result = Ok(AgentPhase::NeedMore);
        for chunk in wire.chunks(500) {
            result = fix.agent.push_data(&mut fix.layout, chunk);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(
            result,
            Err(AgentError::Verify(VerifyError::DigestMismatch))
        ));
        assert_eq!(fix.agent.state(), AgentState::Cleaning);
    }

    #[test]
    fn cleaning_invalidates_slot_and_recovers() {
        let mut fix = fixture(95);
        let token = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 3)
            .unwrap();
        let fw = firmware(6, 3_000);
        let image = make_image(&fix, &token, &fw, Version(2));
        let mut wire = image.to_bytes();
        let len = wire.len();
        wire[len - 1] ^= 1;
        for chunk in wire.chunks(512) {
            let _ = fix.agent.push_data(&mut fix.layout, chunk);
        }
        assert_eq!(fix.agent.state(), AgentState::Cleaning);
        fix.agent.reset(&mut fix.layout).unwrap();
        assert_eq!(fix.agent.state(), AgentState::Waiting);
        // Slot header erased: no image visible to the bootloader.
        assert_eq!(
            crate::image::read_manifest(&fix.layout, standard::SLOT_B).unwrap(),
            None
        );
        // A subsequent update succeeds.
        let token = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 4)
            .unwrap();
        let image = make_image(&fix, &token, &fw, Version(2));
        let mut last = AgentPhase::NeedMore;
        for chunk in image.to_bytes().chunks(512) {
            last = fix.agent.push_data(&mut fix.layout, chunk).unwrap();
        }
        assert_eq!(last, AgentPhase::Complete);
    }

    #[test]
    fn data_in_waiting_state_is_rejected() {
        let mut fix = fixture(96);
        let err = fix
            .agent
            .push_data(&mut fix.layout, &[0u8; 10])
            .unwrap_err();
        assert!(matches!(err, AgentError::WrongState(AgentState::Waiting)));
    }

    #[test]
    fn second_token_request_mid_session_rejected() {
        let mut fix = fixture(97);
        fix.agent
            .request_device_token(&mut fix.layout, plan(), 5)
            .unwrap();
        let err = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 6)
            .unwrap_err();
        assert!(matches!(
            err,
            AgentError::WrongState(AgentState::ReceiveManifest)
        ));
    }

    #[test]
    fn excess_payload_rejected() {
        let mut fix = fixture(98);
        let token = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 8)
            .unwrap();
        let fw = firmware(7, 1_000);
        let image = make_image(&fix, &token, &fw, Version(2));
        let mut wire = image.to_bytes();
        wire.extend_from_slice(&[0xEE; 4]); // trailing garbage
        let mut result = Ok(AgentPhase::NeedMore);
        for chunk in wire.chunks(256) {
            result = fix.agent.push_data(&mut fix.layout, chunk);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(AgentError::TooMuchData)));
    }

    #[test]
    fn token_reports_differential_support() {
        let mut fix = fixture(99);
        let token = fix
            .agent
            .request_device_token(&mut fix.layout, plan(), 9)
            .unwrap();
        assert_eq!(token.current_version, Version(1));
        assert!(token.supports_differential());

        // A non-differential agent advertises version 0.
        let mut fix2 = fixture(100);
        fix2.agent.config.supports_differential = false;
        let token2 = fix2
            .agent
            .request_device_token(&mut fix2.layout, plan(), 10)
            .unwrap();
        assert_eq!(token2.current_version, Version(0));
        assert!(!token2.supports_differential());
    }
}
