//! The verifier module shared by update agent and bootloader.
//!
//! UpKit's double-verification design (Sect. IV-D) runs the *same* verifier
//! in two places: the update agent checks a manifest the moment it arrives
//! (early rejection, before any firmware bytes are transferred) and again
//! after the firmware lands in flash; the bootloader re-checks everything
//! after reboot, because the agent's checks cannot rule out a power cut or
//! partial write between verification and boot. Sharing one module — and
//! one crypto library — between the two is what keeps UpKit's footprint
//! below mcuboot-style stacks.

use alloc::vec::Vec;

use upkit_crypto::backend::{SecurityBackend, SecurityError};
use upkit_crypto::sha256::Sha256;
use upkit_manifest::{Manifest, SignedManifest, Version};

use crate::keys::TrustAnchors;

/// Everything the verifier must know about the device and request to judge
/// a manifest.
#[derive(Clone, Debug)]
pub struct VerifyContext {
    /// This device's unique identifier.
    pub device_id: u32,
    /// The nonce issued in the device token, when verifying inside the
    /// update agent. The bootloader passes `None`: after a reboot the
    /// request context is gone, and freshness was already enforced by the
    /// agent (the paper's bootloader checks field validity, signatures, and
    /// digest).
    pub expected_nonce: Option<u32>,
    /// Version currently installed (new image must be strictly newer).
    pub installed_version: Version,
    /// Whether this device supports differential updates.
    pub supports_differential: bool,
    /// The application/hardware identifier this device runs.
    pub app_id: u32,
    /// Link offsets acceptable for the slot the image targets.
    pub allowed_link_offsets: Vec<u32>,
    /// Maximum firmware size that fits the target slot.
    pub max_size: u32,
}

/// Reasons a manifest or firmware image is rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// Manifest device ID differs from this device's.
    WrongDevice,
    /// Manifest nonce differs from the issued device token's.
    WrongNonce,
    /// Manifest version is not strictly newer than the installed one.
    StaleVersion,
    /// Differential update whose base is not the installed version.
    WrongOldVersion,
    /// Differential update offered to a device that cannot apply one.
    DifferentialUnsupported,
    /// Firmware size is zero or exceeds the slot capacity.
    BadSize,
    /// Payload size is inconsistent with the update type.
    BadPayloadSize,
    /// Application/hardware identifier mismatch.
    WrongAppId,
    /// Link offset not valid for the target slot.
    WrongLinkOffset,
    /// The vendor signature failed.
    VendorSignature,
    /// The update-server signature failed (freshness violation).
    ServerSignature,
    /// The firmware digest does not match the manifest.
    DigestMismatch,
    /// The security backend failed (bad key reference, locked HSM, …).
    Backend(SecurityError),
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WrongDevice => f.write_str("manifest targets a different device"),
            Self::WrongNonce => f.write_str("manifest nonce does not match the device token"),
            Self::StaleVersion => f.write_str("manifest version is not newer than installed"),
            Self::WrongOldVersion => f.write_str("differential base is not the installed version"),
            Self::DifferentialUnsupported => {
                f.write_str("differential update offered to non-supporting device")
            }
            Self::BadSize => f.write_str("firmware size invalid for the target slot"),
            Self::BadPayloadSize => f.write_str("payload size inconsistent with update type"),
            Self::WrongAppId => f.write_str("application/hardware identifier mismatch"),
            Self::WrongLinkOffset => f.write_str("link offset invalid for the target slot"),
            Self::VendorSignature => f.write_str("vendor signature verification failed"),
            Self::ServerSignature => f.write_str("update-server signature verification failed"),
            Self::DigestMismatch => f.write_str("firmware digest mismatch"),
            Self::Backend(e) => write!(f, "security backend error: {e}"),
        }
    }
}

impl core::error::Error for VerifyError {}

impl From<SecurityError> for VerifyError {
    fn from(e: SecurityError) -> Self {
        match e {
            SecurityError::BadSignature => Self::VendorSignature,
            other => Self::Backend(other),
        }
    }
}

/// The verifier: field validation plus double-signature checking.
pub struct Verifier<'a> {
    backend: &'a dyn SecurityBackend,
    anchors: &'a TrustAnchors,
}

impl core::fmt::Debug for Verifier<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Verifier")
            .field("backend", &self.backend.profile().name)
            .finish_non_exhaustive()
    }
}

impl<'a> Verifier<'a> {
    /// Creates a verifier over the given backend and trust anchors.
    #[must_use]
    pub fn new(backend: &'a dyn SecurityBackend, anchors: &'a TrustAnchors) -> Self {
        Self { backend, anchors }
    }

    /// Full manifest verification: field checks first (cheap), signatures
    /// second (expensive) — the order that lets invalid manifests be
    /// dropped with minimal energy cost.
    pub fn verify_manifest(
        &self,
        signed: &SignedManifest,
        ctx: &VerifyContext,
    ) -> Result<(), VerifyError> {
        self.check_fields(&signed.manifest, ctx)?;
        self.check_signatures(signed)
    }

    /// The pure field checks (no cryptography).
    pub fn check_fields(&self, m: &Manifest, ctx: &VerifyContext) -> Result<(), VerifyError> {
        if m.device_id != ctx.device_id {
            return Err(VerifyError::WrongDevice);
        }
        if let Some(nonce) = ctx.expected_nonce {
            if m.nonce != nonce {
                return Err(VerifyError::WrongNonce);
            }
        }
        if m.version <= ctx.installed_version {
            return Err(VerifyError::StaleVersion);
        }
        if m.is_differential() {
            if !ctx.supports_differential {
                return Err(VerifyError::DifferentialUnsupported);
            }
            if m.old_version != ctx.installed_version {
                return Err(VerifyError::WrongOldVersion);
            }
        } else if m.payload_size != m.size {
            return Err(VerifyError::BadPayloadSize);
        }
        if m.size == 0 || m.size > ctx.max_size {
            return Err(VerifyError::BadSize);
        }
        if m.payload_size == 0 {
            return Err(VerifyError::BadPayloadSize);
        }
        if m.app_id != ctx.app_id {
            return Err(VerifyError::WrongAppId);
        }
        if !ctx.allowed_link_offsets.contains(&m.link_offset) {
            return Err(VerifyError::WrongLinkOffset);
        }
        Ok(())
    }

    /// The double-signature check: vendor over the manifest core, update
    /// server over the full manifest.
    pub fn check_signatures(&self, signed: &SignedManifest) -> Result<(), VerifyError> {
        let vendor_digest = self.backend.digest(&signed.manifest.vendor_signed_bytes());
        self.backend
            .verify(
                self.anchors.vendor.key_ref(),
                &vendor_digest,
                &signed.vendor_signature,
            )
            .map_err(|e| match e {
                SecurityError::BadSignature => VerifyError::VendorSignature,
                other => VerifyError::Backend(other),
            })?;

        let server_digest = self.backend.digest(&signed.manifest.server_signed_bytes());
        self.backend
            .verify(
                self.anchors.server.key_ref(),
                &server_digest,
                &signed.server_signature,
            )
            .map_err(|e| match e {
                SecurityError::BadSignature => VerifyError::ServerSignature,
                other => VerifyError::Backend(other),
            })
    }

    /// Compares a firmware digest computed elsewhere with the manifest's.
    pub fn verify_firmware_digest(
        &self,
        manifest: &Manifest,
        computed: &[u8; 32],
    ) -> Result<(), VerifyError> {
        if &manifest.digest == computed {
            Ok(())
        } else {
            Err(VerifyError::DigestMismatch)
        }
    }
}

/// Incrementally digests firmware read back from a slot in sector-sized
/// chunks (both agent and bootloader verify firmware this way).
#[derive(Debug, Default)]
pub struct FirmwareDigester {
    hasher: Sha256,
    fed: u64,
}

impl FirmwareDigester {
    /// Creates an empty digester.
    #[must_use]
    pub fn new() -> Self {
        Self {
            hasher: Sha256::new(),
            fed: 0,
        }
    }

    /// Absorbs the next chunk of firmware.
    pub fn update(&mut self, chunk: &[u8]) {
        self.hasher.update(chunk);
        self.fed += chunk.len() as u64;
    }

    /// Bytes absorbed so far.
    #[must_use]
    pub fn fed(&self) -> u64 {
        self.fed
    }

    /// Finalizes the digest.
    #[must_use]
    pub fn finalize(self) -> [u8; 32] {
        self.hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_crypto::backend::TinyCryptBackend;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_crypto::sha256::sha256;
    use upkit_manifest::{server_sign, vendor_sign};

    struct Fixture {
        vendor: SigningKey,
        server: SigningKey,
        anchors: TrustAnchors,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
        Fixture {
            vendor,
            server,
            anchors,
        }
    }

    fn manifest() -> Manifest {
        Manifest {
            device_id: 7,
            nonce: 1000,
            old_version: Version(0),
            version: Version(2),
            size: 4096,
            payload_size: 4096,
            digest: sha256(b"fw"),
            link_offset: 0x100,
            app_id: 0xA,
        }
    }

    fn ctx() -> VerifyContext {
        VerifyContext {
            device_id: 7,
            expected_nonce: Some(1000),
            installed_version: Version(1),
            supports_differential: true,
            app_id: 0xA,
            allowed_link_offsets: vec![0x100, 0x200],
            max_size: 100_000,
        }
    }

    fn signed(fix: &Fixture, m: Manifest) -> SignedManifest {
        SignedManifest {
            manifest: m,
            vendor_signature: vendor_sign(&m, &fix.vendor),
            server_signature: server_sign(&m, &fix.server),
        }
    }

    #[test]
    fn valid_manifest_passes() {
        let fix = fixture(70);
        let backend = TinyCryptBackend;
        let verifier = Verifier::new(&backend, &fix.anchors);
        verifier
            .verify_manifest(&signed(&fix, manifest()), &ctx())
            .unwrap();
    }

    #[test]
    fn field_checks_reject_each_violation() {
        let fix = fixture(71);
        let backend = TinyCryptBackend;
        let verifier = Verifier::new(&backend, &fix.anchors);
        let base = manifest();
        let cases: Vec<(Manifest, VerifyError)> = vec![
            (
                Manifest {
                    device_id: 8,
                    ..base
                },
                VerifyError::WrongDevice,
            ),
            (Manifest { nonce: 1, ..base }, VerifyError::WrongNonce),
            (
                Manifest {
                    version: Version(1),
                    ..base
                },
                VerifyError::StaleVersion,
            ),
            (
                Manifest {
                    version: Version(0),
                    ..base
                },
                VerifyError::StaleVersion,
            ),
            (
                Manifest {
                    old_version: Version(2),
                    version: Version(3),
                    ..base
                },
                VerifyError::WrongOldVersion,
            ),
            (
                Manifest {
                    size: 0,
                    payload_size: 0,
                    ..base
                },
                VerifyError::BadSize,
            ),
            (
                Manifest {
                    size: 200_000,
                    payload_size: 200_000,
                    ..base
                },
                VerifyError::BadSize,
            ),
            (
                Manifest {
                    payload_size: 100,
                    ..base
                },
                VerifyError::BadPayloadSize,
            ),
            (
                Manifest {
                    app_id: 0xB,
                    ..base
                },
                VerifyError::WrongAppId,
            ),
            (
                Manifest {
                    link_offset: 0x300,
                    ..base
                },
                VerifyError::WrongLinkOffset,
            ),
        ];
        for (m, expected) in cases {
            assert_eq!(
                verifier.check_fields(&m, &ctx()),
                Err(expected),
                "manifest {m:?}"
            );
        }
    }

    #[test]
    fn differential_rejected_when_unsupported() {
        let fix = fixture(72);
        let backend = TinyCryptBackend;
        let verifier = Verifier::new(&backend, &fix.anchors);
        let m = Manifest {
            old_version: Version(1),
            payload_size: 100,
            ..manifest()
        };
        let mut context = ctx();
        context.supports_differential = false;
        assert_eq!(
            verifier.check_fields(&m, &context),
            Err(VerifyError::DifferentialUnsupported)
        );
        // Supported: same manifest passes field checks.
        context.supports_differential = true;
        verifier.check_fields(&m, &context).unwrap();
    }

    #[test]
    fn bootloader_context_skips_nonce() {
        let fix = fixture(73);
        let backend = TinyCryptBackend;
        let verifier = Verifier::new(&backend, &fix.anchors);
        let mut context = ctx();
        context.expected_nonce = None;
        let m = Manifest {
            nonce: 999_999,
            ..manifest()
        };
        verifier
            .verify_manifest(&signed(&fix, m), &context)
            .unwrap();
    }

    #[test]
    fn forged_vendor_signature_rejected() {
        let fix = fixture(74);
        let attacker = SigningKey::generate(&mut StdRng::seed_from_u64(999));
        let backend = TinyCryptBackend;
        let verifier = Verifier::new(&backend, &fix.anchors);
        let m = manifest();
        let forged = SignedManifest {
            manifest: m,
            vendor_signature: vendor_sign(&m, &attacker),
            server_signature: server_sign(&m, &fix.server),
        };
        assert_eq!(
            verifier.verify_manifest(&forged, &ctx()),
            Err(VerifyError::VendorSignature)
        );
    }

    #[test]
    fn forged_server_signature_rejected() {
        let fix = fixture(75);
        let attacker = SigningKey::generate(&mut StdRng::seed_from_u64(998));
        let backend = TinyCryptBackend;
        let verifier = Verifier::new(&backend, &fix.anchors);
        let m = manifest();
        let forged = SignedManifest {
            manifest: m,
            vendor_signature: vendor_sign(&m, &fix.vendor),
            server_signature: server_sign(&m, &attacker),
        };
        assert_eq!(
            verifier.verify_manifest(&forged, &ctx()),
            Err(VerifyError::ServerSignature)
        );
    }

    #[test]
    fn replayed_manifest_with_old_nonce_rejected() {
        // The replay scenario the double signature exists to stop: an
        // attacker re-sends a previously valid signed manifest; the nonce
        // no longer matches the fresh device token.
        let fix = fixture(76);
        let backend = TinyCryptBackend;
        let verifier = Verifier::new(&backend, &fix.anchors);
        let replayed = signed(&fix, manifest()); // nonce 1000
        let mut fresh_ctx = ctx();
        fresh_ctx.expected_nonce = Some(2000);
        assert_eq!(
            verifier.verify_manifest(&replayed, &fresh_ctx),
            Err(VerifyError::WrongNonce)
        );
    }

    #[test]
    fn firmware_digest_comparison() {
        let fix = fixture(77);
        let backend = TinyCryptBackend;
        let verifier = Verifier::new(&backend, &fix.anchors);
        let m = manifest();
        verifier.verify_firmware_digest(&m, &sha256(b"fw")).unwrap();
        assert_eq!(
            verifier.verify_firmware_digest(&m, &sha256(b"tampered")),
            Err(VerifyError::DigestMismatch)
        );
    }

    #[test]
    fn digester_matches_one_shot() {
        let data = vec![7u8; 10_000];
        let mut digester = FirmwareDigester::new();
        for chunk in data.chunks(4096) {
            digester.update(chunk);
        }
        assert_eq!(digester.fed(), 10_000);
        assert_eq!(digester.finalize(), sha256(&data));
    }
}
