//! Freshness-policy comparison: the timestamp alternative the paper
//! considered and rejected (Sect. III-B) versus UpKit's device-token
//! double signature.
//!
//! > "We have also considered other approaches, such as the inclusion of a
//! > timestamp in the manifest indicating the expiration time of the update
//! > image. However, we excluded this approach, as it requires a reliable
//! > time source on each IoT device … Furthermore, the use of timestamps
//! > does not permit to block the installation of an update until the
//! > timestamp expires."
//!
//! This module makes that argument executable: both policies are
//! implemented against the same inputs, and the test suite demonstrates
//! the two attacks the paper names — **clock manipulation** (NTP-style
//! attacks faking the device's time source) and the **un-expired stale
//! update** (a superseded image that remains installable until its
//! timestamp runs out). The token policy is immune to both by
//! construction: it needs no clock, and every response is bound to the
//! *current* request.

use upkit_manifest::Version;

/// A device's view of wall-clock time — the "reliable time source" the
/// timestamp policy requires. `trusted` models whether the source actually
/// is reliable; NTP-fed clocks are not (the paper cites the NTP attacks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceClock {
    /// Seconds since epoch as the device believes them.
    pub now: u64,
}

impl DeviceClock {
    /// A clock reporting `now`.
    #[must_use]
    pub fn at(now: u64) -> Self {
        Self { now }
    }

    /// An attacker-influenced clock: NTP manipulation can move a device's
    /// time arbitrarily backward or forward.
    #[must_use]
    pub fn skewed(self, delta_seconds: i64) -> Self {
        Self {
            now: self.now.saturating_add_signed(delta_seconds),
        }
    }
}

/// The metadata a timestamp-freshness manifest carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimestampedClaim {
    /// Version of the image.
    pub version: Version,
    /// Image is installable until this time (seconds since epoch).
    pub expires_at: u64,
}

/// Verdict of a freshness policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FreshnessVerdict {
    /// The image may be installed.
    Fresh,
    /// The image must be rejected as stale.
    Stale,
}

/// The timestamp policy: accept while the device clock is before the
/// expiry. (Signature validity over the claim is assumed; the attacks
/// below work *despite* valid signatures.)
#[must_use]
pub fn timestamp_policy(claim: &TimestampedClaim, clock: DeviceClock) -> FreshnessVerdict {
    if clock.now < claim.expires_at {
        FreshnessVerdict::Fresh
    } else {
        FreshnessVerdict::Stale
    }
}

/// UpKit's token policy: accept only a response bound to the nonce of the
/// *current* request (plus the strictly-newer version rule enforced by the
/// verifier). No clock is involved.
#[must_use]
pub fn token_policy(
    response_nonce: u32,
    current_request_nonce: u32,
    response_version: Version,
    installed_version: Version,
) -> FreshnessVerdict {
    if response_nonce == current_request_nonce && response_version > installed_version {
        FreshnessVerdict::Fresh
    } else {
        FreshnessVerdict::Stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: u64 = 3600;

    #[test]
    fn timestamp_policy_works_with_honest_clock() {
        let claim = TimestampedClaim {
            version: Version(2),
            expires_at: 1_000 * HOUR,
        };
        assert_eq!(
            timestamp_policy(&claim, DeviceClock::at(999 * HOUR)),
            FreshnessVerdict::Fresh
        );
        assert_eq!(
            timestamp_policy(&claim, DeviceClock::at(1_001 * HOUR)),
            FreshnessVerdict::Stale
        );
    }

    #[test]
    fn attack_1_clock_rollback_resurrects_expired_image() {
        // The NTP attack the paper cites: fake the time source backward
        // and an expired (vulnerable) image becomes installable again.
        let expired = TimestampedClaim {
            version: Version(2),
            expires_at: 1_000 * HOUR,
        };
        let honest = DeviceClock::at(2_000 * HOUR);
        assert_eq!(timestamp_policy(&expired, honest), FreshnessVerdict::Stale);
        let attacked = honest.skewed(-(1_500 * HOUR as i64));
        assert_eq!(
            timestamp_policy(&expired, attacked),
            FreshnessVerdict::Fresh,
            "clock rollback defeated the timestamp policy"
        );
    }

    #[test]
    fn attack_2_unexpired_stale_update_remains_installable() {
        // "The use of timestamps does not permit to block the installation
        // of an update until the timestamp expires": v2 has a known
        // vulnerability and v3 is out, but v2's claim is still unexpired —
        // the timestamp policy has no way to retire it early.
        let superseded = TimestampedClaim {
            version: Version(2),
            expires_at: 5_000 * HOUR, // far future
        };
        let clock = DeviceClock::at(1_000 * HOUR);
        assert_eq!(
            timestamp_policy(&superseded, clock),
            FreshnessVerdict::Fresh,
            "the stale-but-unexpired image is accepted"
        );
    }

    #[test]
    fn token_policy_stops_both_attacks_without_a_clock() {
        // Attack 1 analogue: replaying an old response (old nonce).
        assert_eq!(
            token_policy(100, 200, Version(2), Version(1)),
            FreshnessVerdict::Stale,
            "replayed response rejected"
        );
        // Attack 2 analogue: serving a superseded version to a device that
        // already runs something newer or equal.
        assert_eq!(
            token_policy(200, 200, Version(2), Version(2)),
            FreshnessVerdict::Stale,
            "superseded version rejected"
        );
        // The honest path still works.
        assert_eq!(
            token_policy(200, 200, Version(3), Version(2)),
            FreshnessVerdict::Fresh
        );
    }

    #[test]
    fn token_policy_is_clock_independent() {
        // There is simply no clock input: skewing time cannot change the
        // verdict. (The signature binding nonce→response is enforced by
        // the verifier; see `tests/security.rs`.)
        for _fake_time in [0u64, u64::MAX] {
            assert_eq!(
                token_policy(7, 7, Version(2), Version(1)),
                FreshnessVerdict::Fresh
            );
        }
    }
}
