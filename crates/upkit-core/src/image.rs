//! On-flash image layout: how a slot stores a signed manifest plus its
//! firmware.
//!
//! The bootloader must re-verify an update after reboot, so the manifest
//! travels with the image: each slot begins with a fixed-size header region
//! holding the [`SignedManifest`], followed by the firmware at
//! [`FIRMWARE_OFFSET`]. The header region is sized to a typical flash write
//! page so header and firmware never share a programming unit.

use upkit_flash::{LayoutError, MemoryLayout, SlotId};
use upkit_manifest::{ManifestError, SignedManifest, SIGNED_MANIFEST_LEN};

/// Byte offset of the firmware image within a slot.
pub const FIRMWARE_OFFSET: u32 = 256;

/// Writes a signed manifest into a slot's header region.
///
/// The slot must already be erased (the agent FSM erases it in its
/// *Start update* state).
pub fn write_manifest(
    layout: &mut MemoryLayout,
    slot: SlotId,
    signed: &SignedManifest,
) -> Result<(), LayoutError> {
    layout.write_slot(slot, 0, &signed.to_bytes())
}

/// Reads the signed manifest from a slot's header region.
///
/// Returns `Ok(None)` when the header is erased (no image present) and an
/// error when the header bytes are present but unparseable.
pub fn read_manifest(
    layout: &MemoryLayout,
    slot: SlotId,
) -> Result<Option<SignedManifest>, SlotImageError> {
    let mut header = [0u8; SIGNED_MANIFEST_LEN];
    layout
        .read_slot(slot, 0, &mut header)
        .map_err(SlotImageError::Layout)?;
    if header.iter().all(|&b| b == 0xFF) {
        return Ok(None);
    }
    SignedManifest::from_bytes(&header)
        .map(Some)
        .map_err(SlotImageError::Manifest)
}

/// Largest read granularity [`read_firmware_chunks`] uses (one flash
/// sector); the read buffer lives on the stack at this size, so the
/// block-verify loop performs no heap allocation.
pub const MAX_READ_CHUNK: usize = 4096;

/// Reads `len` firmware bytes from a slot (starting at
/// [`FIRMWARE_OFFSET`]) in `chunk` sized reads (clamped to
/// [`MAX_READ_CHUNK`]), feeding each to `sink`.
pub fn read_firmware_chunks(
    layout: &mut MemoryLayout,
    slot: SlotId,
    len: u32,
    chunk: usize,
    mut sink: impl FnMut(&[u8]),
) -> Result<(), LayoutError> {
    let chunk = chunk.clamp(1, MAX_READ_CHUNK);
    let mut offset = 0u32;
    let mut buf = [0u8; MAX_READ_CHUNK];
    while offset < len {
        let take = chunk.min((len - offset) as usize);
        layout.read_slot_counted(slot, FIRMWARE_OFFSET + offset, &mut buf[..take])?;
        sink(&buf[..take]);
        offset += take as u32;
    }
    Ok(())
}

/// Errors from slot-image header access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SlotImageError {
    /// Flash/layout failure.
    Layout(LayoutError),
    /// The header bytes do not parse as a signed manifest.
    Manifest(ManifestError),
}

impl core::fmt::Display for SlotImageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Layout(e) => write!(f, "slot image layout error: {e}"),
            Self::Manifest(e) => write!(f, "slot image manifest error: {e}"),
        }
    }
}

impl core::error::Error for SlotImageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_crypto::sha256::sha256;
    use upkit_flash::{configuration_a, standard, FlashGeometry, SimFlash};
    use upkit_manifest::{server_sign, vendor_sign, Manifest, Version};

    fn layout() -> MemoryLayout {
        configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 16,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            4096 * 8,
        )
        .unwrap()
    }

    fn sample_signed(seed: u64) -> SignedManifest {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let m = Manifest {
            device_id: 1,
            nonce: 2,
            old_version: Version(0),
            version: Version(5),
            size: 100,
            payload_size: 100,
            digest: sha256(b"fw"),
            link_offset: 0,
            app_id: 3,
        };
        SignedManifest {
            manifest: m,
            vendor_signature: vendor_sign(&m, &vendor),
            server_signature: server_sign(&m, &server),
        }
    }

    #[test]
    fn manifest_header_round_trip() {
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_A).unwrap();
        let signed = sample_signed(80);
        write_manifest(&mut layout, standard::SLOT_A, &signed).unwrap();
        let read = read_manifest(&layout, standard::SLOT_A).unwrap();
        assert_eq!(read, Some(signed));
    }

    #[test]
    fn erased_slot_reads_as_no_image() {
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_A).unwrap();
        assert_eq!(read_manifest(&layout, standard::SLOT_A).unwrap(), None);
    }

    #[test]
    fn corrupt_header_is_an_error() {
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_A).unwrap();
        // Garbage that is neither erased nor a valid manifest: zero bytes
        // make the embedded signatures invalid encodings.
        layout
            .write_slot(standard::SLOT_A, 0, &[0u8; SIGNED_MANIFEST_LEN])
            .unwrap();
        assert!(matches!(
            read_manifest(&layout, standard::SLOT_A),
            Err(SlotImageError::Manifest(_))
        ));
    }

    #[test]
    fn firmware_chunk_reader_covers_every_byte() {
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_A).unwrap();
        let fw: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &fw)
            .unwrap();
        let mut collected = Vec::new();
        read_firmware_chunks(&mut layout, standard::SLOT_A, fw.len() as u32, 512, |c| {
            collected.extend_from_slice(c)
        })
        .unwrap();
        assert_eq!(collected, fw);
    }
}
