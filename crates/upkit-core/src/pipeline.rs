//! The configurable pipeline that transforms incoming update data before it
//! reaches persistent memory (Sect. IV-C, Fig. 5 of the paper).
//!
//! Four stages:
//!
//! 1. **Decompression** — LZSS-decodes the incoming patch (differential
//!    updates only).
//! 2. **Patching** — applies the bsdiff patch against the old firmware,
//!    emitting new-firmware bytes.
//! 3. **Buffer** — accumulates output until a flash-sector-sized buffer
//!    fills; "matching the buffer size with the flash sector size results
//!    in faster writes and fewer flash erasures".
//! 4. **Writer** — writes buffered data to the destination slot through the
//!    memory interface.
//!
//! Full updates bypass stages 1–2. The key property reproduced here is the
//! paper's storage optimization: the patch is **never** stored — it streams
//! through the pipeline and only reconstructed firmware hits flash, so no
//! third memory slot is needed.
//!
//! The patching stage reads the old firmware from its slot. On the paper's
//! platforms internal flash is memory-mapped, so `bspatch` reads the old
//! image in place; here the pipeline snapshots the old slot once at
//! construction, which is behaviourally identical because the old slot is
//! immutable for the duration of the update.

use alloc::boxed::Box;
use alloc::vec;
use alloc::vec::Vec;

use upkit_compress::{Decompressor, FixedBuf, LzssError};
use upkit_crypto::chacha20::ChaCha20;
use upkit_delta::{FramedError, FramedPatcher, PatchError, PatchFormat, StreamPatcher};
use upkit_flash::{LayoutError, MemoryLayout, SlotId};
use upkit_trace::Counters;

use crate::image::FIRMWARE_OFFSET;

/// Wire bytes fed to the differential decode chain per drain step.
///
/// The chain expands each wire byte to at most
/// [`upkit_compress::MAX_MATCH`] bytes (LZSS), which bspatch then maps
/// 1:1, so a [`SCRATCH_LEN`]-byte stack buffer bounds every intermediate
/// product and the steady-state push loop performs no heap allocation.
const DECODE_CHUNK: usize = 4;

/// Stack scratch for one decode drain step (see [`DECODE_CHUNK`]).
const SCRATCH_LEN: usize = DECODE_CHUNK * upkit_compress::MAX_MATCH;

/// Stack buffer for in-place decryption of wire chunks.
const CIPHER_CHUNK: usize = 256;

/// Errors surfaced by the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// LZSS decompression failed (corrupt patch stream).
    Decompress(LzssError),
    /// bspatch failed (corrupt patch or wrong base image).
    Patch(PatchError),
    /// A framed patch container failed to apply.
    Framed(FramedError),
    /// Writing to the destination slot failed.
    Flash(LayoutError),
    /// More output was produced than the manifest's firmware size allows.
    Overflow,
    /// `finish` was called before the expected output was complete.
    Incomplete,
}

impl core::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Decompress(e) => write!(f, "pipeline decompression failed: {e}"),
            Self::Patch(e) => write!(f, "pipeline patching failed: {e}"),
            Self::Framed(e) => write!(f, "pipeline framed patching failed: {e}"),
            Self::Flash(e) => write!(f, "pipeline flash write failed: {e}"),
            Self::Overflow => f.write_str("pipeline produced more than the declared size"),
            Self::Incomplete => f.write_str("pipeline input ended before the image was complete"),
        }
    }
}

impl core::error::Error for PipelineError {}

impl From<LzssError> for PipelineError {
    fn from(e: LzssError) -> Self {
        Self::Decompress(e)
    }
}

impl From<PatchError> for PipelineError {
    fn from(e: PatchError) -> Self {
        Self::Patch(e)
    }
}

impl From<FramedError> for PipelineError {
    fn from(e: FramedError) -> Self {
        Self::Framed(e)
    }
}

impl From<LayoutError> for PipelineError {
    fn from(e: LayoutError) -> Self {
        Self::Flash(e)
    }
}

/// Buffer + writer stages: sector-buffered sequential writes into the
/// destination slot's firmware region.
#[derive(Debug)]
struct BufferedWriter {
    dst: SlotId,
    buffer: Vec<u8>,
    capacity: usize,
    write_pos: u32,
    expected: u64,
    written: u64,
}

impl BufferedWriter {
    fn new(layout: &MemoryLayout, dst: SlotId, expected: u64) -> Result<Self, PipelineError> {
        let spec = layout.slot(dst)?;
        let capacity = layout
            .device_geometry(spec.device)
            .ok_or(PipelineError::Flash(LayoutError::InvalidSpec))?
            .sector_size as usize;
        Ok(Self {
            dst,
            buffer: Vec::with_capacity(capacity),
            capacity,
            write_pos: FIRMWARE_OFFSET,
            expected,
            written: 0,
        })
    }

    fn push(&mut self, layout: &mut MemoryLayout, mut data: &[u8]) -> Result<(), PipelineError> {
        if self.written + data.len() as u64 > self.expected {
            return Err(PipelineError::Overflow);
        }
        self.written += data.len() as u64;
        while !data.is_empty() {
            let room = self.capacity - self.buffer.len();
            let take = room.min(data.len());
            self.buffer.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buffer.len() == self.capacity {
                self.flush(layout)?;
            }
        }
        Ok(())
    }

    fn flush(&mut self, layout: &mut MemoryLayout) -> Result<(), PipelineError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        layout.write_slot(self.dst, self.write_pos, &self.buffer)?;
        self.write_pos += self.buffer.len() as u32;
        self.buffer.clear();
        Ok(())
    }

    fn finish(&mut self, layout: &mut MemoryLayout) -> Result<u64, PipelineError> {
        self.flush(layout)?;
        if self.written != self.expected {
            return Err(PipelineError::Incomplete);
        }
        Ok(self.written)
    }
}

#[derive(Debug)]
enum Transform {
    /// Full update: payload bytes are firmware bytes.
    Passthrough,
    /// Differential update: a patch container against the old image.
    /// Boxed: the stage carries decoder state much larger than the
    /// passthrough variant.
    Differential(Box<DiffStage>),
}

/// The differential transform, which sniffs the patch container from the
/// payload's leading magic bytes: a framed container is applied directly
/// (its windows are compressed individually), anything else goes down the
/// classic path of one LZSS stream wrapping one Raw patch.
#[derive(Debug)]
enum DiffStage {
    /// Waiting for the 4 magic bytes that identify the container.
    Sniff {
        old: Vec<u8>,
        firmware_size: u32,
        buffered: Vec<u8>,
    },
    /// Classic wire encoding: LZSS-decode, then bspatch.
    Lzss {
        decompressor: Decompressor,
        patcher: StreamPatcher<Vec<u8>>,
    },
    /// Framed container: per-window decompression and patching.
    Framed { patcher: FramedPatcher<Vec<u8>> },
}

impl DiffStage {
    /// Resolves the sniffed magic into a concrete decode chain.
    ///
    /// Every decode stage is budgeted from the manifest's (verified,
    /// slot-bounded) firmware size: a wire stream whose own headers
    /// declare more output than the manifest promised is an attack on the
    /// decoder's memory, rejected before any allocation is sized from it.
    /// On the classic path the decompressor yields the *patch*, which can
    /// legitimately outgrow the firmware by its control-entry framing, so
    /// its budget is the worst case `diff` can emit for this firmware
    /// size rather than the firmware size itself; the framed container
    /// enforces the equivalent per window.
    fn begin(old: Vec<u8>, firmware_size: u32, magic: &[u8]) -> Self {
        match PatchFormat::detect(magic) {
            Some(PatchFormat::Framed) => Self::Framed {
                patcher: FramedPatcher::with_budget(old, u64::from(firmware_size)),
            },
            // Anything else — including garbage, which the LZSS header
            // check then rejects exactly as it did before sniffing.
            _ => Self::Lzss {
                decompressor: Decompressor::with_budget(upkit_delta::max_patch_len(u64::from(
                    firmware_size,
                ))),
                patcher: StreamPatcher::with_budget(old, u64::from(firmware_size)),
            },
        }
    }
}

/// Runs payload bytes through a resolved differential decode chain,
/// charging `decode_overruns` whenever a stage rejects a declared length
/// for exceeding its budget.
///
/// Intermediate products (decompressed patch bytes, reconstructed
/// firmware) move through fixed stack scratch buffers sized to the
/// decoders' worst-case expansion, never through heap allocations.
fn push_differential(
    stage: &mut DiffStage,
    writer: &mut BufferedWriter,
    layout: &mut MemoryLayout,
    data: &[u8],
) -> Result<(), PipelineError> {
    match stage {
        DiffStage::Sniff { .. } => unreachable!("sniff is resolved before decoding"),
        DiffStage::Lzss {
            decompressor,
            patcher,
        } => {
            let mut patch_scratch = [0u8; SCRATCH_LEN];
            let mut firmware_scratch = [0u8; SCRATCH_LEN];
            let mut done = 0usize;
            while done < data.len() {
                let n = (data.len() - done).min(DECODE_CHUNK);
                let mut patch_bytes = FixedBuf::new(&mut patch_scratch);
                decompressor
                    .push(&data[done..done + n], &mut patch_bytes)
                    .inspect_err(|e| {
                        if matches!(e, LzssError::BudgetExceeded) {
                            Counters::add(&layout.tracer().counters().decode_overruns, 1);
                        }
                    })?;
                debug_assert!(!patch_bytes.overflowed(), "scratch sized to worst case");
                let mut firmware = FixedBuf::new(&mut firmware_scratch);
                patcher
                    .push(patch_bytes.as_slice(), &mut firmware)
                    .inspect_err(|e| {
                        if matches!(e, PatchError::BudgetExceeded) {
                            Counters::add(&layout.tracer().counters().decode_overruns, 1);
                        }
                    })?;
                debug_assert!(!firmware.overflowed(), "bspatch never expands its input");
                writer.push(layout, firmware.as_slice())?;
                done += n;
            }
            Ok(())
        }
        DiffStage::Framed { patcher } => {
            let mut firmware_scratch = [0u8; SCRATCH_LEN];
            let mut done = 0usize;
            while done < data.len() {
                let n = (data.len() - done).min(DECODE_CHUNK);
                let mut firmware = FixedBuf::new(&mut firmware_scratch);
                patcher
                    .push(&data[done..done + n], &mut firmware)
                    .inspect_err(|e| {
                        if e.is_budget_rejection() {
                            Counters::add(&layout.tracer().counters().decode_overruns, 1);
                        }
                    })?;
                debug_assert!(!firmware.overflowed(), "scratch sized to worst case");
                writer.push(layout, firmware.as_slice())?;
                done += n;
            }
            Ok(())
        }
    }
}

/// The assembled pipeline for one incoming update.
#[derive(Debug)]
pub struct Pipeline {
    /// Optional decryption stage (the paper's future-work extension): runs
    /// before decompression/patching so confidentiality does not depend on
    /// the transport.
    cipher: Option<ChaCha20>,
    transform: Transform,
    writer: BufferedWriter,
}

impl Pipeline {
    /// Builds the pipeline for a **full** update of `firmware_size` bytes
    /// into `dst`.
    pub fn new_full(
        layout: &MemoryLayout,
        dst: SlotId,
        firmware_size: u32,
    ) -> Result<Self, PipelineError> {
        Ok(Self {
            cipher: None,
            transform: Transform::Passthrough,
            writer: BufferedWriter::new(layout, dst, u64::from(firmware_size))?,
        })
    }

    /// Builds the pipeline for a **differential** update: the payload is an
    /// LZSS-compressed bsdiff patch against the firmware currently in
    /// `old_slot` (`old_size` bytes), producing `firmware_size` bytes into
    /// `dst`.
    pub fn new_differential(
        layout: &mut MemoryLayout,
        dst: SlotId,
        old_slot: SlotId,
        old_size: u32,
        firmware_size: u32,
    ) -> Result<Self, PipelineError> {
        // Snapshot the (immutable-during-update) old image; see module docs.
        let mut old = vec![0u8; old_size as usize];
        layout.read_slot_counted(old_slot, FIRMWARE_OFFSET, &mut old)?;
        // The container is chosen by the payload's first 4 bytes; every
        // decode stage behind the sniff is budgeted from the manifest's
        // (verified, slot-bounded) firmware size — see `DiffStage::begin`.
        Ok(Self {
            cipher: None,
            transform: Transform::Differential(Box::new(DiffStage::Sniff {
                old,
                firmware_size,
                buffered: Vec::with_capacity(4),
            })),
            writer: BufferedWriter::new(layout, dst, u64::from(firmware_size))?,
        })
    }

    /// Prepends a decryption stage: every wire byte is ChaCha20-decrypted
    /// before it reaches decompression/patching. Must be called before the
    /// first [`Pipeline::push`].
    pub fn enable_decryption(&mut self, cipher: ChaCha20) {
        self.cipher = Some(cipher);
    }

    /// Overrides the buffer stage's capacity (default: the destination
    /// device's flash sector size, the paper's recommendation). Exposed
    /// for the buffer-size ablation; must be called before the first
    /// [`Pipeline::push`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or data is already buffered.
    pub fn set_buffer_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "buffer capacity must be positive");
        assert!(
            self.writer.buffer.is_empty(),
            "buffer capacity must be set before pushing data"
        );
        self.writer.capacity = capacity;
    }

    /// Feeds the next chunk of wire payload through all stages.
    pub fn push(&mut self, layout: &mut MemoryLayout, data: &[u8]) -> Result<(), PipelineError> {
        if self.cipher.is_some() {
            // Decrypt through a fixed stack buffer (ChaCha20 keeps its
            // keystream position across calls, so chunked application is
            // byte-identical to one-shot).
            let mut cipher = self.cipher.take().expect("checked above");
            let result = self.push_encrypted(&mut cipher, layout, data);
            self.cipher = Some(cipher);
            return result;
        }
        self.push_plain(layout, data)
    }

    fn push_encrypted(
        &mut self,
        cipher: &mut ChaCha20,
        layout: &mut MemoryLayout,
        data: &[u8],
    ) -> Result<(), PipelineError> {
        let mut chunk = [0u8; CIPHER_CHUNK];
        let mut done = 0usize;
        while done < data.len() {
            let n = (data.len() - done).min(CIPHER_CHUNK);
            chunk[..n].copy_from_slice(&data[done..done + n]);
            cipher.apply(&mut chunk[..n]);
            self.push_plain(layout, &chunk[..n])?;
            done += n;
        }
        Ok(())
    }

    fn push_plain(&mut self, layout: &mut MemoryLayout, data: &[u8]) -> Result<(), PipelineError> {
        match &mut self.transform {
            Transform::Passthrough => self.writer.push(layout, data),
            Transform::Differential(stage) => {
                let stage = stage.as_mut();
                if let DiffStage::Sniff {
                    old,
                    firmware_size,
                    buffered,
                } = stage
                {
                    buffered.extend_from_slice(data);
                    if buffered.len() < 4 {
                        return Ok(());
                    }
                    let resolved = DiffStage::begin(core::mem::take(old), *firmware_size, buffered);
                    let pending = core::mem::take(buffered);
                    *stage = resolved;
                    return push_differential(stage, &mut self.writer, layout, &pending);
                }
                push_differential(stage, &mut self.writer, layout, data)
            }
        }
    }

    /// Flushes the buffer stage and validates completeness. Returns the
    /// number of firmware bytes written.
    pub fn finish(&mut self, layout: &mut MemoryLayout) -> Result<u64, PipelineError> {
        if let Transform::Differential(stage) = &self.transform {
            match stage.as_ref() {
                // Too few payload bytes to even identify a container; the
                // classic decode chain would have reported the same.
                DiffStage::Sniff { .. } => {
                    return Err(PipelineError::Decompress(LzssError::Truncated))
                }
                DiffStage::Lzss {
                    decompressor,
                    patcher,
                } => {
                    decompressor.finish()?;
                    patcher.finish()?;
                }
                DiffStage::Framed { patcher } => patcher.finish()?,
            }
        }
        self.writer.finish(layout)
    }

    /// Firmware bytes produced so far.
    #[must_use]
    pub fn produced(&self) -> u64 {
        self.writer.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upkit_compress::{compress, Params};
    use upkit_delta::diff;
    use upkit_flash::{configuration_a, standard, FlashGeometry, MemoryLayout, SimFlash};

    const SLOT_SECTORS: u32 = 16;

    fn layout() -> MemoryLayout {
        configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 64,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            4096 * SLOT_SECTORS,
        )
        .unwrap()
    }

    fn firmware(seed: u32, len: usize) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect()
    }

    fn read_firmware(layout: &MemoryLayout, slot: upkit_flash::SlotId, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        layout.read_slot(slot, FIRMWARE_OFFSET, &mut out).unwrap();
        out
    }

    #[test]
    fn full_update_lands_in_slot() {
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_B).unwrap();
        let fw = firmware(1, 20_000);
        let mut pipeline = Pipeline::new_full(&layout, standard::SLOT_B, fw.len() as u32).unwrap();
        for chunk in fw.chunks(200) {
            pipeline.push(&mut layout, chunk).unwrap();
        }
        assert_eq!(pipeline.finish(&mut layout).unwrap(), fw.len() as u64);
        assert_eq!(read_firmware(&layout, standard::SLOT_B, fw.len()), fw);
    }

    #[test]
    fn differential_update_reconstructs_new_firmware() {
        let mut layout = layout();
        // Install old firmware in slot A.
        let old_fw = firmware(2, 30_000);
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &old_fw)
            .unwrap();
        // New firmware: mostly the same with edits.
        let mut new_fw = old_fw.clone();
        new_fw[5000..5100].copy_from_slice(&firmware(3, 100));
        new_fw.extend_from_slice(&firmware(4, 500));

        // Server side: patch = lzss(bsdiff(old, new)).
        let patch = diff(&old_fw, &new_fw);
        let wire = compress(&patch, Params::default());
        assert!(wire.len() < new_fw.len() / 4, "delta should be small");

        layout.erase_slot(standard::SLOT_B).unwrap();
        let mut pipeline = Pipeline::new_differential(
            &mut layout,
            standard::SLOT_B,
            standard::SLOT_A,
            old_fw.len() as u32,
            new_fw.len() as u32,
        )
        .unwrap();
        for chunk in wire.chunks(64) {
            pipeline.push(&mut layout, chunk).unwrap();
        }
        assert_eq!(pipeline.finish(&mut layout).unwrap(), new_fw.len() as u64);
        assert_eq!(
            read_firmware(&layout, standard::SLOT_B, new_fw.len()),
            new_fw
        );
    }

    #[test]
    fn framed_differential_update_reconstructs_new_firmware() {
        use upkit_delta::{framed_diff, FramedDiffOptions};

        let mut layout = layout();
        let old_fw = firmware(20, 30_000);
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &old_fw)
            .unwrap();
        let mut new_fw = old_fw.clone();
        new_fw[9000..9100].copy_from_slice(&firmware(21, 100));
        new_fw.extend_from_slice(&firmware(22, 300));

        // Server side: the framed container, multiple windows, diffed on
        // two threads. The device sniffs the format from the magic — the
        // pipeline construction is identical to the raw-patch case.
        let options = FramedDiffOptions::default()
            .with_window_len(8 * 1024)
            .with_threads(2);
        let wire = framed_diff(&old_fw, &new_fw, &options);
        assert!(wire.len() < new_fw.len() / 4, "delta should be small");

        layout.erase_slot(standard::SLOT_B).unwrap();
        let mut pipeline = Pipeline::new_differential(
            &mut layout,
            standard::SLOT_B,
            standard::SLOT_A,
            old_fw.len() as u32,
            new_fw.len() as u32,
        )
        .unwrap();
        for chunk in wire.chunks(64) {
            pipeline.push(&mut layout, chunk).unwrap();
        }
        assert_eq!(pipeline.finish(&mut layout).unwrap(), new_fw.len() as u64);
        assert_eq!(
            read_firmware(&layout, standard::SLOT_B, new_fw.len()),
            new_fw
        );
    }

    #[test]
    fn framed_window_count_bomb_is_rejected_and_ledgered() {
        use upkit_delta::FRAMED_MAGIC;

        let mut layout = layout();
        let old_fw = firmware(23, 2_000);
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &old_fw)
            .unwrap();
        layout.erase_slot(standard::SLOT_B).unwrap();
        let mut pipeline = Pipeline::new_differential(
            &mut layout,
            standard::SLOT_B,
            standard::SLOT_A,
            old_fw.len() as u32,
            2_000,
        )
        .unwrap();

        // Valid magic, then a directory claiming a billion windows for a
        // 2000-byte image: rejected from the header alone, before any
        // directory allocation, and charged to the decode-overrun ledger.
        let mut bomb = Vec::from(FRAMED_MAGIC);
        bomb.extend_from_slice(&(old_fw.len() as u32).to_le_bytes());
        bomb.extend_from_slice(&2_000u32.to_le_bytes());
        bomb.extend_from_slice(&1_000_000_000u32.to_le_bytes());
        assert!(matches!(
            pipeline.push(&mut layout, &bomb),
            Err(PipelineError::Framed(_))
        ));
        assert_eq!(layout.tracer().counters().snapshot().decode_overruns, 1);
    }

    #[test]
    fn no_extra_slot_is_used_for_the_patch() {
        // The pipeline writes only into the destination slot: total bytes
        // written to flash equal the firmware size (rounded to the last
        // partial buffer), not firmware + patch.
        let mut layout = layout();
        let old_fw = firmware(5, 10_000);
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &old_fw)
            .unwrap();
        let mut new_fw = old_fw.clone();
        new_fw[0..50].copy_from_slice(&firmware(6, 50));
        let wire = compress(&diff(&old_fw, &new_fw), Params::default());

        layout.erase_slot(standard::SLOT_B).unwrap();
        layout.reset_stats();
        let mut pipeline = Pipeline::new_differential(
            &mut layout,
            standard::SLOT_B,
            standard::SLOT_A,
            old_fw.len() as u32,
            new_fw.len() as u32,
        )
        .unwrap();
        pipeline.push(&mut layout, &wire).unwrap();
        pipeline.finish(&mut layout).unwrap();
        let stats = layout.total_stats();
        assert_eq!(stats.bytes_written, new_fw.len() as u64);
        assert_eq!(stats.sectors_erased, 0, "destination was pre-erased");
    }

    #[test]
    fn buffer_stage_writes_whole_sectors() {
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_B).unwrap();
        let fw = firmware(7, 4096 * 2 + 100);
        let mut pipeline = Pipeline::new_full(&layout, standard::SLOT_B, fw.len() as u32).unwrap();
        // Push in tiny chunks; writes should still be sector-granular.
        for chunk in fw.chunks(13) {
            pipeline.push(&mut layout, chunk).unwrap();
        }
        // Before finish, only the full sectors have been written.
        assert_eq!(pipeline.produced(), fw.len() as u64);
        let written_before_finish = layout.total_stats().bytes_written;
        assert_eq!(written_before_finish, 4096 * 2);
        pipeline.finish(&mut layout).unwrap();
        assert_eq!(layout.total_stats().bytes_written, fw.len() as u64);
        assert_eq!(read_firmware(&layout, standard::SLOT_B, fw.len()), fw);
    }

    #[test]
    fn overflow_is_rejected() {
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_B).unwrap();
        let mut pipeline = Pipeline::new_full(&layout, standard::SLOT_B, 100).unwrap();
        assert_eq!(
            pipeline.push(&mut layout, &[0u8; 101]),
            Err(PipelineError::Overflow)
        );
    }

    #[test]
    fn incomplete_input_is_rejected() {
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_B).unwrap();
        let mut pipeline = Pipeline::new_full(&layout, standard::SLOT_B, 100).unwrap();
        pipeline.push(&mut layout, &[0u8; 40]).unwrap();
        assert_eq!(pipeline.finish(&mut layout), Err(PipelineError::Incomplete));
    }

    #[test]
    fn corrupt_patch_stream_fails_cleanly() {
        let mut layout = layout();
        let old_fw = firmware(8, 5_000);
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &old_fw)
            .unwrap();
        layout.erase_slot(standard::SLOT_B).unwrap();
        let mut pipeline = Pipeline::new_differential(
            &mut layout,
            standard::SLOT_B,
            standard::SLOT_A,
            old_fw.len() as u32,
            5_000,
        )
        .unwrap();
        // Garbage instead of an LZSS stream.
        assert!(matches!(
            pipeline.push(&mut layout, &[0u8; 64]),
            Err(PipelineError::Decompress(_))
        ));
    }

    #[test]
    fn wrong_base_image_fails_in_patching_stage() {
        let mut layout = layout();
        let old_fw = firmware(9, 5_000);
        let unrelated = firmware(10, 4_000); // wrong length ⇒ bspatch rejects
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &unrelated)
            .unwrap();
        let new_fw = firmware(11, 5_200);
        let wire = compress(&diff(&old_fw, &new_fw), Params::default());

        layout.erase_slot(standard::SLOT_B).unwrap();
        let mut pipeline = Pipeline::new_differential(
            &mut layout,
            standard::SLOT_B,
            standard::SLOT_A,
            unrelated.len() as u32,
            new_fw.len() as u32,
        )
        .unwrap();
        let result = (|| {
            for chunk in wire.chunks(128) {
                pipeline.push(&mut layout, chunk)?;
            }
            pipeline.finish(&mut layout).map(|_| ())
        })();
        assert!(matches!(result, Err(PipelineError::Patch(_))));
    }
}
