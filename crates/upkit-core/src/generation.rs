//! Server-side components: the vendor server (generation phase) and the
//! update server (propagation phase).
//!
//! The division of labour mirrors Fig. 2 of the paper:
//!
//! * The **vendor server** holds the vendor private key. It receives a raw
//!   firmware binary and produces a *release*: the manifest core plus the
//!   vendor signature over it. This happens once per firmware version.
//! * The **update server** holds its own private key and the published
//!   releases. Per device request it receives a [`DeviceToken`], decides
//!   between a full and a differential payload, fills in the token fields,
//!   and signs the complete manifest — binding the image to that one
//!   device and request, which is what grants freshness without
//!   transport-layer security.

use alloc::collections::BTreeMap;
use alloc::sync::Arc;
use std::sync::{OnceLock, RwLock};

use upkit_compress::{compress, Params as LzssParams};
use upkit_crypto::chacha20::{chacha20_xor, KEY_LEN as CONTENT_KEY_LEN};
use upkit_crypto::ecdsa::{Signature, SigningKey};
use upkit_crypto::sha256::sha256;
use upkit_delta::{DeltaContext, FramedDiffOptions, PatchFormat};
use upkit_manifest::{
    server_sign, vendor_sign, DeviceToken, Manifest, SignedManifest, UpdateImage, Version,
};
use upkit_trace::{Counters, Event, Tracer};

/// A firmware release: the vendor-signed, request-independent part of an
/// update.
#[derive(Clone, Debug)]
pub struct Release {
    /// Version of this firmware.
    pub version: Version,
    /// The firmware binary.
    pub firmware: Vec<u8>,
    /// SHA-256 of `firmware`.
    pub digest: [u8; 32],
    /// Link offset the binary was built for.
    pub link_offset: u32,
    /// Application/hardware identifier.
    pub app_id: u32,
    /// Vendor signature over the manifest core.
    pub vendor_signature: Signature,
}

/// The vendor server: embeds the vendor private key and turns firmware
/// binaries into signed releases.
pub struct VendorServer {
    key: SigningKey,
}

impl core::fmt::Debug for VendorServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("VendorServer").finish_non_exhaustive()
    }
}

impl VendorServer {
    /// Creates a vendor server around its signing key.
    #[must_use]
    pub fn new(key: SigningKey) -> Self {
        Self { key }
    }

    /// The public half of the vendor key (provisioned to devices).
    #[must_use]
    pub fn verifying_key(&self) -> upkit_crypto::ecdsa::VerifyingKey {
        self.key.verifying_key()
    }

    /// Signs an arbitrary manifest's core fields (factory provisioning of
    /// the image a device ships with).
    #[must_use]
    pub fn sign_manifest_core(&self, manifest: &Manifest) -> upkit_crypto::Signature {
        vendor_sign(manifest, &self.key)
    }

    /// Signs a multi-component manifest's vendor region (the core fields
    /// plus the whole component table).
    #[must_use]
    pub fn sign_multi(&self, multi: &upkit_manifest::MultiManifest) -> upkit_crypto::Signature {
        upkit_manifest::vendor_sign_multi(multi, &self.key)
    }

    /// Generation phase: builds and vendor-signs a release.
    #[must_use]
    pub fn release(
        &self,
        firmware: Vec<u8>,
        version: Version,
        link_offset: u32,
        app_id: u32,
    ) -> Release {
        let digest = sha256(&firmware);
        // The vendor signature covers the manifest core only; token fields
        // are zero here and ignored by `vendor_signed_bytes`.
        let core_manifest = Manifest {
            device_id: 0,
            nonce: 0,
            old_version: Version(0),
            version,
            size: firmware.len() as u32,
            payload_size: firmware.len() as u32,
            digest,
            link_offset,
            app_id,
        };
        let vendor_signature = vendor_sign(&core_manifest, &self.key);
        Release {
            version,
            firmware,
            digest,
            link_offset,
            app_id,
            vendor_signature,
        }
    }
}

pub use crate::keys::content_nonce;

/// Compresses `patch` with the configured parameters and, additionally,
/// with a small-window/long-match configuration that excels on the long
/// zero runs bsdiff emits; returns the smaller stream. The decoder reads
/// the parameters from the stream header, so the device side needs no
/// configuration.
fn best_compression(patch: &[u8], configured: LzssParams) -> Vec<u8> {
    let mut best = compress(patch, configured);
    if let Ok(sparse) = LzssParams::new(8) {
        let alt = compress(patch, sparse);
        if alt.len() < best.len() {
            best = alt;
        }
    }
    best
}

/// How the update server answered a request (for tests and experiment
/// accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedKind {
    /// A full firmware image was served.
    Full,
    /// A patch was served: an LZSS-compressed bsdiff stream
    /// ([`PatchFormat::Raw`]) or a windowed framed container
    /// ([`PatchFormat::Framed`]), per the server's configured format.
    Differential {
        /// The base version the patch applies to.
        from: Version,
    },
}

/// A prepared response to one device token.
#[derive(Clone, Debug)]
pub struct PreparedUpdate {
    /// The update image to transmit (manifest first, then payload).
    pub image: UpdateImage,
    /// Whether the payload is full or differential.
    pub kind: ServedKind,
    /// Serialized wire length of `image`, precomputed at preparation time
    /// so per-poll accounting never re-serializes the full image.
    pub wire_bytes: u64,
}

/// Key of one content-addressed patch-cache entry: the SHA-256 digests of
/// the two images, the platform (application/hardware identifier), and the
/// container format the patch was encoded in. Everything the cached bytes
/// depend on is in the key, so an entry can never go stale — re-publishing
/// a version with different content yields a different digest and therefore
/// a different key.
type PatchKey = ([u8; 32], [u8; 32], u32, PatchFormat);

/// First eight bytes of a SHA-256 digest as a big-endian integer — the
/// stable short form trace events use to identify an image.
fn digest_prefix(digest: &[u8; 32]) -> u64 {
    u64::from_be_bytes(digest[..8].try_into().expect("digest has 32 bytes"))
}

/// The update server: publishes releases and answers device tokens with
/// double-signed update images.
pub struct UpdateServer {
    key: SigningKey,
    releases: BTreeMap<u16, Release>,
    lzss: LzssParams,
    content_key: Option<[u8; CONTENT_KEY_LEN]>,
    /// Container format served to differential-capable devices. Defaults
    /// to [`PatchFormat::Raw`] (one LZSS-compressed bsdiff stream), the
    /// format every deployed decoder understands.
    patch_format: PatchFormat,
    /// Worker threads per framed diff (windows diffed concurrently).
    diff_threads: usize,
    /// Tracer used by [`Self::prepare_update`]; disabled by default.
    tracer: Tracer,
    /// One [`DeltaContext`] per base image, keyed by content digest and
    /// built exactly once (single-flight via [`OnceLock`]) on the first
    /// differential request against that base: the suffix array dominates
    /// diff cost and depends only on the old image bytes.
    delta_contexts: RwLock<BTreeMap<[u8; 32], SingleFlight<DeltaContext>>>,
    /// Content-addressed pre-encryption patch cache. The [`OnceLock`] cell
    /// makes population single-flight: when concurrent campaigns race on
    /// the same transition, exactly one worker diffs and the rest block on
    /// the cell instead of repeating the work. Entries survive
    /// [`Self::publish`] — the key pins the exact input images, so a
    /// straggler updating from an old base after several publishes still
    /// hits the cache.
    patches: RwLock<BTreeMap<PatchKey, SingleFlight<CachedPatch>>>,
    /// Request-independent campaign responses, keyed like the patch cache
    /// (`None` base = full-image response for non-differential devices).
    /// Each entry holds a fully signed broadcast [`PreparedUpdate`], so a
    /// million-device campaign costs one ECDSA signature per transition.
    campaign_responses: RwLock<BTreeMap<CampaignKey, SingleFlight<PreparedUpdate>>>,
}

/// Key of one cached campaign response: optional base-image digest (full
/// responses have none), new-image digest, platform, container format.
type CampaignKey = (Option<[u8; 32]>, [u8; 32], u32, PatchFormat);

/// A shareable populate-exactly-once cache cell: whoever wins the race
/// computes, everyone else blocks on the same cell and reads the result.
type SingleFlight<T> = Arc<OnceLock<Arc<T>>>;

/// A cached patch decision: the pre-encryption payload bytes and whether
/// they are a differential patch or a full-image fallback. Deliberately
/// content-pure — no version numbers — so the entry stays valid however
/// the version ↔ image mapping evolves across publishes.
struct CachedPatch {
    payload: Vec<u8>,
    differential: bool,
}

impl core::fmt::Debug for UpdateServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("UpdateServer")
            .field("releases", &self.releases.len())
            .finish_non_exhaustive()
    }
}

impl UpdateServer {
    /// Creates an update server around its signing key.
    #[must_use]
    pub fn new(key: SigningKey) -> Self {
        Self {
            key,
            releases: BTreeMap::new(),
            lzss: LzssParams::default(),
            content_key: None,
            patch_format: PatchFormat::Raw,
            diff_threads: 1,
            tracer: Tracer::disabled(),
            delta_contexts: RwLock::new(BTreeMap::new()),
            patches: RwLock::new(BTreeMap::new()),
            campaign_responses: RwLock::new(BTreeMap::new()),
        }
    }

    /// Selects the patch container served to differential-capable devices.
    /// [`PatchFormat::Framed`] enables the windowed container (and with it
    /// parallel diff generation); the default [`PatchFormat::Raw`] keeps
    /// the seed wire format byte-for-byte. Devices sniff the container
    /// from the payload magic, so no device-side configuration changes.
    pub fn set_patch_format(&mut self, format: PatchFormat) {
        self.patch_format = format;
    }

    /// Sets how many worker threads a framed diff may use. Output bytes do
    /// not depend on this (asserted by the framed encoder's tests); it
    /// only bounds wall-clock. Ignored for [`PatchFormat::Raw`].
    pub fn set_diff_threads(&mut self, threads: usize) {
        self.diff_threads = threads.max(1);
    }

    /// Installs the tracer [`Self::prepare_update`] charges cache hits and
    /// misses to. Callers that need per-request traces (e.g. the parallel
    /// generator) use [`Self::prepare_update_traced`] instead.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer installed via [`Self::set_tracer`] (disabled by default).
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The public half of the server key (provisioned to devices).
    #[must_use]
    pub fn verifying_key(&self) -> upkit_crypto::ecdsa::VerifyingKey {
        self.key.verifying_key()
    }

    /// Signs an arbitrary full manifest (factory provisioning of the image
    /// a device ships with).
    #[must_use]
    pub fn sign_manifest(&self, manifest: &Manifest) -> upkit_crypto::Signature {
        server_sign(manifest, &self.key)
    }

    /// Signs a multi-component manifest's server region (the full token
    /// fields plus the whole component table).
    #[must_use]
    pub fn sign_multi(&self, multi: &upkit_manifest::MultiManifest) -> upkit_crypto::Signature {
        upkit_manifest::server_sign_multi(multi, &self.key)
    }

    /// Enables payload confidentiality: every prepared update's wire
    /// payload is ChaCha20-encrypted under `key`, with a nonce derived from
    /// the device token (device ID ‖ request nonce ‖ version). Devices must
    /// be provisioned with the same key. Implements the paper's future-work
    /// decryption-stage extension; integrity still comes from the signed
    /// manifest digest over the *plaintext* firmware (encrypt-then-sign at
    /// the image level).
    pub fn set_content_key(&mut self, key: [u8; CONTENT_KEY_LEN]) {
        self.content_key = Some(key);
    }

    /// Publishes a release received from the vendor server.
    ///
    /// Caches are *not* flushed: both the delta contexts and the patch
    /// cache are keyed by content digest, so no entry can describe the new
    /// release incorrectly — a changed image changes the key. Entries for
    /// transitions no one will request again merely occupy memory until
    /// the server restarts; publishes are rare enough that this is the
    /// right trade for never re-diffing a transition a straggler repeats.
    pub fn publish(&mut self, release: Release) {
        self.releases.insert(release.version.0, release);
    }

    /// The newest published version, if any.
    #[must_use]
    pub fn latest_version(&self) -> Option<Version> {
        self.releases.keys().next_back().map(|&v| Version(v))
    }

    /// Returns the cached delta context for a base image, building it on
    /// first use. Single-flight: concurrent first requests block on one
    /// [`OnceLock`] cell instead of each building the suffix array.
    fn delta_context(&self, base: &Release) -> Arc<DeltaContext> {
        let cell = {
            let contexts = self
                .delta_contexts
                .read()
                .expect("no poisoned lock: caches are written outside panics");
            match contexts.get(&base.digest) {
                Some(cell) => Arc::clone(cell),
                None => {
                    drop(contexts);
                    Arc::clone(
                        self.delta_contexts
                            .write()
                            .expect("no poisoned lock: caches are written outside panics")
                            .entry(base.digest)
                            .or_default(),
                    )
                }
            }
        };
        Arc::clone(cell.get_or_init(|| Arc::new(DeltaContext::new(&base.firmware))))
    }

    /// Diffs `base` against `latest` in the configured container format
    /// and decides differential vs full. Deterministic and
    /// request-independent, hence cacheable by content digest.
    fn compute_patch(&self, base: &Release, latest: &Release) -> CachedPatch {
        let context = self.delta_context(base);
        let encoded = match self.patch_format {
            PatchFormat::Raw => {
                let patch = context.diff(&base.firmware, &latest.firmware);
                best_compression(&patch, self.lzss)
            }
            PatchFormat::Framed => {
                // Per-window compression follows the server's configured
                // LZSS parameters; the container carries them per window,
                // so decoders need no configuration.
                let options = FramedDiffOptions {
                    lzss: Some(self.lzss),
                    ..FramedDiffOptions::default().with_threads(self.diff_threads)
                };
                context.framed_diff(&base.firmware, &latest.firmware, &options)
            }
        };
        // Serve the delta only when it actually saves transfer.
        if encoded.len() < latest.firmware.len() {
            CachedPatch {
                payload: encoded,
                differential: true,
            }
        } else {
            CachedPatch {
                payload: latest.firmware.clone(),
                differential: false,
            }
        }
    }

    /// Looks up (or computes, exactly once per key) the patch for the
    /// `base → latest` transition. The returned bytes are byte-identical
    /// to a fresh computation — diff and LZSS are deterministic functions
    /// of the two images — which the property tests pin. Charges
    /// `patch_cache_hits`/`patch_cache_misses` and emits the matching
    /// event on `tracer`.
    fn differential_payload(
        &self,
        base: &Release,
        latest: &Release,
        tracer: &Tracer,
    ) -> Arc<CachedPatch> {
        let key = (base.digest, latest.digest, latest.app_id, self.patch_format);
        let cell = {
            let patches = self
                .patches
                .read()
                .expect("no poisoned lock: caches are written outside panics");
            match patches.get(&key) {
                Some(cell) => Arc::clone(cell),
                None => {
                    drop(patches);
                    Arc::clone(
                        self.patches
                            .write()
                            .expect("no poisoned lock: caches are written outside panics")
                            .entry(key)
                            .or_default(),
                    )
                }
            }
        };
        let mut fresh = false;
        let cached = Arc::clone(cell.get_or_init(|| {
            fresh = true;
            Arc::new(self.compute_patch(base, latest))
        }));

        let format = self.patch_format.label();
        if fresh {
            Counters::add(&tracer.counters().patch_cache_misses, 1);
            tracer.emit(|| Event::PatchGenerated {
                old_digest: digest_prefix(&base.digest),
                new_digest: digest_prefix(&latest.digest),
                platform: u64::from(latest.app_id),
                format,
                bytes: cached.payload.len() as u64,
            });
        } else {
            Counters::add(&tracer.counters().patch_cache_hits, 1);
            tracer.emit(|| Event::PatchCacheHit {
                old_digest: digest_prefix(&base.digest),
                new_digest: digest_prefix(&latest.digest),
                platform: u64::from(latest.app_id),
                format,
            });
        }
        cached
    }

    /// Pre-computes the patch for devices currently on `base`, so that
    /// later [`Self::prepare_update`] calls for that transition are pure
    /// cache hits (manifest signing only). Returns `false` when there is
    /// no differential transition to warm — unknown base, no newer
    /// release, or an empty server.
    pub fn warm(&self, base: Version, tracer: &Tracer) -> bool {
        let Some(latest) = self.releases.values().next_back() else {
            return false;
        };
        let Some(base_release) = self.releases.get(&base.0) else {
            return false;
        };
        if base_release.version >= latest.version {
            return false;
        }
        self.differential_payload(base_release, latest, tracer);
        true
    }

    /// Propagation phase: answers a device token with an update image for
    /// the newest release, choosing a differential payload when the device
    /// supports it and the base release is still on hand.
    ///
    /// Returns `None` when no release is newer than the device's current
    /// version (nothing to update).
    #[must_use]
    pub fn prepare_update(&self, token: &DeviceToken) -> Option<PreparedUpdate> {
        self.prepare_update_traced(token, &self.tracer)
    }

    /// [`Self::prepare_update`] with an explicit tracer, for callers that
    /// collect per-request traces and merge them deterministically (the
    /// parallel generator gives every worker job its own tracer).
    #[must_use]
    pub fn prepare_update_traced(
        &self,
        token: &DeviceToken,
        tracer: &Tracer,
    ) -> Option<PreparedUpdate> {
        let latest = self.releases.values().next_back()?;
        if latest.version <= token.current_version && token.current_version.0 != 0 {
            return None;
        }

        let base = if token.supports_differential() {
            self.releases.get(&token.current_version.0)
        } else {
            None
        };

        let cached = match base {
            Some(base_release) if base_release.version < latest.version => Some((
                base_release.version,
                self.differential_payload(base_release, latest, tracer),
            )),
            _ => None,
        };
        let (plain, old_version, kind) = match &cached {
            Some((from, patch)) if patch.differential => (
                patch.payload.as_slice(),
                *from,
                ServedKind::Differential { from: *from },
            ),
            // The cache decided the delta does not pay for itself and
            // stored the full image instead.
            Some((_, patch)) => (patch.payload.as_slice(), Version(0), ServedKind::Full),
            None => (latest.firmware.as_slice(), Version(0), ServedKind::Full),
        };

        let payload = match &self.content_key {
            Some(key) => {
                let nonce = content_nonce(token.device_id, token.nonce, latest.version);
                chacha20_xor(key, &nonce, plain)
            }
            None => plain.to_vec(),
        };

        let manifest = Manifest {
            device_id: token.device_id,
            nonce: token.nonce,
            old_version,
            version: latest.version,
            size: latest.firmware.len() as u32,
            payload_size: payload.len() as u32,
            digest: latest.digest,
            link_offset: latest.link_offset,
            app_id: latest.app_id,
        };
        let signed_manifest = SignedManifest {
            manifest,
            vendor_signature: latest.vendor_signature,
            server_signature: server_sign(&manifest, &self.key),
        };
        let image = UpdateImage {
            signed_manifest,
            payload,
        };
        Some(PreparedUpdate {
            wire_bytes: image.wire_len() as u64,
            image,
            kind,
        })
    }

    /// Campaign (broadcast) propagation: one signed response per
    /// `base → latest` transition, shared by every device on `base`.
    ///
    /// Unlike [`Self::prepare_update`], the manifest's device-token fields
    /// are zero — the response is request-independent, so the ECDSA server
    /// signature is computed **once per transition** (single-flight cached,
    /// like the patch cache) instead of once per device. Devices keep
    /// downgrade protection through the manifest's version-monotonicity
    /// check; what they give up is per-request nonce freshness, the
    /// Omaha-style trade every fleet-scale campaign server makes. Devices
    /// needing the paper's point-to-point freshness keep using
    /// [`Self::prepare_update`].
    ///
    /// `base` is the version the device reports running ([`Version`] `0`
    /// for devices without differential support, which are served the full
    /// image). Returns `None` when no release is newer than `base`.
    #[must_use]
    pub fn prepare_campaign_update(&self, base: Version) -> Option<Arc<PreparedUpdate>> {
        self.prepare_campaign_update_traced(base, &self.tracer)
    }

    /// [`Self::prepare_campaign_update`] with an explicit tracer for the
    /// one-time payload build (patch-cache hits/misses, delta events).
    #[must_use]
    pub fn prepare_campaign_update_traced(
        &self,
        base: Version,
        tracer: &Tracer,
    ) -> Option<Arc<PreparedUpdate>> {
        let latest = self.releases.values().next_back()?;
        if latest.version <= base && base.0 != 0 {
            return None;
        }
        let base_release = if base.0 != 0 {
            self.releases
                .get(&base.0)
                .filter(|release| release.version < latest.version)
        } else {
            None
        };

        let key = (
            base_release.map(|release| release.digest),
            latest.digest,
            latest.app_id,
            self.patch_format,
        );
        let cell = {
            let responses = self
                .campaign_responses
                .read()
                .expect("no poisoned lock: caches are written outside panics");
            match responses.get(&key) {
                Some(cell) => Arc::clone(cell),
                None => {
                    drop(responses);
                    Arc::clone(
                        self.campaign_responses
                            .write()
                            .expect("no poisoned lock: caches are written outside panics")
                            .entry(key)
                            .or_default(),
                    )
                }
            }
        };
        Some(Arc::clone(cell.get_or_init(|| {
            let cached = base_release.map(|base_release| {
                (
                    base_release.version,
                    self.differential_payload(base_release, latest, tracer),
                )
            });
            let (plain, old_version, kind) = match &cached {
                Some((from, patch)) if patch.differential => (
                    patch.payload.as_slice(),
                    *from,
                    ServedKind::Differential { from: *from },
                ),
                Some((_, patch)) => (patch.payload.as_slice(), Version(0), ServedKind::Full),
                None => (latest.firmware.as_slice(), Version(0), ServedKind::Full),
            };
            let payload = match &self.content_key {
                // Broadcast responses share one ciphertext: the nonce is
                // derived from the zero device/nonce pair and the version.
                Some(key) => chacha20_xor(key, &content_nonce(0, 0, latest.version), plain),
                None => plain.to_vec(),
            };
            let manifest = Manifest {
                device_id: 0,
                nonce: 0,
                old_version,
                version: latest.version,
                size: latest.firmware.len() as u32,
                payload_size: payload.len() as u32,
                digest: latest.digest,
                link_offset: latest.link_offset,
                app_id: latest.app_id,
            };
            let signed_manifest = SignedManifest {
                manifest,
                vendor_signature: latest.vendor_signature,
                server_signature: server_sign(&manifest, &self.key),
            };
            let image = UpdateImage {
                signed_manifest,
                payload,
            };
            Arc::new(PreparedUpdate {
                wire_bytes: image.wire_len() as u64,
                image,
                kind,
            })
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn servers(seed: u64) -> (VendorServer, UpdateServer) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            VendorServer::new(SigningKey::generate(&mut rng)),
            UpdateServer::new(SigningKey::generate(&mut rng)),
        )
    }

    fn firmware(seed: u32, len: usize) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect()
    }

    fn token(nonce: u32, current: u16) -> DeviceToken {
        DeviceToken {
            device_id: 0xD1,
            nonce,
            current_version: Version(current),
        }
    }

    #[test]
    fn release_carries_valid_vendor_signature() {
        let (vendor, _) = servers(130);
        let fw = firmware(1, 2000);
        let release = vendor.release(fw.clone(), Version(2), 0x100, 0xA);
        let manifest = Manifest {
            device_id: 9,
            nonce: 9,
            old_version: Version(0),
            version: Version(2),
            size: fw.len() as u32,
            payload_size: fw.len() as u32,
            digest: sha256(&fw),
            link_offset: 0x100,
            app_id: 0xA,
        };
        vendor
            .verifying_key()
            .verify_prehashed(
                &sha256(&manifest.vendor_signed_bytes()),
                &release.vendor_signature,
            )
            .unwrap();
    }

    #[test]
    fn serves_full_update_to_non_differential_device() {
        let (vendor, mut server) = servers(131);
        let fw = firmware(2, 3000);
        server.publish(vendor.release(fw.clone(), Version(2), 0, 0xA));
        let prepared = server.prepare_update(&token(1, 0)).unwrap();
        assert_eq!(prepared.kind, ServedKind::Full);
        assert_eq!(prepared.image.payload, fw);
        assert_eq!(
            prepared.image.signed_manifest.manifest.old_version,
            Version(0)
        );
        assert_eq!(prepared.image.signed_manifest.manifest.nonce, 1);
    }

    #[test]
    fn serves_differential_to_supporting_device() {
        let (vendor, mut server) = servers(132);
        let v1 = firmware(3, 20_000);
        let mut v2 = v1.clone();
        v2[100..110].copy_from_slice(b"new-bytes!");
        server.publish(vendor.release(v1, Version(1), 0, 0xA));
        server.publish(vendor.release(v2.clone(), Version(2), 0, 0xA));
        let prepared = server.prepare_update(&token(5, 1)).unwrap();
        assert_eq!(prepared.kind, ServedKind::Differential { from: Version(1) });
        let m = prepared.image.signed_manifest.manifest;
        assert_eq!(m.old_version, Version(1));
        assert_eq!(m.version, Version(2));
        assert_eq!(m.size, v2.len() as u32);
        assert!(m.payload_size < m.size / 4, "delta should be much smaller");
    }

    #[test]
    fn no_update_when_device_is_current() {
        let (vendor, mut server) = servers(133);
        server.publish(vendor.release(firmware(4, 1000), Version(3), 0, 0xA));
        assert!(server.prepare_update(&token(1, 3)).is_none());
        // Newer-on-device (clock skew / rollback on server) also no-ops.
        assert!(server.prepare_update(&token(1, 4)).is_none());
    }

    #[test]
    fn empty_server_has_nothing_to_serve() {
        let (_, server) = servers(134);
        assert!(server.prepare_update(&token(1, 0)).is_none());
        assert!(server.latest_version().is_none());
    }

    #[test]
    fn double_signature_verifies_end_to_end() {
        let (vendor, mut server) = servers(135);
        let fw = firmware(5, 5000);
        server.publish(vendor.release(fw, Version(2), 0, 0xA));
        let prepared = server.prepare_update(&token(77, 0)).unwrap();
        prepared
            .image
            .signed_manifest
            .verify_with_keys(&vendor.verifying_key(), &server.verifying_key())
            .unwrap();
    }

    #[test]
    fn two_requests_get_distinct_server_signatures() {
        // Same release, different nonces ⇒ different signed manifests:
        // the binding that makes replaying the first response to the
        // second request detectable.
        let (vendor, mut server) = servers(136);
        server.publish(vendor.release(firmware(6, 1000), Version(2), 0, 0xA));
        let a = server.prepare_update(&token(1, 0)).unwrap();
        let b = server.prepare_update(&token(2, 0)).unwrap();
        assert_ne!(
            a.image.signed_manifest.server_signature.to_bytes().to_vec(),
            b.image.signed_manifest.server_signature.to_bytes().to_vec()
        );
        // Vendor signature is request-independent and shared.
        assert_eq!(
            a.image.signed_manifest.vendor_signature.to_bytes().to_vec(),
            b.image.signed_manifest.vendor_signature.to_bytes().to_vec()
        );
    }

    #[test]
    fn missing_base_release_falls_back_to_full() {
        let (vendor, mut server) = servers(137);
        // Only v3 is published; device runs v2.
        server.publish(vendor.release(firmware(7, 2000), Version(3), 0, 0xA));
        let prepared = server.prepare_update(&token(1, 2)).unwrap();
        assert_eq!(prepared.kind, ServedKind::Full);
    }

    #[test]
    fn incompressible_delta_falls_back_to_full() {
        let (vendor, mut server) = servers(138);
        // Completely unrelated firmwares: the patch would be larger than
        // the image itself.
        server.publish(vendor.release(firmware(8, 1500), Version(1), 0, 0xA));
        server.publish(vendor.release(firmware(999, 1500), Version(2), 0, 0xA));
        let prepared = server.prepare_update(&token(1, 1)).unwrap();
        assert_eq!(prepared.kind, ServedKind::Full);
        assert_eq!(
            prepared.image.signed_manifest.manifest.old_version,
            Version(0)
        );
    }

    #[test]
    fn cached_payloads_are_byte_identical_to_fresh_computation() {
        // Two identically-seeded servers: one answers twice (the second
        // response is served from the delta/payload caches), the other
        // computes from scratch. RFC 6979 signatures are deterministic, so
        // the full wire images must be byte-identical.
        let (vendor_a, mut server_a) = servers(140);
        let (vendor_b, mut server_b) = servers(140);
        let v1 = firmware(12, 30_000);
        let mut v2 = v1.clone();
        v2[500..540].copy_from_slice(&firmware(13, 40));
        for (vendor, server) in [(&vendor_a, &mut server_a), (&vendor_b, &mut server_b)] {
            server.publish(vendor.release(v1.clone(), Version(1), 0, 0xA));
            server.publish(vendor.release(v2.clone(), Version(2), 0, 0xA));
        }
        let first = server_a.prepare_update(&token(9, 1)).unwrap();
        let cached = server_a.prepare_update(&token(9, 1)).unwrap();
        let fresh = server_b.prepare_update(&token(9, 1)).unwrap();
        assert_eq!(first.image.to_bytes(), cached.image.to_bytes());
        assert_eq!(cached.image.to_bytes(), fresh.image.to_bytes());
        assert_eq!(cached.kind, ServedKind::Differential { from: Version(1) });
    }

    #[test]
    fn publish_retargets_cached_differential_path() {
        let (vendor, mut server) = servers(141);
        let v1 = firmware(14, 10_000);
        let mut v2 = v1.clone();
        v2[100..120].copy_from_slice(&firmware(15, 20));
        server.publish(vendor.release(v1.clone(), Version(1), 0, 0xA));
        server.publish(vendor.release(v2, Version(2), 0, 0xA));
        let before = server.prepare_update(&token(3, 1)).unwrap();
        assert_eq!(before.image.signed_manifest.manifest.version, Version(2));

        // A v3 publish must retarget the differential path: the cache is
        // content-addressed, so the v1→v2 entry simply stops matching and
        // a fresh v1→v3 entry is computed.
        let mut v3 = v1.clone();
        v3[200..230].copy_from_slice(&firmware(16, 30));
        server.publish(vendor.release(v3.clone(), Version(3), 0, 0xA));
        let after = server.prepare_update(&token(4, 1)).unwrap();
        let m = after.image.signed_manifest.manifest;
        assert_eq!(m.version, Version(3));
        assert_eq!(m.digest, sha256(&v3));
    }

    #[test]
    fn repeated_requests_hit_the_patch_cache_exactly_once_per_transition() {
        let (vendor, mut server) = servers(142);
        let v1 = firmware(17, 20_000);
        let mut v2 = v1.clone();
        v2[50..70].copy_from_slice(&firmware(18, 20));
        server.publish(vendor.release(v1, Version(1), 0, 0xA));
        server.publish(vendor.release(v2, Version(2), 0, 0xA));
        let tracer = Tracer::disabled();
        server.set_tracer(tracer.clone());

        for nonce in 0..5 {
            server.prepare_update(&token(nonce, 1)).unwrap();
        }
        let counters = tracer.counters().snapshot();
        assert_eq!(counters.patch_cache_misses, 1, "exactly one diff");
        assert_eq!(counters.patch_cache_hits, 4, "every repeat is a hit");
    }

    #[test]
    fn patch_cache_survives_publish_of_unrelated_release() {
        // Content-addressed entries stay valid across publishes: after a
        // v3 publish, a device still on v1 asking again for the (already
        // warmed) v1→v3 transition must not trigger a re-diff.
        let (vendor, mut server) = servers(143);
        let v1 = firmware(19, 15_000);
        let mut v3 = v1.clone();
        v3[10..30].copy_from_slice(&firmware(20, 20));
        server.publish(vendor.release(v1.clone(), Version(1), 0, 0xA));
        server.publish(vendor.release(v3.clone(), Version(3), 0, 0xA));
        let tracer = Tracer::disabled();
        server.set_tracer(tracer.clone());
        server.prepare_update(&token(1, 1)).unwrap();
        assert_eq!(tracer.counters().snapshot().patch_cache_misses, 1);

        // Publishing an *older* version does not change the latest
        // release, so the same transition must stay cached.
        let mut v2 = v1.clone();
        v2[40..60].copy_from_slice(&firmware(21, 20));
        server.publish(vendor.release(v2, Version(2), 0, 0xA));
        server.prepare_update(&token(2, 1)).unwrap();
        let counters = tracer.counters().snapshot();
        assert_eq!(counters.patch_cache_misses, 1, "no re-diff after publish");
        assert_eq!(counters.patch_cache_hits, 1);
    }

    #[test]
    fn warm_precomputes_so_requests_only_hit() {
        let (vendor, mut server) = servers(144);
        let v1 = firmware(22, 12_000);
        let mut v2 = v1.clone();
        v2[0..16].copy_from_slice(&firmware(23, 16));
        server.publish(vendor.release(v1, Version(1), 0, 0xA));
        server.publish(vendor.release(v2, Version(2), 0, 0xA));
        let tracer = Tracer::disabled();
        server.set_tracer(tracer.clone());

        assert!(server.warm(Version(1), &tracer));
        assert_eq!(tracer.counters().snapshot().patch_cache_misses, 1);
        server.prepare_update(&token(1, 1)).unwrap();
        let counters = tracer.counters().snapshot();
        assert_eq!(counters.patch_cache_misses, 1, "warm did the diff");
        assert_eq!(counters.patch_cache_hits, 1);

        // Nothing to warm: unknown base, base == latest, empty server.
        assert!(!server.warm(Version(9), &tracer));
        assert!(!server.warm(Version(2), &tracer));
        let (_, empty) = servers(145);
        assert!(!empty.warm(Version(1), &tracer));
    }

    #[test]
    fn framed_format_serves_sniffable_framed_container() {
        let (vendor, mut server) = servers(146);
        let v1 = firmware(24, 30_000);
        let mut v2 = v1.clone();
        v2[1000..1040].copy_from_slice(&firmware(25, 40));
        server.publish(vendor.release(v1, Version(1), 0, 0xA));
        server.publish(vendor.release(v2.clone(), Version(2), 0, 0xA));
        server.set_patch_format(PatchFormat::Framed);
        server.set_diff_threads(2);

        let prepared = server.prepare_update(&token(7, 1)).unwrap();
        assert_eq!(prepared.kind, ServedKind::Differential { from: Version(1) });
        assert_eq!(
            PatchFormat::detect(&prepared.image.payload),
            Some(PatchFormat::Framed)
        );
        assert!(prepared.image.payload.len() < v2.len() / 4);
        // The framed payload applies back to the exact new image.
        let applied =
            upkit_delta::patch_framed(&server.releases[&1].firmware, &prepared.image.payload)
                .unwrap();
        assert_eq!(applied, v2);
    }

    #[test]
    fn raw_and_framed_cache_entries_do_not_collide() {
        // Same transition requested in both formats: two misses, then a
        // hit per format — the format is part of the cache key.
        let (vendor, mut server) = servers(147);
        let v1 = firmware(26, 10_000);
        let mut v2 = v1.clone();
        v2[5..25].copy_from_slice(&firmware(27, 20));
        server.publish(vendor.release(v1, Version(1), 0, 0xA));
        server.publish(vendor.release(v2, Version(2), 0, 0xA));
        let tracer = Tracer::disabled();
        server.set_tracer(tracer.clone());

        let raw = server.prepare_update(&token(1, 1)).unwrap();
        server.set_patch_format(PatchFormat::Framed);
        let framed = server.prepare_update(&token(1, 1)).unwrap();
        assert_ne!(raw.image.payload, framed.image.payload);
        server.prepare_update(&token(2, 1)).unwrap();
        let counters = tracer.counters().snapshot();
        assert_eq!(counters.patch_cache_misses, 2);
        assert_eq!(counters.patch_cache_hits, 1);
    }

    #[test]
    fn latest_version_tracks_publications() {
        let (vendor, mut server) = servers(139);
        server.publish(vendor.release(firmware(9, 100), Version(1), 0, 0xA));
        assert_eq!(server.latest_version(), Some(Version(1)));
        server.publish(vendor.release(firmware(10, 100), Version(5), 0, 0xA));
        assert_eq!(server.latest_version(), Some(Version(5)));
        server.publish(vendor.release(firmware(11, 100), Version(3), 0, 0xA));
        assert_eq!(server.latest_version(), Some(Version(5)));
    }
}
