//! UpKit: a portable, lightweight software-update framework for constrained
//! IoT devices — the core of the ICDCS 2019 paper's contribution.
//!
//! UpKit covers the *whole* update process in one coherent design instead
//! of stitching together independent tools (mcumgr + mcuboot, LwM2M +
//! mcuboot):
//!
//! * **Generation** — [`generation::VendorServer`] builds and vendor-signs
//!   releases.
//! * **Propagation** — [`generation::UpdateServer`] answers device tokens
//!   with double-signed, per-request update images (full or differential);
//!   the on-device [`agent::UpdateAgent`] FSM receives them through any
//!   push or pull transport.
//! * **Verification** — the shared [`verifier`] module runs in *both* the
//!   update agent (early rejection: invalid manifests stop the transfer,
//!   invalid firmware stops the reboot) and the bootloader.
//! * **Loading** — [`bootloader::Bootloader`] boots the newest valid image:
//!   in place for A/B slot configurations, via swap/copy for static ones.
//!
//! Supporting modules: [`pipeline`] (decompression → patching → buffer →
//! writer; differential updates stream through without a staging slot —
//! plus the future-work decryption stage), [`image`] (on-flash slot
//! layout), [`keys`] (trust anchors, inline or HSM-resident), and
//! [`freshness`] (the timestamp-vs-token policy comparison from the
//! paper's design discussion).
//!
//! # Example: a complete update, end to end
//!
//! ```
//! use std::sync::Arc;
//! use rand::SeedableRng;
//! use upkit_core::agent::{AgentConfig, AgentPhase, UpdateAgent, UpdatePlan};
//! use upkit_core::bootloader::{BootConfig, Bootloader, BootMode};
//! use upkit_core::generation::{UpdateServer, VendorServer};
//! use upkit_core::image::FIRMWARE_OFFSET;
//! use upkit_core::keys::TrustAnchors;
//! use upkit_crypto::backend::TinyCryptBackend;
//! use upkit_crypto::ecdsa::SigningKey;
//! use upkit_flash::{configuration_a, standard, FlashGeometry, SimFlash};
//! use upkit_manifest::Version;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let vendor = VendorServer::new(SigningKey::generate(&mut rng));
//! let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
//! let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
//!
//! // Vendor releases firmware v2; the update server publishes it.
//! server.publish(vendor.release(vec![0xAB; 1024], Version(2), 0x100, 0xA));
//!
//! // Device side: flash with two bootable slots, agent, bootloader.
//! let mut layout = configuration_a(
//!     Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
//!     4096 * 16,
//! ).unwrap();
//! let backend = Arc::new(TinyCryptBackend);
//! let mut agent = UpdateAgent::new(
//!     backend.clone(),
//!     anchors,
//!     AgentConfig::new(7, 0xA, true),
//! );
//!
//! // Request → token → server prepares a double-signed image → agent
//! // verifies and stores it.
//! let plan = UpdatePlan {
//!     target_slot: standard::SLOT_B,
//!     current_slot: standard::SLOT_A,
//!     installed_version: Version(0),
//!     installed_size: 0,
//!     allowed_link_offsets: vec![0x100],
//!     max_firmware_size: 4096 * 16 - FIRMWARE_OFFSET,
//! };
//! let token = agent.request_device_token(&mut layout, plan, 42).unwrap();
//! let prepared = server.prepare_update(&token).unwrap();
//! let mut phase = AgentPhase::NeedMore;
//! for chunk in prepared.image.to_bytes().chunks(200) {
//!     phase = agent.push_data(&mut layout, chunk).unwrap();
//! }
//! assert_eq!(phase, AgentPhase::Complete);
//!
//! // Reboot: the bootloader verifies again and jumps to the new image.
//! let boot = Bootloader::new(backend, anchors, BootConfig {
//!     device_id: 7,
//!     app_id: 0xA,
//!     allowed_link_offsets: vec![0x100],
//!     max_firmware_size: 4096 * 16 - FIRMWARE_OFFSET,
//!     mode: BootMode::AB { slots: vec![standard::SLOT_A, standard::SLOT_B] },
//!     recovery_slot: None,
//! });
//! let outcome = boot.boot(&mut layout).unwrap();
//! assert_eq!(outcome.version, Version(2));
//! ```

//! # `no_std` support
//!
//! With `--no-default-features` the crate builds as `no_std + alloc` and
//! keeps the device half: [`agent`], [`bootloader`], [`pipeline`],
//! [`verifier`], [`image`], [`keys`], and [`freshness`]. The server half —
//! [`generation`] (rand) and [`parallel`] (threads) — needs the `std`
//! feature.

#![cfg_attr(not(feature = "std"), no_std)]
#![warn(missing_docs)]
#![warn(clippy::std_instead_of_core)]
#![warn(clippy::std_instead_of_alloc)]
#![warn(clippy::alloc_instead_of_core)]

extern crate alloc;

pub mod agent;
pub mod bootloader;
pub mod components;
pub mod freshness;
#[cfg(feature = "std")]
pub mod generation;
pub mod image;
pub mod keys;
#[cfg(feature = "std")]
pub mod parallel;
pub mod pipeline;
pub mod verifier;

pub use agent::{AgentConfig, AgentError, AgentPhase, AgentState, UpdateAgent, UpdatePlan};
pub use bootloader::{BootAction, BootConfig, BootError, BootMode, BootOutcome, Bootloader};
pub use components::{
    ComponentImage, ComponentSlots, StageError, JOURNAL_COMPLETE_OFFSET, JOURNAL_DONE_OFFSET,
    JOURNAL_LEN, JOURNAL_RECORD_MAX,
};
#[cfg(feature = "std")]
pub use generation::{PreparedUpdate, Release, ServedKind, UpdateServer, VendorServer};
pub use keys::{KeyAnchor, TrustAnchors};
#[cfg(feature = "std")]
pub use parallel::ParallelGenerator;
pub use pipeline::{Pipeline, PipelineError};
pub use verifier::{FirmwareDigester, Verifier, VerifyContext, VerifyError};
