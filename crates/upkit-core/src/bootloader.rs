//! UpKit's bootloader: boot-time verification plus the loading phase.
//!
//! The bootloader re-verifies the stored update after reboot — the agent's
//! checks cannot rule out a power cut mid-propagation or a brown-out before
//! verification completed — and then *loads* the newest valid image:
//!
//! * **A/B mode** (Fig. 6, Configuration A): both slots are bootable; the
//!   bootloader jumps straight to the newest valid one. Loading is O(1) —
//!   the 92 % loading-time reduction of Fig. 8c.
//! * **Static mode** (Configuration B): one bootable slot; a newer valid
//!   image in the staging slot is first swapped (or copied) into it.
//!
//! Like the paper's bootloader (and mcuboot), UpKit does not update the
//! bootloader itself; bugs in the *agent's* verifier can be fixed by a
//! normal firmware update, which is the mitigation path the paper
//! describes for bootloader-verifier vulnerabilities.

use alloc::sync::Arc;
use alloc::vec::Vec;

use upkit_crypto::backend::SecurityBackend;
use upkit_flash::{FlashError, LayoutError, MemoryLayout, SlotId};
use upkit_manifest::{SignedManifest, Version};
use upkit_trace::{Counters, Event};

use crate::components::{
    check_record_signatures, journal_marker_set, read_journal_record, set_journal_marker,
    slots_for_entry, ComponentImage, ComponentSlots, StageError, JOURNAL_COMPLETE_OFFSET,
    JOURNAL_DONE_OFFSET, JOURNAL_RECORD_MAX,
};
use crate::image::{read_firmware_chunks, read_manifest};
use crate::keys::TrustAnchors;
use crate::verifier::{FirmwareDigester, Verifier, VerifyContext, VerifyError};

/// Loading strategy, set by the memory configuration.
#[derive(Clone, Debug)]
pub enum BootMode {
    /// Two bootable slots; boot the newest valid image in place.
    AB {
        /// The bootable slots, in preference order on version ties.
        slots: Vec<SlotId>,
    },
    /// One bootable slot plus a staging slot whose images must be moved.
    Static {
        /// The slot the MCU can execute from.
        bootable: SlotId,
        /// The staging (non-bootable) slot.
        staging: SlotId,
        /// Whether loading swaps (preserving a rollback image) or copies.
        swap: bool,
    },
    /// A set of independently-versioned components, each with a bootable
    /// and a staging slot, flipped atomically through a commit journal
    /// (see [`crate::components`]).
    MultiComponent {
        /// The component slot pairs, in dependency order.
        components: Vec<ComponentSlots>,
        /// The journal slot holding the commit record and markers.
        journal: SlotId,
    },
}

/// Device-constant bootloader configuration.
#[derive(Clone, Debug)]
pub struct BootConfig {
    /// This device's unique identifier.
    pub device_id: u32,
    /// Application/hardware identifier.
    pub app_id: u32,
    /// Link offsets acceptable per bootable slot (images must be linked
    /// for the address they execute from).
    pub allowed_link_offsets: Vec<u32>,
    /// Maximum firmware size a slot can hold.
    pub max_firmware_size: u32,
    /// Loading strategy.
    pub mode: BootMode,
    /// Optional recovery slot (Fig. 6): a non-bootable slot holding a
    /// known-good image, used only when no regular slot verifies. The
    /// image is copied into the first bootable slot before booting.
    pub recovery_slot: Option<SlotId>,
}

/// What the loading phase did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BootAction {
    /// A/B: jumped directly to the newest valid slot.
    JumpedInPlace,
    /// Static: swapped staging into the bootable slot, then booted.
    SwappedAndBooted,
    /// Static: copied staging into the bootable slot, then booted.
    CopiedAndBooted,
    /// Booted the existing image (no newer valid update found).
    BootedExisting,
    /// All regular slots were invalid; the recovery image was copied into
    /// the bootable slot and booted.
    RestoredFromRecovery,
    /// Multi-component: a pending commit journal was replayed — every
    /// not-yet-done component was copied from staging into its bootable
    /// slot and the record was marked complete. Loading moved flash, so
    /// the fixed-point loop boots again to confirm.
    CommittedSet,
}

/// A successful boot decision.
#[derive(Clone, Debug)]
pub struct BootOutcome {
    /// The slot whose image is now running.
    pub booted_slot: SlotId,
    /// Version of the running image.
    pub version: Version,
    /// What the loading phase did to get there.
    pub action: BootAction,
    /// Slots whose images failed verification and were ignored.
    pub rejected_slots: Vec<(SlotId, VerifyError)>,
}

/// Boot failure: no valid image anywhere.
#[derive(Debug)]
#[non_exhaustive]
pub enum BootError {
    /// No slot contained a valid image — the device is unbootable (the
    /// situation UpKit's agent-side verification exists to prevent).
    NoValidImage(Vec<(SlotId, VerifyError)>),
    /// Flash failure during loading.
    Layout(LayoutError),
}

impl core::fmt::Display for BootError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoValidImage(rejected) => {
                write!(
                    f,
                    "no valid image in any slot ({} rejected)",
                    rejected.len()
                )
            }
            Self::Layout(e) => write!(f, "flash error during loading: {e}"),
        }
    }
}

impl core::error::Error for BootError {}

impl From<LayoutError> for BootError {
    fn from(e: LayoutError) -> Self {
        Self::Layout(e)
    }
}

/// Result of driving the bootloader to a fixed point with
/// [`Bootloader::boot_to_fixed_point`].
#[derive(Clone, Debug)]
pub struct FixedPointReport {
    /// Outcome of the final, stable boot.
    pub outcome: BootOutcome,
    /// Total boot attempts taken, including boots that failed with a
    /// power cut and boots that moved images around.
    pub boots: u32,
}

/// Why the reboot loop could not reach a stable image.
#[derive(Debug)]
#[non_exhaustive]
pub enum FixedPointError {
    /// A boot failed for a reason a reboot cannot fix: the device is
    /// bricked — the exact situation UpKit's design promises to prevent.
    Brick {
        /// The unrecoverable boot failure.
        error: BootError,
        /// Boot attempts made before giving up.
        boots: u32,
    },
    /// The loop exceeded its boot budget without stabilising.
    NoConvergence {
        /// Boot attempts made.
        boots: u32,
    },
}

impl core::fmt::Display for FixedPointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Brick { error, boots } => {
                write!(f, "device bricked after {boots} boot(s): {error}")
            }
            Self::NoConvergence { boots } => {
                write!(f, "no stable image after {boots} boot(s)")
            }
        }
    }
}

impl core::error::Error for FixedPointError {
    fn source(&self) -> Option<&(dyn core::error::Error + 'static)> {
        match self {
            Self::Brick { error, .. } => Some(error),
            Self::NoConvergence { .. } => None,
        }
    }
}

/// The bootloader.
pub struct Bootloader {
    backend: Arc<dyn SecurityBackend>,
    anchors: TrustAnchors,
    config: BootConfig,
}

impl core::fmt::Debug for Bootloader {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Bootloader")
            .field("mode", &self.config.mode)
            .finish_non_exhaustive()
    }
}

impl Bootloader {
    /// Creates a bootloader.
    #[must_use]
    pub fn new(
        backend: Arc<dyn SecurityBackend>,
        anchors: TrustAnchors,
        config: BootConfig,
    ) -> Self {
        Self {
            backend,
            anchors,
            config,
        }
    }

    /// Verifies a single slot's image end to end: manifest parse, field
    /// checks, double signature, and firmware digest over the stored bytes.
    ///
    /// Returns the verified manifest, or the reason the slot is unusable.
    pub fn verify_slot(
        &self,
        layout: &mut MemoryLayout,
        slot: SlotId,
    ) -> Result<SignedManifest, VerifyError> {
        let signed = match read_manifest(layout, slot) {
            Ok(Some(signed)) => signed,
            // Empty or unreadable header: treat as "no image".
            Ok(None) | Err(_) => return Err(VerifyError::DigestMismatch),
        };
        let ctx = VerifyContext {
            device_id: self.config.device_id,
            expected_nonce: None,
            // The bootloader accepts any version that verifies — version
            // *comparison* happens across slots, not against a fixed bar.
            installed_version: Version(0),
            supports_differential: true,
            app_id: self.config.app_id,
            allowed_link_offsets: self.config.allowed_link_offsets.clone(),
            max_size: self.config.max_firmware_size,
        };
        let verifier = Verifier::new(self.backend.as_ref(), &self.anchors);
        // Field checks relevant at boot: skip the differential-base check
        // (the patch was already applied; `old_version` is historical).
        let mut manifest = signed.manifest;
        manifest.old_version = Version(0);
        manifest.payload_size = manifest.size;
        verifier.check_fields(&manifest, &ctx)?;
        let signatures = verifier.check_signatures(&signed);
        // Boot-time re-verification also covers both signatures.
        Counters::add(&layout.tracer().counters().sig_verifications, 2);
        signatures?;

        let mut digester = FirmwareDigester::new();
        read_firmware_chunks(layout, slot, signed.manifest.size, 4096, |chunk| {
            digester.update(chunk)
        })
        .map_err(|_| VerifyError::DigestMismatch)?;
        verifier.verify_firmware_digest(&signed.manifest, &digester.finalize())?;
        Ok(signed)
    }

    /// Runs verification and the loading phase; returns which slot is now
    /// executing. When every regular slot fails verification and a
    /// recovery slot is configured, falls back to restoring the recovery
    /// image.
    pub fn boot(&self, layout: &mut MemoryLayout) -> Result<BootOutcome, BootError> {
        let result = self.boot_inner(layout);
        if let Ok(outcome) = &result {
            Counters::add(&layout.tracer().counters().boots, 1);
            let slot = outcome.booted_slot.0;
            let version = u64::from(outcome.version.0);
            layout.tracer().emit(|| Event::Boot { slot, version });
        }
        result
    }

    /// Reboots the device until the boot decision is a *fixed point*: a
    /// boot whose loading phase moved no flash (an in-place jump or
    /// booting the existing image), which a further reboot would simply
    /// repeat.
    ///
    /// Each iteration models one power-on: every armed power cut is
    /// cleared first (power returned — under fault injection this may
    /// arm a planned *second* cut on the recovery path), then the
    /// bootloader runs. A boot that fails with [`FlashError::PowerLoss`]
    /// is survivable by definition — the device just reboots again. Any
    /// other failure is a brick, the condition the never-brick invariant
    /// forbids.
    pub fn boot_to_fixed_point(
        &self,
        layout: &mut MemoryLayout,
        max_boots: u32,
    ) -> Result<FixedPointReport, FixedPointError> {
        let mut boots = 0u32;
        loop {
            if boots >= max_boots {
                return Err(FixedPointError::NoConvergence { boots });
            }
            layout.disarm_power_cuts();
            boots += 1;
            match self.boot(layout) {
                Ok(outcome)
                    if matches!(
                        outcome.action,
                        BootAction::JumpedInPlace | BootAction::BootedExisting
                    ) =>
                {
                    return Ok(FixedPointReport { outcome, boots });
                }
                // Loading moved an image (swap/copy/restore): boot again
                // to confirm the result is stable.
                Ok(_) => {}
                // Power cut mid-loading: the next iteration reboots with
                // power restored.
                Err(BootError::Layout(LayoutError::Flash(FlashError::PowerLoss))) => {}
                Err(error) => return Err(FixedPointError::Brick { error, boots }),
            }
        }
    }

    fn boot_inner(&self, layout: &mut MemoryLayout) -> Result<BootOutcome, BootError> {
        let regular = match self.config.mode.clone() {
            BootMode::AB { slots } => self.boot_ab(layout, &slots),
            BootMode::Static {
                bootable,
                staging,
                swap,
            } => self.boot_static(layout, bootable, staging, swap),
            BootMode::MultiComponent {
                components,
                journal,
            } => self.boot_multi(layout, &components, journal),
        };
        match regular {
            Err(BootError::NoValidImage(mut rejected)) => {
                let Some(recovery) = self.config.recovery_slot else {
                    return Err(BootError::NoValidImage(rejected));
                };
                match self.verify_slot(layout, recovery) {
                    Ok(signed) => {
                        let bootable = match &self.config.mode {
                            BootMode::AB { slots } => slots[0],
                            BootMode::Static { bootable, .. } => *bootable,
                            BootMode::MultiComponent { components, .. } => components[0].bootable,
                        };
                        layout.copy_slot(recovery, bootable)?;
                        Ok(BootOutcome {
                            booted_slot: bootable,
                            version: signed.manifest.version,
                            action: BootAction::RestoredFromRecovery,
                            rejected_slots: rejected,
                        })
                    }
                    Err(e) => {
                        rejected.push((recovery, e));
                        Err(BootError::NoValidImage(rejected))
                    }
                }
            }
            other => other,
        }
    }

    fn boot_ab(
        &self,
        layout: &mut MemoryLayout,
        slots: &[SlotId],
    ) -> Result<BootOutcome, BootError> {
        let mut rejected = Vec::new();
        let mut best: Option<(SlotId, Version)> = None;
        for &slot in slots {
            match self.verify_slot(layout, slot) {
                Ok(signed) => {
                    let version = signed.manifest.version;
                    if best.is_none_or(|(_, v)| version > v) {
                        best = Some((slot, version));
                    }
                }
                Err(e) => rejected.push((slot, e)),
            }
        }
        match best {
            Some((slot, version)) => Ok(BootOutcome {
                booted_slot: slot,
                version,
                action: BootAction::JumpedInPlace,
                rejected_slots: rejected,
            }),
            None => Err(BootError::NoValidImage(rejected)),
        }
    }

    fn boot_static(
        &self,
        layout: &mut MemoryLayout,
        bootable: SlotId,
        staging: SlotId,
        swap: bool,
    ) -> Result<BootOutcome, BootError> {
        let mut rejected = Vec::new();
        let current = match self.verify_slot(layout, bootable) {
            Ok(signed) => Some(signed.manifest.version),
            Err(e) => {
                rejected.push((bootable, e));
                None
            }
        };
        let staged = match self.verify_slot(layout, staging) {
            Ok(signed) => Some(signed.manifest.version),
            Err(e) => {
                rejected.push((staging, e));
                None
            }
        };

        match (current, staged) {
            // A strictly newer valid image is staged: load it.
            (cur, Some(staged_version)) if cur.is_none_or(|c| staged_version > c) => {
                let action = if swap {
                    layout.swap_slots(bootable, staging)?;
                    BootAction::SwappedAndBooted
                } else {
                    layout.copy_slot(staging, bootable)?;
                    BootAction::CopiedAndBooted
                };
                Ok(BootOutcome {
                    booted_slot: bootable,
                    version: staged_version,
                    action,
                    rejected_slots: rejected,
                })
            }
            // Keep what we have (also the rollback path when staging is
            // invalid).
            (Some(version), _) => Ok(BootOutcome {
                booted_slot: bootable,
                version,
                action: BootAction::BootedExisting,
                rejected_slots: rejected,
            }),
            (None, None) => Err(BootError::NoValidImage(rejected)),
            // (None, Some(_)) always matches the first arm (its guard is
            // vacuously true when no current image exists).
            (None, Some(_)) => unreachable!("guard covers missing current image"),
        }
    }

    /// Multi-component boot: replay a pending commit journal if one
    /// exists, otherwise verify every bootable component — restoring any
    /// broken one from its staged copy (per-module rollback) — and boot
    /// the set.
    fn boot_multi(
        &self,
        layout: &mut MemoryLayout,
        components: &[ComponentSlots],
        journal: SlotId,
    ) -> Result<BootOutcome, BootError> {
        let record = match read_journal_record(layout, journal)? {
            // The record's signatures extend over the component table; a
            // record that does not verify never commits anything.
            Some(record) => {
                Counters::add(&layout.tracer().counters().sig_verifications, 2);
                check_record_signatures(self.backend.as_ref(), &self.anchors, &record)
                    .ok()
                    .map(|()| record)
            }
            None => None,
        };

        if let Some(record) = &record {
            let table = record
                .multi
                .components
                .as_ref()
                .expect("journal records always carry a table");
            // Only a table whose every entry maps onto this device's slot
            // pairs can replay; anything else is ignored like a torn
            // record (the installer refuses to write such a record, so
            // this needs a trusted server mistake to ever trigger).
            let mapped = table
                .entries()
                .iter()
                .all(|e| slots_for_entry(components, e).is_some());
            let complete = journal_marker_set(layout, journal, JOURNAL_COMPLETE_OFFSET)?;
            if mapped && !complete {
                return self.replay_journal(layout, components, journal, record);
            }
        }

        // Stable path: no pending transaction. Verify every bootable
        // component; a component that fails but whose staged copy
        // verifies is restored from staging (per-module rollback).
        let table = record.as_ref().and_then(|r| r.multi.components.as_ref());
        let mut rejected = Vec::new();
        let mut restored = false;
        let mut version: Option<Version> = None;
        for comp in components {
            match self.verify_slot(layout, comp.bootable) {
                Ok(signed) => {
                    let v = signed.manifest.version;
                    // The set is only as new as its oldest member.
                    if version.is_none_or(|best| v < best) {
                        version = Some(v);
                    }
                }
                Err(e) => match self.verify_slot(layout, comp.staging) {
                    Ok(_) => {
                        layout.copy_slot(comp.staging, comp.bootable)?;
                        Counters::add(&layout.tracer().counters().components_rolled_back, 1);
                        let component = table
                            .and_then(|t| {
                                t.entries()
                                    .iter()
                                    .find(|entry| entry.slot == comp.bootable.0)
                            })
                            .map_or(u64::from(comp.bootable.0), |entry| {
                                u64::from(entry.component_id)
                            });
                        let slot = comp.bootable.0;
                        layout
                            .tracer()
                            .emit(|| Event::ComponentRollback { component, slot });
                        restored = true;
                    }
                    Err(e2) => {
                        rejected.push((comp.bootable, e));
                        rejected.push((comp.staging, e2));
                    }
                },
            }
        }
        if !rejected.is_empty() {
            return Err(BootError::NoValidImage(rejected));
        }
        if restored {
            // Flash moved: boot again so the restored component is
            // verified on the stable pass.
            return Ok(BootOutcome {
                booted_slot: components[0].bootable,
                version: version.unwrap_or(Version(0)),
                action: BootAction::RestoredFromRecovery,
                rejected_slots: Vec::new(),
            });
        }
        Ok(BootOutcome {
            booted_slot: components[0].bootable,
            version: version.unwrap_or(Version(0)),
            action: BootAction::BootedExisting,
            rejected_slots: Vec::new(),
        })
    }

    /// Rolls a valid, incomplete commit record forward: copy every
    /// not-yet-done component from staging to its bootable slot in table
    /// (dependency) order, marking each done, then mark the set complete.
    ///
    /// `copy_slot` never modifies its source, so re-running any prefix of
    /// this sequence after an interruption — including a second cut mid
    /// replay — converges to the same complete new set.
    fn replay_journal(
        &self,
        layout: &mut MemoryLayout,
        components: &[ComponentSlots],
        journal: SlotId,
        record: &upkit_manifest::SignedMultiManifest,
    ) -> Result<BootOutcome, BootError> {
        let table = record
            .multi
            .components
            .as_ref()
            .expect("caller checked the table");
        for (i, entry) in table.entries().iter().enumerate() {
            let done_at = JOURNAL_DONE_OFFSET + i as u32;
            if journal_marker_set(layout, journal, done_at)? {
                continue;
            }
            let slots = slots_for_entry(components, entry).expect("caller checked the mapping");
            layout.copy_slot(slots.staging, slots.bootable)?;
            set_journal_marker(layout, journal, done_at)?;
            Counters::add(&layout.tracer().counters().components_installed, 1);
            let component = u64::from(entry.component_id);
            let slot = entry.slot;
            let version = u64::from(entry.version.0);
            layout.tracer().emit(|| Event::ComponentCommit {
                component,
                slot,
                version,
            });
        }
        set_journal_marker(layout, journal, JOURNAL_COMPLETE_OFFSET)?;
        Ok(BootOutcome {
            booted_slot: components[0].bootable,
            version: record.multi.manifest.version,
            action: BootAction::CommittedSet,
            rejected_slots: Vec::new(),
        })
    }

    /// Phase one of a transactional multi-component install: stage every
    /// component of `record`'s table into its staging slot (dependency
    /// order), health-check each staged image, and — only if the whole
    /// set verifies — write the commit record into the journal slot.
    ///
    /// The flip itself happens on the next boot, when the bootloader
    /// replays the journal. Until the record is fully written and
    /// verifiable, a cut anywhere leaves the old set untouched; a
    /// component failing its health check aborts the install with its
    /// staging slot erased again (per-module rollback) and nothing
    /// committed.
    pub fn stage_component_set(
        &self,
        layout: &mut MemoryLayout,
        record: &upkit_manifest::SignedMultiManifest,
        images: &[ComponentImage],
    ) -> Result<(), StageError> {
        let BootMode::MultiComponent {
            components,
            journal,
        } = self.config.mode.clone()
        else {
            return Err(StageError::SetMismatch);
        };
        record.multi.validate().map_err(StageError::Record)?;
        let Some(table) = &record.multi.components else {
            return Err(StageError::Record(
                upkit_manifest::ManifestError::BadComponentTable,
            ));
        };
        if record.wire_len() > JOURNAL_RECORD_MAX
            || table.len() != images.len()
            || table
                .entries()
                .iter()
                .any(|e| slots_for_entry(&components, e).is_none())
        {
            return Err(StageError::SetMismatch);
        }
        check_record_signatures(self.backend.as_ref(), &self.anchors, record).map_err(|error| {
            StageError::ComponentHealth {
                component_id: 0,
                error,
            }
        })?;

        // Invalidate any previous commit record *before* touching staging
        // slots: from here until the new record lands, boot sees no valid
        // journal and keeps the old set.
        layout.erase_slot(journal)?;

        for (entry, image) in table.entries().iter().zip(images) {
            let slots = slots_for_entry(&components, entry).expect("checked above");
            // The image must be the one the signed table promises.
            let m = &image.signed_manifest.manifest;
            if m.version != entry.version
                || m.digest != entry.digest
                || m.size != entry.size
                || image.firmware.len() as u64 != u64::from(entry.size)
            {
                return Err(StageError::SetMismatch);
            }
            layout.erase_slot(slots.staging)?;
            crate::image::write_manifest(layout, slots.staging, &image.signed_manifest)?;
            layout.write_slot(
                slots.staging,
                crate::image::FIRMWARE_OFFSET,
                &image.firmware,
            )?;
            // Health check: full per-slot verification of what actually
            // landed in flash (a bit flip between write and check is
            // caught here, before anything can commit).
            if let Err(error) = self.verify_slot(layout, slots.staging) {
                layout.erase_slot(slots.staging)?;
                Counters::add(&layout.tracer().counters().components_rolled_back, 1);
                let component = u64::from(entry.component_id);
                let slot = entry.slot;
                layout
                    .tracer()
                    .emit(|| Event::ComponentRollback { component, slot });
                return Err(StageError::ComponentHealth {
                    component_id: entry.component_id,
                    error,
                });
            }
        }

        // Commit point: the record becomes visible in one write. A torn
        // write here fails signature verification at boot and the
        // transaction never happened.
        layout.write_slot(journal, 0, &record.to_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_crypto::backend::TinyCryptBackend;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_crypto::sha256::sha256;
    use upkit_flash::{configuration_a, configuration_b, standard, FlashGeometry, SimFlash};
    use upkit_manifest::{server_sign, vendor_sign, Manifest};

    const SLOT_SIZE: u32 = 4096 * 8;
    const LINK: u32 = 0x2000;
    const APP: u32 = 0x77;
    const DEV: u32 = 0x42;

    struct Fixture {
        vendor: SigningKey,
        server: SigningKey,
    }

    fn keys(seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        Fixture {
            vendor: SigningKey::generate(&mut rng),
            server: SigningKey::generate(&mut rng),
        }
    }

    fn geometry() -> FlashGeometry {
        FlashGeometry {
            size: 4096 * 32,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        }
    }

    fn bootloader(fix: &Fixture, mode: BootMode) -> Bootloader {
        Bootloader::new(
            Arc::new(TinyCryptBackend),
            TrustAnchors::inline(&fix.vendor.verifying_key(), &fix.server.verifying_key()),
            BootConfig {
                device_id: DEV,
                app_id: APP,
                allowed_link_offsets: vec![LINK],
                max_firmware_size: SLOT_SIZE - crate::image::FIRMWARE_OFFSET,
                mode,
                recovery_slot: None,
            },
        )
    }

    fn install(
        fix: &Fixture,
        layout: &mut MemoryLayout,
        slot: SlotId,
        version: u16,
        firmware: &[u8],
    ) {
        let manifest = Manifest {
            device_id: DEV,
            nonce: 1,
            old_version: Version(0),
            version: Version(version),
            size: firmware.len() as u32,
            payload_size: firmware.len() as u32,
            digest: sha256(firmware),
            link_offset: LINK,
            app_id: APP,
        };
        let signed = SignedManifest {
            manifest,
            vendor_signature: vendor_sign(&manifest, &fix.vendor),
            server_signature: server_sign(&manifest, &fix.server),
        };
        layout.erase_slot(slot).unwrap();
        crate::image::write_manifest(layout, slot, &signed).unwrap();
        layout
            .write_slot(slot, crate::image::FIRMWARE_OFFSET, firmware)
            .unwrap();
    }

    fn ab_layout() -> MemoryLayout {
        configuration_a(Box::new(SimFlash::new(geometry())), SLOT_SIZE).unwrap()
    }

    fn static_layout() -> MemoryLayout {
        configuration_b(Box::new(SimFlash::new(geometry())), None, SLOT_SIZE).unwrap()
    }

    #[test]
    fn ab_boots_newest_valid_slot() {
        let fix = keys(110);
        let mut layout = ab_layout();
        install(&fix, &mut layout, standard::SLOT_A, 1, b"old firmware");
        install(&fix, &mut layout, standard::SLOT_B, 2, b"new firmware");
        let boot = bootloader(
            &fix,
            BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
        );
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.booted_slot, standard::SLOT_B);
        assert_eq!(outcome.version, Version(2));
        assert_eq!(outcome.action, BootAction::JumpedInPlace);
        assert!(outcome.rejected_slots.is_empty());
        // A/B never moves data: no erases or writes at boot.
        layout.reset_stats();
        boot.boot(&mut layout).unwrap();
        assert_eq!(layout.total_stats().sectors_erased, 0);
        assert_eq!(layout.total_stats().bytes_written, 0);
    }

    #[test]
    fn ab_rolls_back_when_newest_is_corrupt() {
        let fix = keys(111);
        let mut layout = ab_layout();
        install(&fix, &mut layout, standard::SLOT_A, 1, b"good old");
        install(&fix, &mut layout, standard::SLOT_B, 2, b"bad new!");
        // Corrupt the newer firmware body (bit-clear is always legal).
        layout
            .write_slot(standard::SLOT_B, crate::image::FIRMWARE_OFFSET, &[0x00])
            .unwrap();
        let boot = bootloader(
            &fix,
            BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
        );
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.booted_slot, standard::SLOT_A);
        assert_eq!(outcome.version, Version(1));
        assert_eq!(outcome.rejected_slots.len(), 1);
        assert_eq!(outcome.rejected_slots[0].0, standard::SLOT_B);
        assert_eq!(outcome.rejected_slots[0].1, VerifyError::DigestMismatch);
    }

    #[test]
    fn ab_with_both_slots_invalid_fails() {
        let fix = keys(112);
        let mut layout = ab_layout();
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout.erase_slot(standard::SLOT_B).unwrap();
        let boot = bootloader(
            &fix,
            BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
        );
        assert!(matches!(
            boot.boot(&mut layout),
            Err(BootError::NoValidImage(_))
        ));
    }

    #[test]
    fn static_swaps_newer_staged_image() {
        let fix = keys(113);
        let mut layout = static_layout();
        install(&fix, &mut layout, standard::SLOT_A, 1, b"running v1");
        install(&fix, &mut layout, standard::SLOT_B, 2, b"staged v2!");
        let boot = bootloader(
            &fix,
            BootMode::Static {
                bootable: standard::SLOT_A,
                staging: standard::SLOT_B,
                swap: true,
            },
        );
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.booted_slot, standard::SLOT_A);
        assert_eq!(outcome.version, Version(2));
        assert_eq!(outcome.action, BootAction::SwappedAndBooted);
        // v2 now lives in the bootable slot; v1 preserved in staging.
        let mut buf = [0u8; 10];
        layout
            .read_slot(standard::SLOT_A, crate::image::FIRMWARE_OFFSET, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"staged v2!");
        layout
            .read_slot(standard::SLOT_B, crate::image::FIRMWARE_OFFSET, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"running v1");
    }

    #[test]
    fn static_copy_mode_discards_rollback() {
        let fix = keys(114);
        let mut layout = static_layout();
        install(&fix, &mut layout, standard::SLOT_A, 1, b"running v1");
        install(&fix, &mut layout, standard::SLOT_B, 2, b"staged v2!");
        let boot = bootloader(
            &fix,
            BootMode::Static {
                bootable: standard::SLOT_A,
                staging: standard::SLOT_B,
                swap: false,
            },
        );
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.action, BootAction::CopiedAndBooted);
        let mut buf = [0u8; 10];
        layout
            .read_slot(standard::SLOT_A, crate::image::FIRMWARE_OFFSET, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"staged v2!");
    }

    #[test]
    fn static_keeps_current_when_staged_is_older() {
        let fix = keys(115);
        let mut layout = static_layout();
        install(&fix, &mut layout, standard::SLOT_A, 3, b"running v3");
        install(&fix, &mut layout, standard::SLOT_B, 2, b"staged v2!");
        let boot = bootloader(
            &fix,
            BootMode::Static {
                bootable: standard::SLOT_A,
                staging: standard::SLOT_B,
                swap: true,
            },
        );
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.version, Version(3));
        assert_eq!(outcome.action, BootAction::BootedExisting);
    }

    #[test]
    fn static_rolls_back_on_corrupt_staging() {
        let fix = keys(116);
        let mut layout = static_layout();
        install(&fix, &mut layout, standard::SLOT_A, 1, b"running v1");
        install(&fix, &mut layout, standard::SLOT_B, 2, b"staged v2!");
        layout
            .write_slot(standard::SLOT_B, crate::image::FIRMWARE_OFFSET + 3, &[0x00])
            .unwrap();
        let boot = bootloader(
            &fix,
            BootMode::Static {
                bootable: standard::SLOT_A,
                staging: standard::SLOT_B,
                swap: true,
            },
        );
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.version, Version(1));
        assert_eq!(outcome.action, BootAction::BootedExisting);
        assert_eq!(outcome.rejected_slots.len(), 1);
    }

    #[test]
    fn fixed_point_in_ab_mode_is_one_boot() {
        let fix = keys(120);
        let mut layout = ab_layout();
        install(&fix, &mut layout, standard::SLOT_A, 1, b"old firmware");
        install(&fix, &mut layout, standard::SLOT_B, 2, b"new firmware");
        let boot = bootloader(
            &fix,
            BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
        );
        let report = boot.boot_to_fixed_point(&mut layout, 8).unwrap();
        assert_eq!(
            report.boots, 1,
            "A/B never moves flash: first boot is stable"
        );
        assert_eq!(report.outcome.action, BootAction::JumpedInPlace);
        assert_eq!(report.outcome.version, Version(2));
    }

    #[test]
    fn fixed_point_in_static_mode_settles_after_the_swap() {
        let fix = keys(121);
        let mut layout = static_layout();
        install(&fix, &mut layout, standard::SLOT_A, 1, b"running v1");
        install(&fix, &mut layout, standard::SLOT_B, 2, b"staged v2!");
        let boot = bootloader(
            &fix,
            BootMode::Static {
                bootable: standard::SLOT_A,
                staging: standard::SLOT_B,
                swap: true,
            },
        );
        let report = boot.boot_to_fixed_point(&mut layout, 8).unwrap();
        assert_eq!(report.boots, 2, "boot 1 swaps, boot 2 confirms");
        assert_eq!(report.outcome.action, BootAction::BootedExisting);
        assert_eq!(report.outcome.version, Version(2));
    }

    #[test]
    fn fixed_point_survives_a_cut_mid_boot_but_reports_a_real_brick() {
        use upkit_flash::fault::{FaultFlash, FaultKind, FaultPlan};

        let fix = keys(122);
        // The loop restores power (disarms) before every boot, so a cut
        // that fires *during* boot needs a FaultFlash plan, which
        // survives disarms until its boundary. Provisioning two slots
        // costs 2 × (8 sector erases + 2 writes) = 20 mutating ops; the
        // swap then runs 4 ops per sector, so boundary 24 is the erase
        // of slot A's *second* sector.
        let mut layout = configuration_b(
            Box::new(FaultFlash::with_fault(
                Box::new(SimFlash::new(geometry())),
                FaultPlan {
                    boundary: 24,
                    kind: FaultKind::CleanCut,
                    recovery_cut: None,
                },
            )),
            None,
            SLOT_SIZE,
        )
        .unwrap();
        // Images spanning two sectors: after sector 0 is fully swapped
        // both slots hold a mixed v1/v2 body, so a cut in sector 1's
        // swap leaves *no* valid image — the documented hazard of
        // swap-without-recovery that the recovery slot of Fig. 6 closes.
        install(&fix, &mut layout, standard::SLOT_A, 1, &[0x11; 6000]);
        install(&fix, &mut layout, standard::SLOT_B, 2, &[0x22; 6000]);
        let boot = bootloader(
            &fix,
            BootMode::Static {
                bootable: standard::SLOT_A,
                staging: standard::SLOT_B,
                swap: true,
            },
        );
        match boot.boot_to_fixed_point(&mut layout, 8) {
            // Boot 1 dies in the cut (tolerated), boot 2 finds no valid
            // image anywhere.
            Err(FixedPointError::Brick { error, boots }) => {
                assert_eq!(boots, 2);
                assert!(matches!(error, BootError::NoValidImage(_)));
            }
            other => panic!("expected a brick, got {other:?}"),
        }
    }

    #[test]
    fn fixed_point_with_zero_budget_reports_no_convergence() {
        let fix = keys(123);
        let mut layout = ab_layout();
        install(&fix, &mut layout, standard::SLOT_A, 1, b"v1");
        let boot = bootloader(
            &fix,
            BootMode::AB {
                slots: vec![standard::SLOT_A],
            },
        );
        assert!(matches!(
            boot.boot_to_fixed_point(&mut layout, 0),
            Err(FixedPointError::NoConvergence { boots: 0 })
        ));
    }

    #[test]
    fn forged_image_in_slot_is_rejected() {
        let fix = keys(117);
        let attacker = keys(999);
        let mut layout = ab_layout();
        install(&fix, &mut layout, standard::SLOT_A, 1, b"legit");
        // Attacker installs an image signed with their own keys.
        install(&attacker, &mut layout, standard::SLOT_B, 9, b"evil!");
        let boot = bootloader(
            &fix,
            BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
        );
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.booted_slot, standard::SLOT_A);
        assert_eq!(outcome.rejected_slots.len(), 1);
        assert!(matches!(
            outcome.rejected_slots[0].1,
            VerifyError::VendorSignature | VerifyError::ServerSignature
        ));
    }

    #[test]
    fn wrong_app_id_image_rejected_at_boot() {
        let fix = keys(118);
        let mut layout = ab_layout();
        // Hand-roll an image with a foreign app id but valid signatures.
        let firmware = b"other product firmware";
        let manifest = Manifest {
            device_id: DEV,
            nonce: 1,
            old_version: Version(0),
            version: Version(5),
            size: firmware.len() as u32,
            payload_size: firmware.len() as u32,
            digest: sha256(firmware),
            link_offset: LINK,
            app_id: APP + 1,
        };
        let signed = SignedManifest {
            manifest,
            vendor_signature: vendor_sign(&manifest, &fix.vendor),
            server_signature: server_sign(&manifest, &fix.server),
        };
        layout.erase_slot(standard::SLOT_A).unwrap();
        crate::image::write_manifest(&mut layout, standard::SLOT_A, &signed).unwrap();
        layout
            .write_slot(standard::SLOT_A, crate::image::FIRMWARE_OFFSET, firmware)
            .unwrap();
        let boot = bootloader(
            &fix,
            BootMode::AB {
                slots: vec![standard::SLOT_A],
            },
        );
        match boot.boot(&mut layout) {
            Err(BootError::NoValidImage(rejected)) => {
                assert_eq!(rejected[0].1, VerifyError::WrongAppId);
            }
            other => panic!("expected NoValidImage, got {other:?}"),
        }
    }

    // ---- multi-component transactional installs ----

    use upkit_flash::configuration_multi;
    use upkit_manifest::{
        server_sign_multi, vendor_sign_multi, ComponentEntry, ComponentTable, MultiManifest,
    };

    const MULTI_SLOT: u32 = 4096 * 4;

    fn multi_layout(n: u8) -> MemoryLayout {
        configuration_multi(Box::new(SimFlash::new(geometry())), n, MULTI_SLOT, 4096).unwrap()
    }

    fn multi_slots(n: u8) -> Vec<ComponentSlots> {
        (0..n)
            .map(|c| ComponentSlots {
                bootable: SlotId(c * 2),
                staging: SlotId(c * 2 + 1),
            })
            .collect()
    }

    fn journal_slot(n: u8) -> SlotId {
        SlotId(n * 2)
    }

    fn multi_bootloader(fix: &Fixture, n: u8) -> Bootloader {
        bootloader(
            fix,
            BootMode::MultiComponent {
                components: multi_slots(n),
                journal: journal_slot(n),
            },
        )
    }

    fn signed_component(fix: &Fixture, version: u16, firmware: &[u8]) -> SignedManifest {
        let manifest = Manifest {
            device_id: DEV,
            nonce: 1,
            old_version: Version(0),
            version: Version(version),
            size: firmware.len() as u32,
            payload_size: firmware.len() as u32,
            digest: sha256(firmware),
            link_offset: LINK,
            app_id: APP,
        };
        SignedManifest {
            manifest,
            vendor_signature: vendor_sign(&manifest, &fix.vendor),
            server_signature: server_sign(&manifest, &fix.server),
        }
    }

    /// Builds a signed commit record plus the matching staged images for
    /// the given `(component_id, slot, version, firmware)` set.
    fn multi_record(
        fix: &Fixture,
        set_version: u16,
        parts: &[(u32, u8, u16, &[u8])],
    ) -> (upkit_manifest::SignedMultiManifest, Vec<ComponentImage>) {
        let mut entries = Vec::new();
        let mut images = Vec::new();
        for &(component_id, slot, version, firmware) in parts {
            entries.push(ComponentEntry {
                component_id,
                version: Version(version),
                size: firmware.len() as u32,
                digest: sha256(firmware),
                slot,
            });
            images.push(ComponentImage {
                signed_manifest: signed_component(fix, version, firmware),
                firmware: firmware.to_vec(),
            });
        }
        let table = ComponentTable::new(entries).unwrap();
        let manifest = Manifest {
            device_id: DEV,
            nonce: 1,
            old_version: Version(0),
            version: Version(set_version),
            size: u32::try_from(table.total_size()).unwrap(),
            payload_size: u32::try_from(table.total_size()).unwrap(),
            digest: table.set_digest(),
            link_offset: LINK,
            app_id: APP,
        };
        let multi = MultiManifest {
            manifest,
            components: Some(table),
        };
        let record = upkit_manifest::SignedMultiManifest {
            vendor_signature: vendor_sign_multi(&multi, &fix.vendor),
            server_signature: server_sign_multi(&multi, &fix.server),
            multi,
        };
        (record, images)
    }

    fn install_old_set(fix: &Fixture, layout: &mut MemoryLayout, n: u8) {
        for c in 0..n {
            install(
                fix,
                layout,
                SlotId(c * 2),
                1,
                format!("old component {c}").as_bytes(),
            );
        }
    }

    fn component_versions(
        boot: &Bootloader,
        layout: &mut MemoryLayout,
        n: u8,
    ) -> Vec<Option<Version>> {
        (0..n)
            .map(|c| {
                boot.verify_slot(layout, SlotId(c * 2))
                    .ok()
                    .map(|s| s.manifest.version)
            })
            .collect()
    }

    #[test]
    fn multi_stage_then_boot_commits_whole_set() {
        let fix = keys(200);
        let mut layout = multi_layout(2);
        install_old_set(&fix, &mut layout, 2);
        let boot = multi_bootloader(&fix, 2);
        let (record, images) = multi_record(
            &fix,
            2,
            &[(0xA, 0, 2, b"new base os"), (0xB, 2, 2, b"new app!!")],
        );
        boot.stage_component_set(&mut layout, &record, &images)
            .unwrap();
        // Staging never touches bootable slots: still the old set.
        assert_eq!(
            component_versions(&boot, &mut layout, 2),
            vec![Some(Version(1)), Some(Version(1))]
        );

        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.action, BootAction::CommittedSet);
        assert_eq!(outcome.version, Version(2));
        assert_eq!(
            layout.tracer().counters().snapshot().components_installed,
            2
        );
        // The next boot is stable on the complete new set.
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.action, BootAction::BootedExisting);
        assert_eq!(outcome.version, Version(2));
        assert_eq!(
            component_versions(&boot, &mut layout, 2),
            vec![Some(Version(2)), Some(Version(2))]
        );
    }

    #[test]
    fn multi_replay_resumes_after_cut_between_swaps() {
        let fix = keys(201);
        let mut layout = multi_layout(3);
        install_old_set(&fix, &mut layout, 3);
        let boot = multi_bootloader(&fix, 3);
        let (record, images) = multi_record(
            &fix,
            2,
            &[
                (0xA, 0, 2, b"base v2"),
                (0xB, 2, 2, b"radio v2"),
                (0xC, 4, 2, b"app v2!"),
            ],
        );
        boot.stage_component_set(&mut layout, &record, &images)
            .unwrap();
        // Simulate a power cut after the first component swapped: copy
        // component 0 and set its done marker by hand, as a partial
        // replay would have.
        let journal = journal_slot(3);
        layout.copy_slot(SlotId(1), SlotId(0)).unwrap();
        set_journal_marker(&mut layout, journal, JOURNAL_DONE_OFFSET).unwrap();

        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.action, BootAction::CommittedSet);
        // Only the two remaining components were copied on this pass.
        assert_eq!(
            layout.tracer().counters().snapshot().components_installed,
            2
        );
        assert_eq!(
            component_versions(&boot, &mut layout, 3),
            vec![Some(Version(2)), Some(Version(2)), Some(Version(2))]
        );
        assert!(journal_marker_set(&layout, journal, JOURNAL_COMPLETE_OFFSET).unwrap());
    }

    #[test]
    fn multi_torn_record_keeps_complete_old_set() {
        let fix = keys(202);
        let mut layout = multi_layout(2);
        install_old_set(&fix, &mut layout, 2);
        let boot = multi_bootloader(&fix, 2);
        let (record, images) =
            multi_record(&fix, 2, &[(0xA, 0, 2, b"base v2"), (0xB, 2, 2, b"app v2!")]);
        boot.stage_component_set(&mut layout, &record, &images)
            .unwrap();
        // Tear the commit record (bit-clear inside the server signature).
        layout
            .write_slot(
                journal_slot(2),
                upkit_manifest::MANIFEST_LEN as u32 + 70,
                &[0],
            )
            .unwrap();

        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.action, BootAction::BootedExisting);
        assert_eq!(outcome.version, Version(1));
        // Never mixed: every component still runs the old version.
        assert_eq!(
            component_versions(&boot, &mut layout, 2),
            vec![Some(Version(1)), Some(Version(1))]
        );
        assert_eq!(
            layout.tracer().counters().snapshot().components_installed,
            0
        );
    }

    #[test]
    fn multi_health_check_failure_aborts_install() {
        let fix = keys(203);
        let attacker = keys(999);
        let mut layout = multi_layout(2);
        install_old_set(&fix, &mut layout, 2);
        let boot = multi_bootloader(&fix, 2);
        let (record, mut images) =
            multi_record(&fix, 2, &[(0xA, 0, 2, b"base v2"), (0xB, 2, 2, b"app v2!")]);
        // Component 0xB's staged image carries foreign signatures (its
        // digest still matches the table, so only the in-flash health
        // check can catch it).
        images[1].signed_manifest = signed_component(&attacker, 2, b"app v2!");
        match boot.stage_component_set(&mut layout, &record, &images) {
            Err(StageError::ComponentHealth { component_id, .. }) => {
                assert_eq!(component_id, 0xB);
            }
            other => panic!("expected ComponentHealth, got {other:?}"),
        }
        assert_eq!(
            layout.tracer().counters().snapshot().components_rolled_back,
            1
        );
        // Nothing committed: the journal holds no record and the old set
        // boots untouched.
        assert!(read_journal_record(&layout, journal_slot(2))
            .unwrap()
            .is_none());
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.action, BootAction::BootedExisting);
        assert_eq!(outcome.version, Version(1));
    }

    #[test]
    fn multi_boot_time_rollback_restores_broken_component() {
        let fix = keys(204);
        let mut layout = multi_layout(2);
        install_old_set(&fix, &mut layout, 2);
        let boot = multi_bootloader(&fix, 2);
        let (record, images) =
            multi_record(&fix, 2, &[(0xA, 0, 2, b"base v2"), (0xB, 2, 2, b"app v2!")]);
        boot.stage_component_set(&mut layout, &record, &images)
            .unwrap();
        boot.boot(&mut layout).unwrap();
        // Corrupt component 0's bootable copy after the set committed.
        layout
            .write_slot(SlotId(0), crate::image::FIRMWARE_OFFSET, &[0x00])
            .unwrap();
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.action, BootAction::RestoredFromRecovery);
        assert_eq!(
            layout.tracer().counters().snapshot().components_rolled_back,
            1
        );
        let outcome = boot.boot(&mut layout).unwrap();
        assert_eq!(outcome.action, BootAction::BootedExisting);
        assert_eq!(
            component_versions(&boot, &mut layout, 2),
            vec![Some(Version(2)), Some(Version(2))]
        );
    }

    #[test]
    fn multi_rejects_table_that_does_not_match_slots() {
        let fix = keys(205);
        let mut layout = multi_layout(2);
        install_old_set(&fix, &mut layout, 2);
        let boot = multi_bootloader(&fix, 2);
        // Slot 6 does not exist on a two-component device.
        let (record, images) =
            multi_record(&fix, 2, &[(0xA, 0, 2, b"base v2"), (0xB, 6, 2, b"app v2!")]);
        assert!(matches!(
            boot.stage_component_set(&mut layout, &record, &images),
            Err(StageError::SetMismatch)
        ));
        assert_eq!(
            component_versions(&boot, &mut layout, 2),
            vec![Some(Version(1)), Some(Version(1))]
        );
    }
}
