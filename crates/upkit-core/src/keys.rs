//! Trust anchors: how the device references the public keys it verifies
//! updates against.
//!
//! UpKit stores two public keys on every device — the vendor server's
//! (integrity/authenticity) and the update server's (freshness). They live
//! either inline in flash or, on HSM-equipped platforms like the
//! CC2650 + ATECC508 pairing, in tamper-protected hardware key slots
//! referenced by number.

use upkit_crypto::backend::KeyRef;
use upkit_crypto::chacha20::NONCE_LEN;
use upkit_crypto::ecdsa::{VerifyingKey, PUBLIC_KEY_LEN};
use upkit_manifest::Version;

/// Derives the ChaCha20 nonce binding an encrypted payload to one device,
/// request, and version — reusing the freshness fields the double
/// signature already authenticates. Both ends derive it independently:
/// the update server when encrypting, the device agent when decrypting.
#[must_use]
pub fn content_nonce(device_id: u32, request_nonce: u32, version: Version) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[0..4].copy_from_slice(&device_id.to_le_bytes());
    nonce[4..8].copy_from_slice(&request_nonce.to_le_bytes());
    nonce[8..10].copy_from_slice(&version.0.to_le_bytes());
    nonce
}

/// A reference to one trusted public key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyAnchor {
    /// SEC1 uncompressed key bytes stored in device flash.
    Inline([u8; PUBLIC_KEY_LEN]),
    /// A key slot on the platform's hardware security module.
    HsmSlot(u8),
}

impl KeyAnchor {
    /// Builds an inline anchor from a verifying key.
    #[must_use]
    pub fn inline(key: &VerifyingKey) -> Self {
        Self::Inline(key.to_sec1_bytes())
    }

    /// The [`KeyRef`] to hand to the security backend.
    #[must_use]
    pub fn key_ref(&self) -> KeyRef<'_> {
        match self {
            Self::Inline(bytes) => KeyRef::Sec1(bytes),
            Self::HsmSlot(slot) => KeyRef::Slot(*slot),
        }
    }
}

/// The pair of trust anchors every UpKit device carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrustAnchors {
    /// The vendor server's public key (signs the manifest core).
    pub vendor: KeyAnchor,
    /// The update server's public key (signs the full manifest).
    pub server: KeyAnchor,
}

impl TrustAnchors {
    /// Inline anchors from the two verifying keys.
    #[must_use]
    pub fn inline(vendor: &VerifyingKey, server: &VerifyingKey) -> Self {
        Self {
            vendor: KeyAnchor::inline(vendor),
            server: KeyAnchor::inline(server),
        }
    }

    /// HSM-slot anchors (both keys provisioned to hardware).
    #[must_use]
    pub fn hsm(vendor_slot: u8, server_slot: u8) -> Self {
        Self {
            vendor: KeyAnchor::HsmSlot(vendor_slot),
            server: KeyAnchor::HsmSlot(server_slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_crypto::ecdsa::SigningKey;

    #[test]
    fn inline_anchor_preserves_key_bytes() {
        let key = SigningKey::generate(&mut StdRng::seed_from_u64(61));
        let anchor = KeyAnchor::inline(&key.verifying_key());
        match anchor.key_ref() {
            KeyRef::Sec1(bytes) => {
                assert_eq!(bytes, key.verifying_key().to_sec1_bytes());
            }
            KeyRef::Slot(_) => panic!("expected inline key"),
        }
    }

    #[test]
    fn hsm_anchor_references_slots() {
        let anchors = TrustAnchors::hsm(3, 4);
        assert!(matches!(anchors.vendor.key_ref(), KeyRef::Slot(3)));
        assert!(matches!(anchors.server.key_ref(), KeyRef::Slot(4)));
    }
}
