//! Fixed-width 256-bit unsigned integer arithmetic.
//!
//! [`U256`] is the raw-integer layer underneath the Montgomery field
//! arithmetic in [`crate::mont`]. Limbs are `u64`, least-significant first.

/// A 256-bit unsigned integer stored as four little-endian `u64` limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct U256(pub [u64; 4]);

/// Adds with carry: returns `(sum, carry_out)`.
#[inline]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtracts with borrow: returns `(diff, borrow_out)` where borrow is 0 or 1.
#[inline]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Multiply-accumulate: `a + b * c + carry`, returns `(low, high)`.
#[inline]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

impl U256 {
    /// The value 0.
    pub const ZERO: Self = Self([0; 4]);
    /// The value 1.
    pub const ONE: Self = Self([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: Self = Self([u64::MAX; 4]);

    /// Constructs from little-endian limbs.
    #[must_use]
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        Self(limbs)
    }

    /// Constructs from a small integer.
    #[must_use]
    pub const fn from_u64(v: u64) -> Self {
        Self([v, 0, 0, 0])
    }

    /// Parses a big-endian 32-byte array.
    #[must_use]
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            limbs[3 - i] = u64::from_be_bytes(word);
        }
        Self(limbs)
    }

    /// Serializes to a big-endian 32-byte array.
    #[must_use]
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.0[3 - i].to_be_bytes());
        }
        out
    }

    /// Returns `true` if the value is zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.0[0] == 0 && self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0
    }

    /// Returns bit `i` (0 = least significant).
    #[must_use]
    pub const fn bit(&self, i: usize) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return i * 64 + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Wrapping addition, returning `(sum, carry)`.
    #[must_use]
    pub const fn adc(&self, rhs: &Self) -> (Self, u64) {
        let (l0, c) = adc(self.0[0], rhs.0[0], 0);
        let (l1, c) = adc(self.0[1], rhs.0[1], c);
        let (l2, c) = adc(self.0[2], rhs.0[2], c);
        let (l3, c) = adc(self.0[3], rhs.0[3], c);
        (Self([l0, l1, l2, l3]), c)
    }

    /// Wrapping subtraction, returning `(difference, borrow)`.
    #[must_use]
    pub const fn sbb(&self, rhs: &Self) -> (Self, u64) {
        let (l0, b) = sbb(self.0[0], rhs.0[0], 0);
        let (l1, b) = sbb(self.0[1], rhs.0[1], b);
        let (l2, b) = sbb(self.0[2], rhs.0[2], b);
        let (l3, b) = sbb(self.0[3], rhs.0[3], b);
        (Self([l0, l1, l2, l3]), b)
    }

    /// Full 256×256→512-bit product, little-endian limbs.
    #[must_use]
    pub const fn mul_wide(&self, rhs: &Self) -> [u64; 8] {
        let mut out = [0u64; 8];
        let mut i = 0;
        while i < 4 {
            let mut carry = 0u64;
            let mut j = 0;
            while j < 4 {
                let (lo, hi) = mac(out[i + j], self.0[i], rhs.0[j], carry);
                out[i + j] = lo;
                carry = hi;
                j += 1;
            }
            out[i + 4] = carry;
            i += 1;
        }
        out
    }

    /// Shifts right by one bit.
    #[must_use]
    pub const fn shr1(&self) -> Self {
        Self([
            (self.0[0] >> 1) | (self.0[1] << 63),
            (self.0[1] >> 1) | (self.0[2] << 63),
            (self.0[2] >> 1) | (self.0[3] << 63),
            self.0[3] >> 1,
        ])
    }

    /// `self mod m`, by repeated conditional subtraction after bit-aligned
    /// shifting. `m` must be non-zero. Only used on cold paths (reduction of
    /// hash outputs and random scalars); field arithmetic uses Montgomery.
    #[must_use]
    pub fn reduce_mod(&self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modulus must be non-zero");
        let mut v = *self;
        if v.cmp_raw(m) == core::cmp::Ordering::Less {
            return v;
        }
        let shift = v.bits() - m.bits();
        // m << shift may exceed 256 bits only when shift pushes bits out;
        // track the shifted modulus as (overflow_bit, U256).
        for s in (0..=shift).rev() {
            let (shifted, overflow) = m.shl_checked(s);
            if !overflow && v.cmp_raw(&shifted) != core::cmp::Ordering::Less {
                let (diff, borrow) = v.sbb(&shifted);
                debug_assert_eq!(borrow, 0);
                v = diff;
            }
        }
        v
    }

    /// Shifts left by `s` bits, reporting whether any set bit was shifted out.
    #[must_use]
    fn shl_checked(&self, s: usize) -> (Self, bool) {
        if s == 0 {
            return (*self, false);
        }
        if s >= 256 {
            return (Self::ZERO, !self.is_zero());
        }
        let overflow = self.bits() + s > 256;
        let limb_shift = s / 64;
        let bit_shift = s % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            let lo = self.0[i - limb_shift] << bit_shift;
            let hi = if bit_shift > 0 && i > limb_shift {
                self.0[i - limb_shift - 1] >> (64 - bit_shift)
            } else {
                0
            };
            out[i] = lo | hi;
        }
        (Self(out), overflow)
    }

    /// Constant-free comparison helper (not constant-time; this crate models
    /// functionality, not side-channel resistance — see crate docs).
    #[must_use]
    pub fn cmp_raw(&self, rhs: &Self) -> core::cmp::Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&rhs.0[i]) {
                core::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.cmp_raw(other)
    }
}

impl core::fmt::Debug for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "U256(0x")?;
        for byte in self.to_be_bytes() {
            write!(f, "{byte:02x}")?;
        }
        write!(f, ")")
    }
}

impl core::fmt::Display for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "0x")?;
        for byte in self.to_be_bytes() {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let v = U256::from_limbs([1, 2, 3, 0xdead_beef_0000_0001]);
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = U256::from_limbs([u64::MAX, 5, 0, 7]);
        let b = U256::from_limbs([3, u64::MAX, 1, 0]);
        let (sum, carry) = a.adc(&b);
        assert_eq!(carry, 0);
        let (diff, borrow) = sum.sbb(&b);
        assert_eq!(borrow, 0);
        assert_eq!(diff, a);
    }

    #[test]
    fn subtraction_borrows() {
        let (diff, borrow) = U256::ZERO.sbb(&U256::ONE);
        assert_eq!(borrow, 1);
        assert_eq!(diff, U256::MAX);
    }

    #[test]
    fn addition_carries() {
        let (sum, carry) = U256::MAX.adc(&U256::ONE);
        assert_eq!(carry, 1);
        assert_eq!(sum, U256::ZERO);
    }

    #[test]
    fn mul_wide_small() {
        let a = U256::from_u64(u64::MAX);
        let wide = a.mul_wide(&a);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        assert_eq!(wide[0], 1);
        assert_eq!(wide[1], u64::MAX - 1);
        assert_eq!(&wide[2..], &[0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::MAX.bits(), 256);
        let v = U256::from_limbs([0, 1, 0, 0]);
        assert_eq!(v.bits(), 65);
        assert!(v.bit(64));
        assert!(!v.bit(63));
        assert!(!v.bit(300));
    }

    #[test]
    fn reduce_mod_basics() {
        let m = U256::from_u64(97);
        assert_eq!(
            U256::from_u64(1000).reduce_mod(&m),
            U256::from_u64(1000 % 97)
        );
        assert_eq!(U256::from_u64(96).reduce_mod(&m), U256::from_u64(96));
        assert_eq!(U256::from_u64(97).reduce_mod(&m), U256::ZERO);
        assert_eq!(U256::MAX.reduce_mod(&U256::ONE), U256::ZERO);
    }

    #[test]
    fn reduce_mod_large_modulus() {
        // modulus with high bit set: value < 2m, so one subtraction.
        let m = U256::from_limbs([5, 0, 0, 1 << 63]);
        let (v, carry) = m.adc(&U256::from_u64(123));
        assert_eq!(carry, 0);
        assert_eq!(v.reduce_mod(&m), U256::from_u64(123));
    }

    #[test]
    fn shr1_halves() {
        let v = U256::from_limbs([0, 0, 0, 1]);
        assert_eq!(v.shr1(), U256::from_limbs([0, 0, 1 << 63, 0]));
    }

    #[test]
    fn ordering_is_numeric() {
        let small = U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0]);
        let big = U256::from_limbs([0, 0, 0, 1]);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big), core::cmp::Ordering::Equal);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(
            format!("{}", U256::from_u64(0xabcd)),
            format!("0x{}{:04x}", "0".repeat(60), 0xabcd)
        );
    }
}
