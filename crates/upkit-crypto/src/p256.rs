//! The NIST P-256 (secp256r1) elliptic-curve group.
//!
//! UpKit's double-signature scheme uses ECDSA over secp256r1 with SHA-256,
//! the combination the paper selects because every evaluated crypto library
//! (TinyDTLS, tinycrypt, CryptoAuthLib) supports it. This module provides
//! the group arithmetic; [`crate::ecdsa`] builds signatures on top.

use crate::mont::{Fe, FieldParams};
use crate::u256::U256;

/// Marker for the P-256 coordinate field `GF(p)`,
/// `p = 2^256 - 2^224 + 2^192 + 2^96 - 1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct P256FieldParams;

impl FieldParams for P256FieldParams {
    const MODULUS: U256 = U256::from_limbs([
        0xffff_ffff_ffff_ffff,
        0x0000_0000_ffff_ffff,
        0x0000_0000_0000_0000,
        0xffff_ffff_0000_0001,
    ]);
}

/// Marker for the P-256 scalar field `GF(n)` where `n` is the group order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct P256ScalarParams;

impl FieldParams for P256ScalarParams {
    const MODULUS: U256 = U256::from_limbs([
        0xf3b9_cac2_fc63_2551,
        0xbce6_faad_a717_9e84,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_0000_0000,
    ]);
}

/// An element of the coordinate field.
pub type FieldElement = Fe<P256FieldParams>;
/// An element of the scalar field (integers modulo the group order).
pub type Scalar = Fe<P256ScalarParams>;

/// The group order `n`.
#[must_use]
pub fn order() -> U256 {
    P256ScalarParams::MODULUS
}

/// The coordinate-field prime `p`.
#[must_use]
pub fn field_prime() -> U256 {
    P256FieldParams::MODULUS
}

/// Curve coefficient `b` as a raw integer
/// (`5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b`);
/// the test suite cross-checks these limbs against the hex literal.
const CURVE_B: U256 = U256::from_limbs([
    0x3bce_3c3e_27d2_604b,
    0x651d_06b0_cc53_b0f6,
    0xb3eb_bd55_7698_86bc,
    0x5ac6_35d8_aa3a_93e7,
]);

/// Generator x-coordinate
/// (`6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296`).
const GEN_X: U256 = U256::from_limbs([
    0xf4a1_3945_d898_c296,
    0x7703_7d81_2deb_33a0,
    0xf8bc_e6e5_63a4_40f2,
    0x6b17_d1f2_e12c_4247,
]);

/// Generator y-coordinate
/// (`4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5`).
const GEN_Y: U256 = U256::from_limbs([
    0xcbb6_4068_37bf_51f5,
    0x2bce_3357_6b31_5ece,
    0x8ee7_eb4a_7c0f_9e16,
    0x4fe3_42e2_fe1a_7f9b,
]);

fn curve_b() -> FieldElement {
    FieldElement::from_u256(&CURVE_B)
}

/// A point on P-256 in affine coordinates, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AffinePoint {
    /// The group identity.
    Identity,
    /// A finite curve point.
    Point {
        /// x-coordinate.
        x: FieldElement,
        /// y-coordinate.
        y: FieldElement,
    },
}

impl AffinePoint {
    /// The group generator `G`.
    #[must_use]
    pub fn generator() -> Self {
        Self::Point {
            x: FieldElement::from_u256(&GEN_X),
            y: FieldElement::from_u256(&GEN_Y),
        }
    }

    /// Returns `true` if the point satisfies the curve equation
    /// `y² = x³ - 3x + b` (the identity is considered on-curve).
    #[must_use]
    pub fn is_on_curve(&self) -> bool {
        match self {
            Self::Identity => true,
            Self::Point { x, y } => {
                let lhs = y.square();
                let rhs = x.square().mul(x).sub(&x.mul_u64(3)).add(&curve_b());
                lhs == rhs
            }
        }
    }

    /// Serializes to the SEC1 uncompressed form `04 ‖ X ‖ Y` (65 bytes).
    ///
    /// # Panics
    ///
    /// Panics if called on the identity, which has no SEC1 uncompressed
    /// encoding.
    #[must_use]
    pub fn to_sec1_bytes(&self) -> [u8; 65] {
        match self {
            Self::Identity => panic!("the identity has no uncompressed SEC1 encoding"),
            Self::Point { x, y } => {
                let mut out = [0u8; 65];
                out[0] = 0x04;
                out[1..33].copy_from_slice(&x.to_u256().to_be_bytes());
                out[33..65].copy_from_slice(&y.to_u256().to_be_bytes());
                out
            }
        }
    }

    /// Serializes to the SEC1 compressed form `02/03 ‖ X` (33 bytes) —
    /// half the flash cost of the uncompressed form, which matters when
    /// public keys live in a constrained device's trust store.
    ///
    /// # Panics
    ///
    /// Panics if called on the identity, which has no SEC1 encoding.
    #[must_use]
    pub fn to_sec1_compressed(&self) -> [u8; 33] {
        match self {
            Self::Identity => panic!("the identity has no compressed SEC1 encoding"),
            Self::Point { x, y } => {
                let mut out = [0u8; 33];
                out[0] = 2 + (y.to_u256().0[0] & 1) as u8;
                out[1..].copy_from_slice(&x.to_u256().to_be_bytes());
                out
            }
        }
    }

    /// Parses a SEC1 compressed point, recovering `y` via the curve
    /// equation (`p ≡ 3 (mod 4)` square root).
    pub fn from_sec1_compressed(bytes: &[u8]) -> Result<Self, PointError> {
        if bytes.len() != 33 || (bytes[0] != 0x02 && bytes[0] != 0x03) {
            return Err(PointError::Encoding);
        }
        let mut xb = [0u8; 32];
        xb.copy_from_slice(&bytes[1..]);
        let x_raw = U256::from_be_bytes(&xb);
        if x_raw.cmp_raw(&field_prime()) != core::cmp::Ordering::Less {
            return Err(PointError::Encoding);
        }
        let x = FieldElement::from_u256(&x_raw);
        // y² = x³ - 3x + b
        let rhs = x.square().mul(&x).sub(&x.mul_u64(3)).add(&curve_b());
        let y = rhs.sqrt().ok_or(PointError::NotOnCurve)?;
        let y_is_odd = y.to_u256().0[0] & 1 == 1;
        let want_odd = bytes[0] == 0x03;
        let y = if y_is_odd == want_odd { y } else { y.neg() };
        Ok(Self::Point { x, y })
    }

    /// Parses a SEC1 uncompressed point, validating that it lies on the
    /// curve.
    pub fn from_sec1_bytes(bytes: &[u8]) -> Result<Self, PointError> {
        if bytes.len() != 65 || bytes[0] != 0x04 {
            return Err(PointError::Encoding);
        }
        let mut xb = [0u8; 32];
        let mut yb = [0u8; 32];
        xb.copy_from_slice(&bytes[1..33]);
        yb.copy_from_slice(&bytes[33..65]);
        let x_raw = U256::from_be_bytes(&xb);
        let y_raw = U256::from_be_bytes(&yb);
        if x_raw.cmp_raw(&field_prime()) != core::cmp::Ordering::Less
            || y_raw.cmp_raw(&field_prime()) != core::cmp::Ordering::Less
        {
            return Err(PointError::Encoding);
        }
        let point = Self::Point {
            x: FieldElement::from_u256(&x_raw),
            y: FieldElement::from_u256(&y_raw),
        };
        if point.is_on_curve() {
            Ok(point)
        } else {
            Err(PointError::NotOnCurve)
        }
    }

    /// Converts to Jacobian coordinates.
    #[must_use]
    pub fn to_jacobian(&self) -> JacobianPoint {
        match self {
            Self::Identity => JacobianPoint::identity(),
            Self::Point { x, y } => JacobianPoint {
                x: *x,
                y: *y,
                z: FieldElement::one(),
            },
        }
    }
}

/// Errors arising from point decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PointError {
    /// The byte encoding was malformed.
    Encoding,
    /// The coordinates do not satisfy the curve equation.
    NotOnCurve,
}

impl core::fmt::Display for PointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Encoding => f.write_str("malformed SEC1 point encoding"),
            Self::NotOnCurve => f.write_str("coordinates do not lie on P-256"),
        }
    }
}

impl core::error::Error for PointError {}

/// A point in Jacobian projective coordinates `(X : Y : Z)` with
/// `x = X/Z²`, `y = Y/Z³`; the identity has `Z = 0`.
#[derive(Clone, Copy, Debug)]
pub struct JacobianPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
}

impl JacobianPoint {
    /// The group identity.
    #[must_use]
    pub fn identity() -> Self {
        Self {
            x: FieldElement::one(),
            y: FieldElement::one(),
            z: FieldElement::zero(),
        }
    }

    /// Returns `true` for the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (formulas for `a = -3` short Weierstrass curves).
    #[must_use]
    pub fn double(&self) -> Self {
        if self.is_identity() || self.y.is_zero() {
            return Self::identity();
        }
        let delta = self.z.square();
        let gamma = self.y.square();
        let beta = self.x.mul(&gamma);
        let alpha = self.x.sub(&delta).mul(&self.x.add(&delta)).mul_u64(3);
        let x3 = alpha.square().sub(&beta.mul_u64(8));
        let z3 = self.y.add(&self.z).square().sub(&gamma).sub(&delta);
        let y3 = alpha
            .mul(&beta.mul_u64(4).sub(&x3))
            .sub(&gamma.square().mul_u64(8));
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian point addition.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }

        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = rhs.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&rhs.z);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);

        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }

        let h = u2.sub(&u1);
        let i = h.double().square();
        let j = h.mul(&i);
        let r = s2.sub(&s1).double();
        let v = u1.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
        let z3 = self.z.add(&rhs.z).square().sub(&z1z1).sub(&z2z2).mul(&h);
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication `k · self` (left-to-right double-and-add).
    #[must_use]
    pub fn mul_scalar(&self, k: &U256) -> Self {
        let mut acc = Self::identity();
        for i in (0..k.bits()).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Converts back to affine coordinates.
    #[must_use]
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_identity() {
            return AffinePoint::Identity;
        }
        let z_inv = self.z.invert().expect("non-identity implies z != 0");
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2.mul(&z_inv);
        AffinePoint::Point {
            x: self.x.mul(&z_inv2),
            y: self.y.mul(&z_inv3),
        }
    }
}

/// Computes `a·G + b·Q`, the linear combination at the heart of ECDSA
/// verification.
#[must_use]
pub fn double_scalar_mul(a: &U256, b: &U256, q: &AffinePoint) -> JacobianPoint {
    let g = AffinePoint::generator().to_jacobian();
    let q = q.to_jacobian();
    // Shamir's trick: one shared doubling chain for both scalars.
    let table = [
        None,            // 00
        Some(g),         // 01
        Some(q),         // 10
        Some(g.add(&q)), // 11
    ];
    let bits = a.bits().max(b.bits());
    let mut acc = JacobianPoint::identity();
    for i in (0..bits).rev() {
        acc = acc.double();
        let idx = (usize::from(b.bit(i)) << 1) | usize::from(a.bit(i));
        if let Some(addend) = &table[idx] {
            acc = acc.add(addend);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_32(s: &str) -> [u8; 32] {
        assert_eq!(s.len(), 64);
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).expect("valid hex literal");
        }
        out
    }

    #[test]
    fn curve_constants_match_published_hex() {
        assert_eq!(
            CURVE_B,
            U256::from_be_bytes(&hex_32(
                "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b",
            ))
        );
        assert_eq!(
            GEN_X,
            U256::from_be_bytes(&hex_32(
                "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
            ))
        );
        assert_eq!(
            GEN_Y,
            U256::from_be_bytes(&hex_32(
                "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5",
            ))
        );
    }

    fn gx_times(k: u64) -> AffinePoint {
        AffinePoint::generator()
            .to_jacobian()
            .mul_scalar(&U256::from_u64(k))
            .to_affine()
    }

    #[test]
    fn generator_is_on_curve() {
        assert!(AffinePoint::generator().is_on_curve());
    }

    #[test]
    fn small_multiples_are_on_curve() {
        for k in 1..=20u64 {
            assert!(gx_times(k).is_on_curve(), "k = {k}");
        }
    }

    #[test]
    fn two_g_known_value() {
        // 2G, published test vector for P-256.
        let p2 = gx_times(2);
        let AffinePoint::Point { x, .. } = p2 else {
            panic!("2G is not the identity");
        };
        assert_eq!(
            x.to_u256().to_be_bytes().to_vec(),
            hex_32("7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978").to_vec()
        );
    }

    #[test]
    fn order_times_generator_is_identity() {
        let ng = AffinePoint::generator().to_jacobian().mul_scalar(&order());
        assert!(ng.is_identity());
    }

    #[test]
    fn n_minus_1_g_is_minus_g() {
        let (n_minus_1, _) = order().sbb(&U256::ONE);
        let p = AffinePoint::generator()
            .to_jacobian()
            .mul_scalar(&n_minus_1)
            .to_affine();
        let AffinePoint::Point { x, y } = p else {
            panic!("(n-1)G is finite");
        };
        let AffinePoint::Point { x: gx, y: gy } = AffinePoint::generator() else {
            unreachable!()
        };
        assert_eq!(x, gx);
        assert_eq!(y, gy.neg());
    }

    #[test]
    fn addition_agrees_with_doubling() {
        let g = AffinePoint::generator().to_jacobian();
        let sum = g.add(&g).to_affine();
        let dbl = g.double().to_affine();
        assert_eq!(sum, dbl);
    }

    #[test]
    fn addition_is_associative_on_samples() {
        let g = AffinePoint::generator().to_jacobian();
        let a = g.mul_scalar(&U256::from_u64(3));
        let b = g.mul_scalar(&U256::from_u64(5));
        let c = g.mul_scalar(&U256::from_u64(11));
        let left = a.add(&b).add(&c).to_affine();
        let right = a.add(&b.add(&c)).to_affine();
        assert_eq!(left, right);
    }

    #[test]
    fn scalar_mul_distributes() {
        // (a + b)G == aG + bG
        let g = AffinePoint::generator().to_jacobian();
        let a = U256::from_u64(123_456);
        let b = U256::from_u64(654_321);
        let (sum, _) = a.adc(&b);
        let lhs = g.mul_scalar(&sum).to_affine();
        let rhs = g.mul_scalar(&a).add(&g.mul_scalar(&b)).to_affine();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn identity_is_absorbing() {
        let g = AffinePoint::generator().to_jacobian();
        let id = JacobianPoint::identity();
        assert_eq!(g.add(&id).to_affine(), g.to_affine());
        assert_eq!(id.add(&g).to_affine(), g.to_affine());
        assert!(id.double().is_identity());
        assert!(id.mul_scalar(&U256::from_u64(42)).is_identity());
    }

    #[test]
    fn inverse_points_cancel() {
        let g = AffinePoint::generator().to_jacobian();
        let AffinePoint::Point { x, y } = g.to_affine() else {
            unreachable!()
        };
        let neg_g = AffinePoint::Point { x, y: y.neg() }.to_jacobian();
        assert!(g.add(&neg_g).is_identity());
    }

    #[test]
    fn sec1_round_trip() {
        let p = gx_times(7);
        let bytes = p.to_sec1_bytes();
        assert_eq!(AffinePoint::from_sec1_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn sec1_rejects_garbage() {
        assert_eq!(
            AffinePoint::from_sec1_bytes(&[0u8; 65]),
            Err(PointError::Encoding)
        );
        let mut bytes = gx_times(3).to_sec1_bytes();
        bytes[40] ^= 1; // corrupt y
        assert_eq!(
            AffinePoint::from_sec1_bytes(&bytes),
            Err(PointError::NotOnCurve)
        );
        assert_eq!(
            AffinePoint::from_sec1_bytes(&bytes[..64]),
            Err(PointError::Encoding)
        );
    }

    #[test]
    fn compressed_sec1_round_trip() {
        for k in [1u64, 2, 3, 7, 99, 1234] {
            let p = gx_times(k);
            let compressed = p.to_sec1_compressed();
            let parsed = AffinePoint::from_sec1_compressed(&compressed).unwrap();
            assert_eq!(parsed, p, "k = {k}");
        }
    }

    #[test]
    fn compressed_prefix_selects_y_parity() {
        let p = gx_times(5);
        let mut bytes = p.to_sec1_compressed();
        bytes[0] ^= 0x01; // flip parity: the *other* root
        let flipped = AffinePoint::from_sec1_compressed(&bytes).unwrap();
        let AffinePoint::Point { x, y } = p else {
            unreachable!()
        };
        let AffinePoint::Point { x: fx, y: fy } = flipped else {
            unreachable!()
        };
        assert_eq!(x, fx);
        assert_eq!(fy, y.neg());
        assert!(flipped.is_on_curve());
    }

    #[test]
    fn compressed_rejects_invalid_input() {
        assert_eq!(
            AffinePoint::from_sec1_compressed(&[0x04; 33]),
            Err(PointError::Encoding)
        );
        assert_eq!(
            AffinePoint::from_sec1_compressed(&[0x02; 32]),
            Err(PointError::Encoding)
        );
        // x with no point on the curve (x = 0 ⇒ y² = b, b is a QR? test
        // dynamically: try a few x until one fails).
        let mut rejected = false;
        for x0 in 0u8..8 {
            let mut bytes = [0u8; 33];
            bytes[0] = 0x02;
            bytes[32] = x0;
            if AffinePoint::from_sec1_compressed(&bytes) == Err(PointError::NotOnCurve) {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "some small x must be a non-residue");
    }

    #[test]
    fn double_scalar_mul_matches_separate() {
        let q = gx_times(99);
        let a = U256::from_u64(7777);
        let b = U256::from_u64(3333);
        let fused = double_scalar_mul(&a, &b, &q).to_affine();
        let g = AffinePoint::generator().to_jacobian();
        let separate = g
            .mul_scalar(&a)
            .add(&q.to_jacobian().mul_scalar(&b))
            .to_affine();
        assert_eq!(fused, separate);
    }
}
