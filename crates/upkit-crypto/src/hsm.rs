//! Simulated ATECC508 hardware security module (CryptoAuthLib analogue).
//!
//! The paper pairs the TI CC2650 with Atmel's ATECC508
//! CryptoAuthentication chip to (i) store public keys in tamper-protected
//! slots and (ii) run ECDSA verification in hardware, trimming ~10 % of the
//! bootloader's flash. This module reproduces that integration point: a
//! slot-based key store with a one-way data-zone lock and hardware-offloaded
//! verification with a fixed modeled latency.

use std::sync::Mutex;

use crate::backend::{BackendProfile, KeyRef, SecurityBackend, SecurityError};
use crate::ecdsa::{Signature, VerifyingKey};

/// Number of key slots on the simulated device (the ATECC508 has 16).
pub const SLOT_COUNT: usize = 16;

/// A simulated ATECC508 crypto-authentication device.
///
/// # Examples
///
/// ```
/// use upkit_crypto::hsm::SimulatedHsm;
/// use upkit_crypto::backend::{KeyRef, SecurityBackend};
/// use upkit_crypto::ecdsa::SigningKey;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let key = SigningKey::generate(&mut rng);
///
/// let hsm = SimulatedHsm::new();
/// hsm.provision(3, key.verifying_key()).unwrap();
/// hsm.lock_data_zone();
///
/// let digest = hsm.digest(b"firmware");
/// let sig = key.sign_prehashed(&digest);
/// assert!(hsm.verify(KeyRef::Slot(3), &digest, &sig).is_ok());
/// // Locked: re-provisioning is refused.
/// assert!(hsm.provision(3, key.verifying_key()).is_err());
/// ```
#[derive(Debug)]
pub struct SimulatedHsm {
    state: Mutex<HsmState>,
}

#[derive(Debug)]
struct HsmState {
    slots: [Option<VerifyingKey>; SLOT_COUNT],
    data_zone_locked: bool,
    verify_count: u64,
}

impl Default for SimulatedHsm {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulatedHsm {
    /// Creates an unlocked device with all slots empty.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Mutex::new(HsmState {
                slots: [None; SLOT_COUNT],
                data_zone_locked: false,
                verify_count: 0,
            }),
        }
    }

    /// Writes `key` into `slot`. Fails once the data zone is locked —
    /// this is the tamper-protection property UpKit relies on to prevent
    /// external actors from replacing the trusted public keys.
    pub fn provision(&self, slot: u8, key: VerifyingKey) -> Result<(), SecurityError> {
        let mut state = self.state.lock().expect("HSM mutex poisoned");
        if state.data_zone_locked {
            return Err(SecurityError::SlotLocked);
        }
        let idx = usize::from(slot);
        if idx >= SLOT_COUNT {
            return Err(SecurityError::EmptySlot);
        }
        state.slots[idx] = Some(key);
        Ok(())
    }

    /// Irreversibly locks the data zone (no further key writes).
    pub fn lock_data_zone(&self) {
        self.state
            .lock()
            .expect("HSM mutex poisoned")
            .data_zone_locked = true;
    }

    /// Returns whether the data zone has been locked.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.state
            .lock()
            .expect("HSM mutex poisoned")
            .data_zone_locked
    }

    /// Number of hardware verifications performed (for energy accounting).
    #[must_use]
    pub fn verify_count(&self) -> u64 {
        self.state.lock().expect("HSM mutex poisoned").verify_count
    }

    fn slot_key(&self, slot: u8) -> Result<VerifyingKey, SecurityError> {
        let state = self.state.lock().expect("HSM mutex poisoned");
        let idx = usize::from(slot);
        if idx >= SLOT_COUNT {
            return Err(SecurityError::EmptySlot);
        }
        state.slots[idx].ok_or(SecurityError::EmptySlot)
    }
}

impl SecurityBackend for SimulatedHsm {
    fn verify(
        &self,
        key: KeyRef<'_>,
        digest: &[u8; 32],
        signature: &Signature,
    ) -> Result<(), SecurityError> {
        let vk = match key {
            KeyRef::Slot(slot) => self.slot_key(slot)?,
            // The ATECC508 also verifies against caller-supplied keys.
            KeyRef::Sec1(bytes) => {
                VerifyingKey::from_sec1_bytes(bytes).map_err(|_| SecurityError::BadKey)?
            }
        };
        self.state.lock().expect("HSM mutex poisoned").verify_count += 1;
        vk.verify_prehashed(digest, signature)?;
        Ok(())
    }

    fn profile(&self) -> BackendProfile {
        BackendProfile {
            name: "CryptoAuthLib",
            verify_cycles: 0,
            // SHA-256 still runs on the host MCU in the paper's setup.
            digest_cycles_per_byte: 55,
            // ATECC508 ECDSA verify takes ~58 ms of device time.
            hw_verify_micros: 58_000,
            hardware_offload: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecdsa::SigningKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> SigningKey {
        SigningKey::generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn verify_from_slot() {
        let key = keypair(31);
        let hsm = SimulatedHsm::new();
        hsm.provision(0, key.verifying_key()).unwrap();
        let digest = hsm.digest(b"payload");
        let sig = key.sign_prehashed(&digest);
        hsm.verify(KeyRef::Slot(0), &digest, &sig).unwrap();
        assert_eq!(hsm.verify_count(), 1);
    }

    #[test]
    fn verify_rejects_wrong_slot_key() {
        let signer = keypair(32);
        let other = keypair(33);
        let hsm = SimulatedHsm::new();
        hsm.provision(1, other.verifying_key()).unwrap();
        let digest = hsm.digest(b"payload");
        let sig = signer.sign_prehashed(&digest);
        assert_eq!(
            hsm.verify(KeyRef::Slot(1), &digest, &sig),
            Err(SecurityError::BadSignature)
        );
    }

    #[test]
    fn empty_and_out_of_range_slots() {
        let key = keypair(34);
        let hsm = SimulatedHsm::new();
        let digest = hsm.digest(b"x");
        let sig = key.sign_prehashed(&digest);
        assert_eq!(
            hsm.verify(KeyRef::Slot(5), &digest, &sig),
            Err(SecurityError::EmptySlot)
        );
        assert_eq!(
            hsm.verify(KeyRef::Slot(200), &digest, &sig),
            Err(SecurityError::EmptySlot)
        );
        assert_eq!(
            hsm.provision(200, key.verifying_key()),
            Err(SecurityError::EmptySlot)
        );
    }

    #[test]
    fn lock_prevents_reprovisioning() {
        let key = keypair(35);
        let hsm = SimulatedHsm::new();
        hsm.provision(2, key.verifying_key()).unwrap();
        assert!(!hsm.is_locked());
        hsm.lock_data_zone();
        assert!(hsm.is_locked());
        assert_eq!(
            hsm.provision(2, keypair(36).verifying_key()),
            Err(SecurityError::SlotLocked)
        );
        // Reads still work after locking.
        let digest = hsm.digest(b"y");
        let sig = key.sign_prehashed(&digest);
        hsm.verify(KeyRef::Slot(2), &digest, &sig).unwrap();
    }

    #[test]
    fn inline_keys_still_accepted() {
        let key = keypair(37);
        let hsm = SimulatedHsm::new();
        let digest = hsm.digest(b"z");
        let sig = key.sign_prehashed(&digest);
        let sec1 = key.verifying_key().to_sec1_bytes();
        hsm.verify(KeyRef::Sec1(&sec1), &digest, &sig).unwrap();
    }

    #[test]
    fn profile_reports_hardware_offload() {
        let hsm = SimulatedHsm::new();
        let profile = hsm.profile();
        assert!(profile.hardware_offload);
        assert_eq!(profile.verify_cycles, 0);
        assert!(profile.hw_verify_micros > 0);
    }
}
