//! Cryptographic substrate for the UpKit reproduction.
//!
//! UpKit (ICDCS 2019) signs firmware updates twice — once by the vendor
//! server (integrity/authenticity) and once by the update server (freshness,
//! binding the image to a device token) — and verifies them both in the
//! update agent and in the bootloader. The paper builds on ECDSA over
//! secp256r1 with SHA-256 because that combination is supported by every
//! crypto library it evaluates (TinyDTLS, tinycrypt, CryptoAuthLib).
//!
//! This crate implements the whole stack from scratch:
//!
//! * [`mod@sha256`] / [`hmac`] — FIPS 180-4 SHA-256 and RFC 2104 HMAC.
//! * [`u256`] / [`mont`] — 256-bit integers and generic Montgomery field
//!   arithmetic.
//! * [`p256`] — the NIST P-256 group (Jacobian arithmetic, SEC1 encoding).
//! * [`ecdsa`] — ECDSA sign/verify with RFC 6979 deterministic nonces.
//! * [`backend`] — the *security interface*: pluggable backends mirroring
//!   the paper's crypto libraries.
//! * `hsm` (`std` only) — a simulated ATECC508 hardware security module.
//! * [`chacha20`] — RFC 8439 stream cipher for the pipeline's decryption
//!   stage (the paper's future-work confidentiality extension).
//!
//! # Scope
//!
//! The implementation is functionally faithful (real signatures, real
//! failure modes) but is **not** hardened against side channels and must not
//! be used to protect real systems; it exists so the reproduction's security
//! experiments exercise genuine cryptographic behaviour.
//!
//! # Examples
//!
//! ```
//! use upkit_crypto::ecdsa::SigningKey;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let vendor_key = SigningKey::generate(&mut rng);
//! let signature = vendor_key.sign(b"firmware v2.0");
//! vendor_key.verifying_key().verify(b"firmware v2.0", &signature).unwrap();
//! ```

#![cfg_attr(not(feature = "std"), no_std)]
#![warn(missing_docs)]
#![warn(
    clippy::std_instead_of_core,
    clippy::std_instead_of_alloc,
    clippy::alloc_instead_of_core
)]

extern crate alloc;

pub mod backend;
pub mod chacha20;
pub mod ecdsa;
pub mod hmac;
#[cfg(feature = "std")]
pub mod hsm;
pub mod mont;
pub mod p256;
pub mod sha256;
pub mod u256;

pub use backend::{BackendProfile, KeyRef, SecurityBackend, SecurityError};
pub use ecdsa::{EcdsaError, Signature, SigningKey, VerifyingKey};
pub use sha256::{sha256, Sha256};
