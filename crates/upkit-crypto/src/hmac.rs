//! HMAC-SHA256 (RFC 2104), used by the RFC 6979 deterministic-nonce
//! generator in [`crate::ecdsa`].

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256 MAC.
///
/// # Examples
///
/// ```
/// use upkit_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"The quick brown fox jumps over the lazy dog");
/// let tag = mac.finalize();
/// assert_eq!(tag[..4], [0xf7, 0xbc, 0x83, 0xf4]);
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl core::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

impl HmacSha256 {
    /// Creates a MAC keyed with `key`. Keys longer than the block size are
    /// hashed first, per RFC 2104.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut padded = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            padded[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            padded[..key.len()].copy_from_slice(key);
        }

        let mut inner_key = [0u8; BLOCK_LEN];
        let mut outer_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_key[i] = padded[i] ^ 0x36;
            outer_key[i] = padded[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&inner_key);
        Self { inner, outer_key }
    }

    /// Absorbs `data` into the MAC.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the MAC and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Computes HMAC-SHA256 over `data` in one call.
#[must_use]
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(tag: &[u8]) -> String {
        tag.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Test vectors from RFC 4231.
    #[test]
    fn rfc4231_case_1() {
        let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let tag = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let tag = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let tag = hmac_sha256(
            &[0xaa; 131],
            b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.",
        );
        assert_eq!(
            hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let mut mac = HmacSha256::new(b"some-key");
        for chunk in data.chunks(17) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), hmac_sha256(b"some-key", &data));
    }
}
