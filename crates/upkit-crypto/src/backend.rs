//! The *security interface*: UpKit's abstraction over heterogeneous
//! cryptographic implementations.
//!
//! The paper's design (Fig. 3) separates common modules from
//! platform-specific ones through four interfaces; the security interface is
//! the one that lets the verifier module run unchanged over TinyDTLS,
//! tinycrypt, or the CryptoAuthLib + ATECC508 hardware security module. This
//! module defines the [`SecurityBackend`] trait and the two software
//! backends; the simulated HSM lives in [`crate::hsm`].
//!
//! Both software backends execute the same (real) ECDSA math from
//! [`crate::ecdsa`]; what differs is their *profile* — modeled code size and
//! cycle counts calibrated to the libraries the paper measured — which the
//! simulator and footprint model consume.

use crate::ecdsa::{EcdsaError, Signature, VerifyingKey};
use crate::sha256::sha256;

/// Identifies a public key for a verification request.
///
/// Software backends only understand inline keys; the HSM backend can also
/// dereference one of its tamper-protected key slots.
#[derive(Clone, Copy, Debug)]
pub enum KeyRef<'a> {
    /// A SEC1 uncompressed public key supplied inline.
    Sec1(&'a [u8]),
    /// A key stored in hardware slot `n` of an HSM.
    Slot(u8),
}

/// Errors produced by a [`SecurityBackend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SecurityError {
    /// The signature did not verify.
    BadSignature,
    /// The supplied public key was malformed or off-curve.
    BadKey,
    /// The backend does not support the requested key reference
    /// (e.g. a hardware slot on a software backend).
    UnsupportedKeyRef,
    /// The referenced HSM slot holds no key.
    EmptySlot,
    /// The HSM rejected a write because its data zone is locked.
    SlotLocked,
}

impl core::fmt::Display for SecurityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadSignature => f.write_str("signature verification failed"),
            Self::BadKey => f.write_str("malformed or invalid public key"),
            Self::UnsupportedKeyRef => f.write_str("backend does not support this key reference"),
            Self::EmptySlot => f.write_str("HSM key slot is empty"),
            Self::SlotLocked => f.write_str("HSM data zone is locked"),
        }
    }
}

impl core::error::Error for SecurityError {}

impl From<EcdsaError> for SecurityError {
    fn from(err: EcdsaError) -> Self {
        match err {
            EcdsaError::InvalidSignature => Self::BadSignature,
            _ => Self::BadKey,
        }
    }
}

/// Modeled cost/size profile of a backend, used by the discrete-event
/// simulator (time, energy) and cross-checked by the footprint model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendProfile {
    /// Human-readable library name.
    pub name: &'static str,
    /// CPU cycles for one ECDSA-P256 verification (0 if offloaded).
    pub verify_cycles: u64,
    /// CPU cycles per byte of SHA-256 digesting.
    pub digest_cycles_per_byte: u64,
    /// Fixed wall-clock microseconds per hardware-offloaded verification.
    pub hw_verify_micros: u64,
    /// Whether signature verification runs on a hardware security module.
    pub hardware_offload: bool,
}

/// A pluggable cryptographic implementation.
///
/// Implementations must be usable from both the update agent and the
/// bootloader so the two can share a single copy of the library — the
/// code-reuse property the paper credits for UpKit's small footprint.
pub trait SecurityBackend: core::fmt::Debug + Send + Sync {
    /// Computes the SHA-256 digest of `data`.
    fn digest(&self, data: &[u8]) -> [u8; 32] {
        sha256(data)
    }

    /// Verifies an ECDSA-P256 `signature` over a 32-byte `digest` using the
    /// key identified by `key`.
    fn verify(
        &self,
        key: KeyRef<'_>,
        digest: &[u8; 32],
        signature: &Signature,
    ) -> Result<(), SecurityError>;

    /// Returns the modeled cost profile.
    fn profile(&self) -> BackendProfile;
}

fn verify_inline(
    key: KeyRef<'_>,
    digest: &[u8; 32],
    signature: &Signature,
) -> Result<(), SecurityError> {
    match key {
        KeyRef::Sec1(bytes) => {
            let vk = VerifyingKey::from_sec1_bytes(bytes).map_err(|_| SecurityError::BadKey)?;
            vk.verify_prehashed(digest, signature)?;
            Ok(())
        }
        KeyRef::Slot(_) => Err(SecurityError::UnsupportedKeyRef),
    }
}

/// Software backend modeled on Intel's `tinycrypt` library.
///
/// The paper measures tinycrypt builds as ~1.1 kB *larger* in flash than
/// TinyDTLS but slightly faster at ECC verification.
#[derive(Clone, Copy, Debug, Default)]
pub struct TinyCryptBackend;

impl SecurityBackend for TinyCryptBackend {
    fn verify(
        &self,
        key: KeyRef<'_>,
        digest: &[u8; 32],
        signature: &Signature,
    ) -> Result<(), SecurityError> {
        verify_inline(key, digest, signature)
    }

    fn profile(&self) -> BackendProfile {
        BackendProfile {
            name: "tinycrypt",
            // ~3.5 Mcycles/verify on Cortex-M4-class cores.
            verify_cycles: 3_500_000,
            digest_cycles_per_byte: 55,
            hw_verify_micros: 0,
            hardware_offload: false,
        }
    }
}

/// Software backend modeled on the Eclipse `TinyDTLS` crypto routines.
///
/// Smaller flash footprint than tinycrypt, somewhat slower verification.
#[derive(Clone, Copy, Debug, Default)]
pub struct TinyDtlsBackend;

impl SecurityBackend for TinyDtlsBackend {
    fn verify(
        &self,
        key: KeyRef<'_>,
        digest: &[u8; 32],
        signature: &Signature,
    ) -> Result<(), SecurityError> {
        verify_inline(key, digest, signature)
    }

    fn profile(&self) -> BackendProfile {
        BackendProfile {
            name: "TinyDTLS",
            verify_cycles: 5_200_000,
            digest_cycles_per_byte: 70,
            hw_verify_micros: 0,
            hardware_offload: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecdsa::SigningKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn backends() -> Vec<Box<dyn SecurityBackend>> {
        vec![Box::new(TinyCryptBackend), Box::new(TinyDtlsBackend)]
    }

    #[test]
    fn software_backends_verify_valid_signatures() {
        let mut rng = StdRng::seed_from_u64(21);
        let key = SigningKey::generate(&mut rng);
        let digest = sha256(b"manifest bytes");
        let sig = key.sign_prehashed(&digest);
        let sec1 = key.verifying_key().to_sec1_bytes();
        for backend in backends() {
            backend
                .verify(KeyRef::Sec1(&sec1), &digest, &sig)
                .unwrap_or_else(|e| panic!("{}: {e}", backend.profile().name));
        }
    }

    #[test]
    fn software_backends_reject_tampered_digest() {
        let mut rng = StdRng::seed_from_u64(22);
        let key = SigningKey::generate(&mut rng);
        let digest = sha256(b"manifest bytes");
        let sig = key.sign_prehashed(&digest);
        let sec1 = key.verifying_key().to_sec1_bytes();
        let mut bad = digest;
        bad[0] ^= 1;
        for backend in backends() {
            assert_eq!(
                backend.verify(KeyRef::Sec1(&sec1), &bad, &sig),
                Err(SecurityError::BadSignature)
            );
        }
    }

    #[test]
    fn software_backends_reject_hsm_slots() {
        let mut rng = StdRng::seed_from_u64(23);
        let key = SigningKey::generate(&mut rng);
        let digest = sha256(b"x");
        let sig = key.sign_prehashed(&digest);
        for backend in backends() {
            assert_eq!(
                backend.verify(KeyRef::Slot(0), &digest, &sig),
                Err(SecurityError::UnsupportedKeyRef)
            );
        }
    }

    #[test]
    fn software_backends_reject_garbage_keys() {
        let mut rng = StdRng::seed_from_u64(24);
        let key = SigningKey::generate(&mut rng);
        let digest = sha256(b"x");
        let sig = key.sign_prehashed(&digest);
        for backend in backends() {
            assert_eq!(
                backend.verify(KeyRef::Sec1(&[0u8; 65]), &digest, &sig),
                Err(SecurityError::BadKey)
            );
        }
    }

    #[test]
    fn profiles_differ_as_in_the_paper() {
        // TinyDTLS: smaller flash modeled elsewhere; here: slower verify.
        assert!(TinyDtlsBackend.profile().verify_cycles > TinyCryptBackend.profile().verify_cycles);
        assert!(!TinyDtlsBackend.profile().hardware_offload);
    }

    #[test]
    fn default_digest_is_sha256() {
        assert_eq!(TinyCryptBackend.digest(b"abc"), sha256(b"abc"));
    }
}
