//! ChaCha20 stream cipher (RFC 8439).
//!
//! Implements the paper's *future work*: "add a decryption stage in
//! UpKit's pipeline module, in order to make confidentiality independent
//! from the employed transport security layer." ChaCha20 is the natural
//! choice for the target class of devices — pure ARX operations, no
//! tables, tiny state — and is what TinyDTLS-class libraries ship for
//! constrained platforms.
//!
//! Only the keystream/XOR primitive lives here; authentication is not
//! needed on this path because UpKit already authenticates the firmware
//! through the signed manifest digest (encrypt-then-sign at the image
//! level).

use alloc::vec::Vec;

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }

    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Incremental ChaCha20 cipher. Encryption and decryption are the same
/// XOR operation; [`ChaCha20::apply`] can be called repeatedly on
/// consecutive chunks of any size (radio MTUs in UpKit's pipeline).
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u32,
    buffered: [u8; BLOCK_LEN],
    buffered_used: usize,
}

impl core::fmt::Debug for ChaCha20 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.debug_struct("ChaCha20")
            .field("counter", &self.counter)
            .finish_non_exhaustive()
    }
}

impl ChaCha20 {
    /// Creates a cipher with the RFC 8439 initial block counter of 1.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        Self::with_counter(key, nonce, 1)
    }

    /// Creates a cipher starting at an explicit block counter.
    #[must_use]
    pub fn with_counter(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        Self {
            key: *key,
            nonce: *nonce,
            counter,
            buffered: [0; BLOCK_LEN],
            buffered_used: BLOCK_LEN,
        }
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data {
            if self.buffered_used == BLOCK_LEN {
                self.buffered = block(&self.key, &self.nonce, self.counter);
                self.counter = self.counter.wrapping_add(1);
                self.buffered_used = 0;
            }
            *byte ^= self.buffered[self.buffered_used];
            self.buffered_used += 1;
        }
    }
}

/// One-shot encryption/decryption.
#[must_use]
pub fn chacha20_xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    ChaCha20::new(key, nonce).apply(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = i as u8;
        }
        key
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2.
        let key = rfc_key();
        let nonce = [0, 0, 0, 0x09, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, &nonce, 1);
        assert_eq!(
            &out[..16],
            &[
                0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
                0x71, 0xc4
            ]
        );
        assert_eq!(
            &out[48..],
            &[
                0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50,
                0x3c, 0x4e
            ]
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2: the "sunscreen" plaintext.
        let key = rfc_key();
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ciphertext = chacha20_xor(&key, &nonce, plaintext);
        assert_eq!(
            &ciphertext[..16],
            &[
                0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
                0x69, 0x81
            ]
        );
        assert_eq!(ciphertext.len(), 114);
        assert_eq!(&ciphertext[ciphertext.len() - 2..], &[0x87, 0x4d]);
    }

    #[test]
    fn xor_is_an_involution() {
        let key = [7u8; KEY_LEN];
        let nonce = [9u8; NONCE_LEN];
        let data = b"firmware image payload".to_vec();
        let encrypted = chacha20_xor(&key, &nonce, &data);
        assert_ne!(encrypted, data);
        assert_eq!(chacha20_xor(&key, &nonce, &encrypted), data);
    }

    #[test]
    fn chunked_matches_one_shot() {
        let key = [1u8; KEY_LEN];
        let nonce = [2u8; NONCE_LEN];
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let expected = chacha20_xor(&key, &nonce, &data);
        for chunk_size in [1usize, 3, 63, 64, 65, 100, 999] {
            let mut cipher = ChaCha20::new(&key, &nonce);
            let mut out = data.clone();
            for piece in out.chunks_mut(chunk_size) {
                cipher.apply(piece);
            }
            assert_eq!(out, expected, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [3u8; KEY_LEN];
        let a = chacha20_xor(&key, &[0u8; NONCE_LEN], &[0u8; 64]);
        let b = chacha20_xor(&key, &[1u8; NONCE_LEN], &[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_hides_key() {
        let cipher = ChaCha20::new(&[0xAB; KEY_LEN], &[0; NONCE_LEN]);
        assert!(!format!("{cipher:?}").contains("171")); // 0xAB
    }
}
