//! ECDSA over P-256 with SHA-256 digests and RFC 6979 deterministic nonces.
//!
//! This is the signature scheme behind UpKit's double-signature process: the
//! *vendor server* signs the firmware digest and manifest core, and the
//! *update server* signs the manifest extended with the device token. Both
//! use ECDSA/secp256r1/SHA-256 as in the paper.

use crate::hmac::HmacSha256;
use crate::p256::{double_scalar_mul, order, AffinePoint, PointError, Scalar};
use crate::sha256::sha256;
use crate::u256::U256;

#[cfg(feature = "std")]
use rand::Rng;

/// Byte length of a serialized signature (`r ‖ s`, raw fixed-width).
pub const SIGNATURE_LEN: usize = 64;
/// Byte length of a serialized public key (SEC1 uncompressed).
pub const PUBLIC_KEY_LEN: usize = 65;
/// Byte length of a serialized private key.
pub const PRIVATE_KEY_LEN: usize = 32;

/// Errors produced by signing-key and signature operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EcdsaError {
    /// A byte encoding had the wrong length or framing.
    Encoding,
    /// The private scalar was zero or not less than the group order.
    InvalidPrivateKey,
    /// The public key point was invalid (off-curve or malformed).
    InvalidPublicKey,
    /// Signature verification failed.
    InvalidSignature,
}

impl core::fmt::Display for EcdsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Encoding => f.write_str("malformed ECDSA byte encoding"),
            Self::InvalidPrivateKey => f.write_str("private key scalar out of range"),
            Self::InvalidPublicKey => f.write_str("public key is not a valid curve point"),
            Self::InvalidSignature => f.write_str("ECDSA signature verification failed"),
        }
    }
}

impl core::error::Error for EcdsaError {}

impl From<PointError> for EcdsaError {
    fn from(_: PointError) -> Self {
        Self::InvalidPublicKey
    }
}

/// An ECDSA signature as the raw pair `(r, s)`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    r: U256,
    s: U256,
}

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Signature(r: {}, s: {})", self.r, self.s)
    }
}

impl Signature {
    /// Serializes as 64 bytes: big-endian `r` then big-endian `s`.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses a 64-byte `r ‖ s` encoding, rejecting out-of-range values.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        if bytes.len() != SIGNATURE_LEN {
            return Err(EcdsaError::Encoding);
        }
        let mut rb = [0u8; 32];
        let mut sb = [0u8; 32];
        rb.copy_from_slice(&bytes[..32]);
        sb.copy_from_slice(&bytes[32..]);
        let r = U256::from_be_bytes(&rb);
        let s = U256::from_be_bytes(&sb);
        let n = order();
        if r.is_zero()
            || s.is_zero()
            || r.cmp_raw(&n) != core::cmp::Ordering::Less
            || s.cmp_raw(&n) != core::cmp::Ordering::Less
        {
            return Err(EcdsaError::Encoding);
        }
        Ok(Self { r, s })
    }
}

/// A P-256 verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VerifyingKey {
    point: AffinePoint,
}

impl VerifyingKey {
    /// Parses a SEC1 uncompressed public key, validating the point.
    pub fn from_sec1_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        let point = AffinePoint::from_sec1_bytes(bytes)?;
        if matches!(point, AffinePoint::Identity) {
            return Err(EcdsaError::InvalidPublicKey);
        }
        Ok(Self { point })
    }

    /// Serializes to SEC1 uncompressed form.
    #[must_use]
    pub fn to_sec1_bytes(&self) -> [u8; PUBLIC_KEY_LEN] {
        self.point.to_sec1_bytes()
    }

    /// Verifies `signature` over the already-hashed 32-byte `digest`.
    pub fn verify_prehashed(
        &self,
        digest: &[u8; 32],
        signature: &Signature,
    ) -> Result<(), EcdsaError> {
        let z = bits2int(digest);
        let s = Scalar::from_u256(&signature.s);
        let s_inv = s.invert().ok_or(EcdsaError::InvalidSignature)?;
        let u1 = Scalar::from_u256(&z).mul(&s_inv).to_u256();
        let u2 = Scalar::from_u256(&signature.r).mul(&s_inv).to_u256();
        let point = double_scalar_mul(&u1, &u2, &self.point).to_affine();
        let AffinePoint::Point { x, .. } = point else {
            return Err(EcdsaError::InvalidSignature);
        };
        let x_mod_n = x.to_u256().reduce_mod(&order());
        if x_mod_n == signature.r {
            Ok(())
        } else {
            Err(EcdsaError::InvalidSignature)
        }
    }

    /// Hashes `message` with SHA-256 and verifies `signature` over it.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), EcdsaError> {
        self.verify_prehashed(&sha256(message), signature)
    }
}

/// A P-256 signing (private) key.
///
/// The corresponding [`VerifyingKey`] is derived on construction so that the
/// public half is always consistent with the private scalar.
#[derive(Clone)]
pub struct SigningKey {
    d: U256,
    public: VerifyingKey,
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print the private scalar.
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl SigningKey {
    /// Constructs a signing key from a big-endian 32-byte private scalar.
    pub fn from_bytes(bytes: &[u8; PRIVATE_KEY_LEN]) -> Result<Self, EcdsaError> {
        let d = U256::from_be_bytes(bytes);
        if d.is_zero() || d.cmp_raw(&order()) != core::cmp::Ordering::Less {
            return Err(EcdsaError::InvalidPrivateKey);
        }
        let point = AffinePoint::generator()
            .to_jacobian()
            .mul_scalar(&d)
            .to_affine();
        Ok(Self {
            d,
            public: VerifyingKey { point },
        })
    }

    /// Generates a fresh random signing key (host-side: key generation
    /// happens on the vendor/update servers, never on a device).
    #[cfg(feature = "std")]
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let mut bytes = [0u8; PRIVATE_KEY_LEN];
            rng.fill_bytes(&mut bytes);
            if let Ok(key) = Self::from_bytes(&bytes) {
                return key;
            }
        }
    }

    /// Serializes the private scalar as 32 big-endian bytes.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; PRIVATE_KEY_LEN] {
        self.d.to_be_bytes()
    }

    /// Returns the corresponding verifying key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs the already-hashed 32-byte `digest` with an RFC 6979
    /// deterministic nonce.
    #[must_use]
    pub fn sign_prehashed(&self, digest: &[u8; 32]) -> Signature {
        let z = bits2int(digest);
        let z_scalar = Scalar::from_u256(&z);
        let d_scalar = Scalar::from_u256(&self.d);

        let mut nonce_gen = Rfc6979::new(&self.d.to_be_bytes(), digest);
        loop {
            let k = nonce_gen.next_candidate();
            if k.is_zero() || k.cmp_raw(&order()) != core::cmp::Ordering::Less {
                continue;
            }
            let point = AffinePoint::generator()
                .to_jacobian()
                .mul_scalar(&k)
                .to_affine();
            let AffinePoint::Point { x, .. } = point else {
                continue;
            };
            let r = x.to_u256().reduce_mod(&order());
            if r.is_zero() {
                continue;
            }
            let k_scalar = Scalar::from_u256(&k);
            let Some(k_inv) = k_scalar.invert() else {
                continue;
            };
            let s = k_inv
                .mul(&z_scalar.add(&Scalar::from_u256(&r).mul(&d_scalar)))
                .to_u256();
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
    }

    /// Hashes `message` with SHA-256 and signs the digest.
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.sign_prehashed(&sha256(message))
    }
}

/// Interprets a 32-byte digest as an integer per RFC 6979 §2.3.2 (for a
/// 256-bit group order the digest is taken verbatim).
fn bits2int(digest: &[u8; 32]) -> U256 {
    U256::from_be_bytes(digest)
}

/// RFC 6979 deterministic nonce generator (HMAC-SHA256 instantiation).
struct Rfc6979 {
    k: [u8; 32],
    v: [u8; 32],
}

impl Rfc6979 {
    fn new(private_key: &[u8; 32], digest: &[u8; 32]) -> Self {
        // bits2octets: reduce the digest modulo n and re-serialize.
        let h_mod_n = bits2int(digest).reduce_mod(&order()).to_be_bytes();

        let mut k = [0u8; 32];
        let mut v = [0x01u8; 32];

        // K = HMAC_K(V || 0x00 || x || h)
        let mut mac = HmacSha256::new(&k);
        mac.update(&v);
        mac.update(&[0x00]);
        mac.update(private_key);
        mac.update(&h_mod_n);
        k = mac.finalize();
        // V = HMAC_K(V)
        v = crate::hmac::hmac_sha256(&k, &v);
        // K = HMAC_K(V || 0x01 || x || h)
        let mut mac = HmacSha256::new(&k);
        mac.update(&v);
        mac.update(&[0x01]);
        mac.update(private_key);
        mac.update(&h_mod_n);
        k = mac.finalize();
        // V = HMAC_K(V)
        v = crate::hmac::hmac_sha256(&k, &v);

        Self { k, v }
    }

    fn next_candidate(&mut self) -> U256 {
        self.v = crate::hmac::hmac_sha256(&self.k, &self.v);
        let candidate = U256::from_be_bytes(&self.v);
        // Prepare state for a potential retry.
        let mut mac = HmacSha256::new(&self.k);
        mac.update(&self.v);
        mac.update(&[0x00]);
        self.k = mac.finalize();
        self.v = crate::hmac::hmac_sha256(&self.k, &self.v);
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hex_bytes(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap())
            .collect()
    }

    fn rfc6979_key() -> SigningKey {
        let mut d = [0u8; 32];
        d.copy_from_slice(&hex_bytes(
            "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721",
        ));
        SigningKey::from_bytes(&d).unwrap()
    }

    #[test]
    fn rfc6979_public_key_derivation() {
        // RFC 6979 A.2.5 curve P-256 key pair.
        let key = rfc6979_key();
        let sec1 = key.verifying_key().to_sec1_bytes();
        assert_eq!(
            sec1[1..33].to_vec(),
            hex_bytes("60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6")
        );
        assert_eq!(
            sec1[33..].to_vec(),
            hex_bytes("7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299")
        );
    }

    #[test]
    fn rfc6979_sample_signature() {
        // RFC 6979 A.2.5: message "sample", SHA-256.
        let key = rfc6979_key();
        let sig = key.sign(b"sample");
        let bytes = sig.to_bytes();
        assert_eq!(
            bytes[..32].to_vec(),
            hex_bytes("efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716")
        );
        assert_eq!(
            bytes[32..].to_vec(),
            hex_bytes("f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8")
        );
    }

    #[test]
    fn rfc6979_test_signature() {
        // RFC 6979 A.2.5: message "test", SHA-256.
        let key = rfc6979_key();
        let sig = key.sign(b"test");
        let bytes = sig.to_bytes();
        assert_eq!(
            bytes[..32].to_vec(),
            hex_bytes("f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367")
        );
        assert_eq!(
            bytes[32..].to_vec(),
            hex_bytes("019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083")
        );
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"firmware image v2.0");
        key.verifying_key()
            .verify(b"firmware image v2.0", &sig)
            .expect("valid signature verifies");
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let mut rng = StdRng::seed_from_u64(8);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"original");
        assert_eq!(
            key.verifying_key().verify(b"tampered", &sig),
            Err(EcdsaError::InvalidSignature)
        );
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let mut rng = StdRng::seed_from_u64(9);
        let key_a = SigningKey::generate(&mut rng);
        let key_b = SigningKey::generate(&mut rng);
        let sig = key_a.sign(b"message");
        assert_eq!(
            key_b.verifying_key().verify(b"message", &sig),
            Err(EcdsaError::InvalidSignature)
        );
    }

    #[test]
    fn verify_rejects_bitflipped_signature() {
        let mut rng = StdRng::seed_from_u64(10);
        let key = SigningKey::generate(&mut rng);
        let mut bytes = key.sign(b"message").to_bytes();
        bytes[17] ^= 0x40;
        match Signature::from_bytes(&bytes) {
            // Either the mangled encoding is rejected outright…
            Err(EcdsaError::Encoding) => {}
            // …or it parses but fails verification.
            Ok(sig) => assert_eq!(
                key.verifying_key().verify(b"message", &sig),
                Err(EcdsaError::InvalidSignature)
            ),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn signature_byte_round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"round trip");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
    }

    #[test]
    fn signature_rejects_zero_r_or_s() {
        let mut zero_r = [0u8; 64];
        zero_r[63] = 1; // s = 1, r = 0
        assert_eq!(Signature::from_bytes(&zero_r), Err(EcdsaError::Encoding));
        let mut zero_s = [0u8; 64];
        zero_s[31] = 1; // r = 1, s = 0
        assert_eq!(Signature::from_bytes(&zero_s), Err(EcdsaError::Encoding));
        assert_eq!(Signature::from_bytes(&[1u8; 63]), Err(EcdsaError::Encoding));
    }

    #[test]
    fn signing_key_rejects_out_of_range() {
        assert!(matches!(
            SigningKey::from_bytes(&[0u8; 32]),
            Err(EcdsaError::InvalidPrivateKey)
        ));
        assert!(matches!(
            SigningKey::from_bytes(&[0xffu8; 32]),
            Err(EcdsaError::InvalidPrivateKey)
        ));
    }

    #[test]
    fn private_key_round_trip() {
        let mut rng = StdRng::seed_from_u64(12);
        let key = SigningKey::generate(&mut rng);
        let restored = SigningKey::from_bytes(&key.to_bytes()).unwrap();
        assert_eq!(
            restored.verifying_key().to_sec1_bytes().to_vec(),
            key.verifying_key().to_sec1_bytes().to_vec()
        );
    }

    #[test]
    fn debug_does_not_leak_private_scalar() {
        let mut rng = StdRng::seed_from_u64(13);
        let key = SigningKey::generate(&mut rng);
        let printed = format!("{key:?}");
        let private_hex: String = key.to_bytes().iter().map(|b| format!("{b:02x}")).collect();
        assert!(!printed.contains(&private_hex[..16]));
    }

    #[test]
    fn determinism_of_rfc6979() {
        let mut rng = StdRng::seed_from_u64(14);
        let key = SigningKey::generate(&mut rng);
        assert_eq!(
            key.sign(b"same message").to_bytes().to_vec(),
            key.sign(b"same message").to_bytes().to_vec()
        );
    }
}
