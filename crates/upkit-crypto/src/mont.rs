//! Generic 4-limb Montgomery arithmetic over a prime modulus.
//!
//! Both P-256 fields (the coordinate field `p` and the scalar field `n`) are
//! instances of [`Fe`] parameterized by a [`FieldParams`] marker type. The
//! Montgomery constants `R = 2^256 mod m` and `R² mod m` are derived at
//! compile time from the modulus alone, so the only trusted inputs are the
//! modulus limbs themselves (which the test suite cross-checks against the
//! curve's published test vectors).

use core::marker::PhantomData;

use crate::u256::{adc, mac, U256};

/// Parameters of a prime field used in Montgomery form.
///
/// Implementors must guarantee `MODULUS` is an odd prime larger than `2^255`
/// (true for both P-256 moduli); [`Fe`] relies on this for its reduction
/// bounds.
pub trait FieldParams: Copy + Eq + core::fmt::Debug + 'static {
    /// The prime modulus.
    const MODULUS: U256;
    /// `-MODULUS⁻¹ mod 2^64`, used by the Montgomery reduction step.
    const N0: u64 = neg_inv_u64(Self::MODULUS.0[0]);
    /// The Montgomery constant `R = 2^256 mod MODULUS`, derived at
    /// compile time from the modulus alone.
    const R: U256 = compute_r(&Self::MODULUS);
    /// The Montgomery constant `R² mod MODULUS`, derived at compile time.
    const R2: U256 = compute_r2(&Self::MODULUS);
}

/// Computes `-m⁻¹ mod 2^64` for odd `m` by Newton iteration.
#[must_use]
pub const fn neg_inv_u64(m: u64) -> u64 {
    // x_{k+1} = x_k * (2 - m * x_k) doubles correct low bits each step.
    let mut x = 1u64;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(x)));
        i += 1;
    }
    x.wrapping_neg()
}

/// Computes `2^256 mod m` by modular doubling, for `m > 2^255`.
#[must_use]
pub const fn compute_r(m: &U256) -> U256 {
    // Start from 2^255 mod m = 2^255 - ... — simpler: 1 doubled 256 times.
    let mut v = U256::ONE;
    let mut i = 0;
    while i < 256 {
        v = double_mod(&v, m);
        i += 1;
    }
    v
}

/// Computes `2^512 mod m` (the Montgomery `R²`), for `m > 2^255`.
#[must_use]
pub const fn compute_r2(m: &U256) -> U256 {
    let mut v = compute_r(m);
    let mut i = 0;
    while i < 256 {
        v = double_mod(&v, m);
        i += 1;
    }
    v
}

/// Doubles `v < m` modulo `m` where `m > 2^255` (so a single conditional
/// subtraction suffices even when the doubling carries out of 256 bits).
const fn double_mod(v: &U256, m: &U256) -> U256 {
    let (sum, carry) = v.adc(v);
    // `sum >= m` expressed without `Ord`: the subtraction does not borrow.
    let (reduced, borrow) = sum.sbb(m);
    if carry == 1 || borrow == 0 {
        reduced
    } else {
        sum
    }
}

/// A field element in Montgomery representation.
///
/// All arithmetic stays in Montgomery form; conversion happens only at the
/// byte-serialization boundary. This is *not* a constant-time
/// implementation — the repository models the functional behaviour of
/// UpKit's crypto libraries, not their side-channel properties.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Fe<P: FieldParams> {
    mont: U256,
    _params: PhantomData<P>,
}

impl<P: FieldParams> core::fmt::Debug for Fe<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fe({})", self.to_u256())
    }
}

impl<P: FieldParams> Fe<P> {
    /// The additive identity.
    #[must_use]
    pub fn zero() -> Self {
        Self {
            mont: U256::ZERO,
            _params: PhantomData,
        }
    }

    /// The multiplicative identity.
    #[must_use]
    pub fn one() -> Self {
        Self {
            mont: P::R,
            _params: PhantomData,
        }
    }

    /// Converts a canonical integer into the field, reducing modulo the
    /// modulus first.
    #[must_use]
    pub fn from_u256(v: &U256) -> Self {
        let reduced = if v.cmp_raw(&P::MODULUS) == core::cmp::Ordering::Less {
            *v
        } else {
            v.reduce_mod(&P::MODULUS)
        };
        Self {
            mont: mont_mul::<P>(&reduced, &P::R2),
            _params: PhantomData,
        }
    }

    /// Converts a small integer into the field.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        Self::from_u256(&U256::from_u64(v))
    }

    /// Returns the canonical (non-Montgomery) integer value.
    #[must_use]
    pub fn to_u256(self) -> U256 {
        mont_mul::<P>(&self.mont, &U256::ONE)
    }

    /// Returns `true` if this is the additive identity.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.mont.is_zero()
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        let (sum, carry) = self.mont.adc(&rhs.mont);
        let reduced = if carry == 1 || sum.cmp_raw(&P::MODULUS) != core::cmp::Ordering::Less {
            let (r, _) = sum.sbb(&P::MODULUS);
            r
        } else {
            sum
        };
        Self {
            mont: reduced,
            _params: PhantomData,
        }
    }

    /// Field subtraction.
    #[must_use]
    pub fn sub(&self, rhs: &Self) -> Self {
        let (diff, borrow) = self.mont.sbb(&rhs.mont);
        let reduced = if borrow == 1 {
            let (r, _) = diff.adc(&P::MODULUS);
            r
        } else {
            diff
        };
        Self {
            mont: reduced,
            _params: PhantomData,
        }
    }

    /// Additive inverse.
    #[must_use]
    pub fn neg(&self) -> Self {
        Self::zero().sub(self)
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        Self {
            mont: mont_mul::<P>(&self.mont, &rhs.mont),
            _params: PhantomData,
        }
    }

    /// Field squaring.
    #[must_use]
    pub fn square(&self) -> Self {
        self.mul(self)
    }

    /// Doubles the element.
    #[must_use]
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Multiplies by a small constant.
    #[must_use]
    pub fn mul_u64(&self, k: u64) -> Self {
        let mut acc = Self::zero();
        let mut base = *self;
        let mut k = k;
        while k != 0 {
            if k & 1 == 1 {
                acc = acc.add(&base);
            }
            base = base.double();
            k >>= 1;
        }
        acc
    }

    /// Raises to the power `e` (square-and-multiply, MSB first).
    #[must_use]
    pub fn pow(&self, e: &U256) -> Self {
        let mut acc = Self::one();
        let bits = e.bits();
        for i in (0..bits).rev() {
            acc = acc.square();
            if e.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`self^(m-2)`).
    ///
    /// Returns `None` for zero, which has no inverse.
    #[must_use]
    pub fn invert(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let (exp, _) = P::MODULUS.sbb(&U256::from_u64(2));
        Some(self.pow(&exp))
    }

    /// Square root for moduli where `m ≡ 3 (mod 4)` (true for the P-256
    /// coordinate field): `sqrt(a) = a^((m+1)/4)`. Returns `None` when the
    /// element is a quadratic non-residue.
    #[must_use]
    pub fn sqrt(&self) -> Option<Self> {
        debug_assert_eq!(P::MODULUS.0[0] & 3, 3, "sqrt requires m ≡ 3 (mod 4)");
        let (m_plus_1, carry) = P::MODULUS.adc(&U256::ONE);
        // m < 2^256 - 1 for both P-256 moduli, so no carry.
        debug_assert_eq!(carry, 0);
        let exp = m_plus_1.shr1().shr1();
        let candidate = self.pow(&exp);
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }
}

/// Montgomery product `a * b * R⁻¹ mod m` (CIOS method, 4 limbs).
#[allow(clippy::needless_range_loop)] // limb indices mirror the CIOS paper
fn mont_mul<P: FieldParams>(a: &U256, b: &U256) -> U256 {
    let m = P::MODULUS.0;
    let n0 = P::N0;
    let mut t = [0u64; 6];

    for i in 0..4 {
        // t += a[i] * b
        let mut carry = 0u64;
        for j in 0..4 {
            let (lo, hi) = mac(t[j], a.0[i], b.0[j], carry);
            t[j] = lo;
            carry = hi;
        }
        let (t4, c) = adc(t[4], carry, 0);
        t[4] = t4;
        t[5] += c;

        // Reduction step: add u * m so the low limb becomes zero, then shift.
        let u = t[0].wrapping_mul(n0);
        let (_, mut carry) = mac(t[0], u, m[0], 0);
        for j in 1..4 {
            let (lo, hi) = mac(t[j], u, m[j], carry);
            t[j - 1] = lo;
            carry = hi;
        }
        let (t3, c) = adc(t[4], carry, 0);
        t[3] = t3;
        t[4] = t[5] + c;
        t[5] = 0;
    }

    let result = U256::from_limbs([t[0], t[1], t[2], t[3]]);
    if t[4] == 1 || result.cmp_raw(&P::MODULUS) != core::cmp::Ordering::Less {
        let (reduced, _) = result.sbb(&P::MODULUS);
        reduced
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small-ish test field: 2^255 - 19 is prime and > 2^255... it is not
    /// (> 2^254). Use the P-256 coordinate prime's structure-free cousin:
    /// m = 2^256 - 189 (a known prime) keeps the `m > 2^255` invariant.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct TestField;

    impl FieldParams for TestField {
        const MODULUS: U256 = U256::from_limbs([u64::MAX - 188, u64::MAX, u64::MAX, u64::MAX]);
    }

    type F = Fe<TestField>;

    #[test]
    fn neg_inv_is_inverse() {
        for m in [1u64, 3, 0xf3b9_cac2_fc63_2551, u64::MAX, u64::MAX - 188] {
            let n0 = neg_inv_u64(m);
            assert_eq!(m.wrapping_mul(n0.wrapping_neg()), 1, "m = {m:#x}");
        }
    }

    #[test]
    fn r_constants_match_definition() {
        // R ≡ 2^256 (mod m): verify R + 189 overflows to exactly 2^256 ...
        // simpler: R = 2^256 - m for m > 2^255.
        let (expected_r, borrow) = U256::ZERO.sbb(&TestField::MODULUS);
        assert_eq!(borrow, 1); // 2^256 - m computed as wrap-around
        assert_eq!(TestField::R, expected_r);
    }

    #[test]
    fn round_trip_via_montgomery() {
        for v in [0u64, 1, 2, 188, 189, 190, 12345, u64::MAX] {
            let fe = F::from_u64(v);
            assert_eq!(fe.to_u256(), U256::from_u64(v));
        }
    }

    #[test]
    fn add_commutes_and_wraps() {
        let a = F::from_u256(&TestField::MODULUS.sbb(&U256::ONE).0); // m - 1
        let b = F::from_u64(5);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).to_u256(), U256::from_u64(4));
    }

    #[test]
    fn sub_is_inverse_of_add() {
        let a = F::from_u64(123);
        let b = F::from_u64(100_000);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn neg_adds_to_zero() {
        let a = F::from_u64(77);
        assert!(a.add(&a.neg()).is_zero());
        assert!(F::zero().neg().is_zero());
    }

    #[test]
    fn mul_matches_small_values() {
        let a = F::from_u64(1 << 40);
        let b = F::from_u64(1 << 30);
        assert_eq!(a.mul(&b).to_u256(), U256::from_limbs([0, 1 << 6, 0, 0]));
    }

    #[test]
    fn mul_wraps_modulus() {
        // (m - 1)² ≡ 1 (mod m)
        let m_minus_1 = F::from_u256(&TestField::MODULUS.sbb(&U256::ONE).0);
        assert_eq!(m_minus_1.square().to_u256(), U256::ONE);
    }

    #[test]
    fn pow_and_invert() {
        let a = F::from_u64(987_654_321);
        let inv = a.invert().expect("non-zero invertible");
        assert_eq!(a.mul(&inv).to_u256(), U256::ONE);
        assert!(F::zero().invert().is_none());
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(m-1) = 1 for a != 0.
        let a = F::from_u64(2);
        let (exp, _) = TestField::MODULUS.sbb(&U256::ONE);
        assert_eq!(a.pow(&exp).to_u256(), U256::ONE);
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = F::from_u64(0xdead_beef);
        assert_eq!(a.mul_u64(8), a.mul(&F::from_u64(8)));
        assert_eq!(a.mul_u64(0), F::zero());
        assert_eq!(a.mul_u64(1), a);
    }

    #[test]
    fn sqrt_round_trip() {
        // m = 2^256 - 189 ≡ 3 (mod 4): (2^256 - 189) mod 4 = (0 - 1) mod 4 = 3.
        let a = F::from_u64(1234);
        let square = a.square();
        let root = square.sqrt().expect("squares have roots");
        assert!(root == a || root == a.neg());
    }
}
