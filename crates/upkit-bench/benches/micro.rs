//! Criterion micro-benchmarks for the substrate hot paths: hashing,
//! signatures, compression, differencing, flash slot operations, and the
//! full pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use upkit_compress::{compress, decompress, Params};
use upkit_core::image::FIRMWARE_OFFSET;
use upkit_core::pipeline::Pipeline;
use upkit_crypto::ecdsa::SigningKey;
use upkit_crypto::sha256::sha256;
use upkit_delta::{diff, patch};
use upkit_flash::{configuration_a, standard, FlashGeometry, MemoryLayout, SimFlash};
use upkit_sim::FirmwareGenerator;

fn fast_geometry() -> FlashGeometry {
    FlashGeometry {
        size: 4096 * 256,
        sector_size: 4096,
        read_micros_per_byte: 0,
        write_micros_per_byte: 0,
        erase_micros_per_sector: 0,
    }
}

fn bench_sha256(c: &mut Criterion) {
    let data = FirmwareGenerator::new(1).base(100_000);
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("digest_100kB", |b| b.iter(|| sha256(&data)));
    group.finish();
}

fn bench_ecdsa(c: &mut Criterion) {
    let key = SigningKey::generate(&mut StdRng::seed_from_u64(2));
    let digest = sha256(b"manifest");
    let sig = key.sign_prehashed(&digest);
    let vk = key.verifying_key();
    c.bench_function("ecdsa_p256_sign", |b| {
        b.iter(|| key.sign_prehashed(&digest))
    });
    c.bench_function("ecdsa_p256_verify", |b| {
        b.iter(|| vk.verify_prehashed(&digest, &sig).unwrap())
    });
}

fn bench_lzss(c: &mut Criterion) {
    let data = FirmwareGenerator::new(3).base(100_000);
    let packed = compress(&data, Params::default());
    let mut group = c.benchmark_group("lzss");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("compress_100kB", |b| {
        b.iter(|| compress(&data, Params::default()))
    });
    group.bench_function("decompress_100kB", |b| {
        b.iter(|| decompress(&packed).unwrap())
    });
    group.finish();
}

fn bench_bsdiff(c: &mut Criterion) {
    let generator = FirmwareGenerator::new(4);
    let old = generator.base(100_000);
    let new = generator.app_change(&old, 1000);
    let delta = diff(&old, &new);
    let mut group = c.benchmark_group("bsdiff");
    group.sample_size(10);
    group.bench_function("diff_100kB_app_change", |b| b.iter(|| diff(&old, &new)));
    group.bench_function("patch_100kB", |b| b.iter(|| patch(&old, &delta).unwrap()));
    group.finish();
}

fn bench_flash(c: &mut Criterion) {
    fn layout() -> MemoryLayout {
        configuration_a(Box::new(SimFlash::new(fast_geometry())), 4096 * 32).unwrap()
    }
    c.bench_function("flash_slot_swap_128kB", |b| {
        b.iter_batched(
            || {
                let mut l = layout();
                l.erase_slot(standard::SLOT_A).unwrap();
                l.erase_slot(standard::SLOT_B).unwrap();
                l
            },
            |mut l| l.swap_slots(standard::SLOT_A, standard::SLOT_B).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let generator = FirmwareGenerator::new(5);
    let old = generator.base(100_000);
    let new = generator.os_version_change(&old);
    let wire = compress(&diff(&old, &new), Params::default());

    c.bench_function("pipeline_differential_100kB", |b| {
        b.iter_batched(
            || {
                let mut layout =
                    configuration_a(Box::new(SimFlash::new(fast_geometry())), 4096 * 40).unwrap();
                layout.erase_slot(standard::SLOT_A).unwrap();
                layout
                    .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &old)
                    .unwrap();
                layout.erase_slot(standard::SLOT_B).unwrap();
                layout
            },
            |mut layout| {
                let mut pipeline = Pipeline::new_differential(
                    &mut layout,
                    standard::SLOT_B,
                    standard::SLOT_A,
                    old.len() as u32,
                    new.len() as u32,
                )
                .unwrap();
                for chunk in wire.chunks(244) {
                    pipeline.push(&mut layout, chunk).unwrap();
                }
                pipeline.finish(&mut layout).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_ecdsa,
    bench_lzss,
    bench_bsdiff,
    bench_flash,
    bench_pipeline
);
criterion_main!(benches);
