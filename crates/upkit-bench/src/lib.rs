//! Shared reporting helpers for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it and prints the paper's number next to
//! the reproduced one. These helpers keep the output format uniform so
//! `EXPERIMENTS.md` can quote it directly.

#![warn(missing_docs)]

/// Prints a table with a title, header row, and aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| (*s).to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a paper-vs-measured pair with the relative deviation.
#[must_use]
pub fn compare(paper: f64, measured: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:.1}");
    }
    let pct = (measured - paper) / paper * 100.0;
    format!("{measured:.1} ({pct:+.1}%)")
}

/// Formats seconds from microseconds.
#[must_use]
pub fn secs(micros: u64) -> f64 {
    micros as f64 / 1e6
}

/// Formats a byte count with a thousands separator.
#[must_use]
pub fn bytes(n: u32) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A minimal JSON value for the machine-readable `BENCH_*.json` artifacts
/// the perf benches emit (no external serialization dependency).
#[derive(Clone, Debug)]
pub enum Json {
    /// A float, rendered with three decimals.
    Num(f64),
    /// An integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    /// Convenience constructor for object fields.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Self {
        Self::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as pretty-printed JSON (2-space indent).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Self::Num(v) => out.push_str(&format!("{v:.3}")),
            Self::Int(v) => out.push_str(&v.to_string()),
            Self::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Self::Str(v) => {
                out.push('"');
                for c in v.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Self::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str(&format!("\"{key}\": "));
                    value.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
            Self::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_nested_objects() {
        let json = Json::obj(vec![
            ("bench", Json::Str("gen".into())),
            ("ok", Json::Bool(true)),
            ("wall_ms", Json::obj(vec![("seq", Json::Num(1.5))])),
            ("counts", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let rendered = json.render();
        assert!(rendered.contains("\"bench\": \"gen\""));
        assert!(rendered.contains("\"seq\": 1.500"));
        assert!(rendered.contains("\"counts\": [\n"));
        assert!(rendered.ends_with("}\n"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\"\n"
        );
    }

    #[test]
    fn compare_reports_deviation() {
        assert_eq!(compare(100.0, 110.0), "110.0 (+10.0%)");
        assert_eq!(compare(0.0, 5.0), "5.0");
    }

    #[test]
    fn bytes_groups_thousands() {
        assert_eq!(bytes(0), "0");
        assert_eq!(bytes(999), "999");
        assert_eq!(bytes(1000), "1,000");
        assert_eq!(bytes(218_472), "218,472");
    }

    #[test]
    fn secs_converts() {
        assert!((secs(61_500_000) - 61.5).abs() < 1e-9);
    }
}
