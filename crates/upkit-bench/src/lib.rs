//! Shared reporting helpers for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it and prints the paper's number next to
//! the reproduced one. These helpers keep the output format uniform so
//! `EXPERIMENTS.md` can quote it directly.

#![warn(missing_docs)]

/// Prints a table with a title, header row, and aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| (*s).to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a paper-vs-measured pair with the relative deviation.
#[must_use]
pub fn compare(paper: f64, measured: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:.1}");
    }
    let pct = (measured - paper) / paper * 100.0;
    format!("{measured:.1} ({pct:+.1}%)")
}

/// Formats seconds from microseconds.
#[must_use]
pub fn secs(micros: u64) -> f64 {
    micros as f64 / 1e6
}

/// Formats a byte count with a thousands separator.
#[must_use]
pub fn bytes(n: u32) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A minimal JSON value for the machine-readable `BENCH_*.json` artifacts
/// the perf benches emit (no external serialization dependency).
#[derive(Clone, Debug)]
pub enum Json {
    /// A float, rendered with three decimals.
    Num(f64),
    /// An integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
    /// A null (parsed from foreign files; the benches never emit it).
    Null,
}

impl Json {
    /// Convenience constructor for object fields.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Self {
        Self::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as pretty-printed JSON (2-space indent).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Field lookup on an object (`None` on other variants or a missing
    /// key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Num`, `Int`, and `Bool` (as 0/1) coerce, everything
    /// else is `None`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(v) => Some(*v),
            Self::Int(v) => Some(*v as f64),
            Self::Bool(v) => Some(f64::from(u8::from(*v))),
            _ => None,
        }
    }

    /// Every numeric leaf of the tree as `(dotted.path, value)`, in
    /// document order. Array elements are indexed (`rounds.0`,
    /// `rounds.1`, …). This is the flat view `bench_diff` compares.
    #[must_use]
    pub fn numeric_leaves(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        self.collect_leaves("", &mut out);
        out
    }

    fn collect_leaves(&self, prefix: &str, out: &mut Vec<(String, f64)>) {
        let path = |segment: &str| {
            if prefix.is_empty() {
                segment.to_string()
            } else {
                format!("{prefix}.{segment}")
            }
        };
        match self {
            Self::Obj(fields) => {
                for (key, value) in fields {
                    value.collect_leaves(&path(key), out);
                }
            }
            Self::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    item.collect_leaves(&path(&i.to_string()), out);
                }
            }
            _ => {
                if let Some(v) = self.as_f64() {
                    out.push((prefix.to_string(), v));
                }
            }
        }
    }

    /// Parses a JSON document (the counterpart of [`Json::render`]).
    ///
    /// Supports the full JSON grammar the benches emit plus `null`; numbers
    /// parse as [`Json::Int`] when they are non-negative integers without
    /// exponent/fraction, [`Json::Num`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Self::Null => out.push_str("null"),
            Self::Num(v) => out.push_str(&format!("{v:.3}")),
            Self::Int(v) => out.push_str(&v.to_string()),
            Self::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Self::Str(v) => {
                out.push('"');
                for c in v.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Self::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str(&format!("\"{key}\": "));
                    value.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
            Self::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
        }
    }
}

/// Recursive-descent state for [`Json::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", want as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs don't occur in bench output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid utf8")?;
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// The `metrics` section every `BENCH_*.json` carries: a flat object of
/// the [`upkit_trace`] counter registry, deterministic for deterministic
/// benches and therefore diffable by `bench_diff`.
#[must_use]
pub fn metrics_json(snapshot: &upkit_trace::CountersSnapshot) -> Json {
    Json::Obj(
        snapshot
            .fields()
            .into_iter()
            .map(|(name, value)| (name, Json::Int(value)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_nested_objects() {
        let json = Json::obj(vec![
            ("bench", Json::Str("gen".into())),
            ("ok", Json::Bool(true)),
            ("wall_ms", Json::obj(vec![("seq", Json::Num(1.5))])),
            ("counts", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let rendered = json.render();
        assert!(rendered.contains("\"bench\": \"gen\""));
        assert!(rendered.contains("\"seq\": 1.500"));
        assert!(rendered.contains("\"counts\": [\n"));
        assert!(rendered.ends_with("}\n"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\"\n"
        );
    }

    #[test]
    fn json_parse_round_trips_render() {
        let json = Json::obj(vec![
            ("bench", Json::Str("loss\n\"sweep\"".into())),
            ("smoke", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "metrics",
                Json::obj(vec![
                    ("link_bytes_to_device", Json::Int(123_456)),
                    ("ratio", Json::Num(-1.5)),
                ]),
            ),
            ("rounds", Json::Arr(vec![Json::Int(3), Json::Int(9)])),
        ]);
        let parsed = Json::parse(&json.render()).expect("round trip");
        assert_eq!(parsed.render(), json.render());
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("link_bytes_to_device"))
                .and_then(Json::as_f64),
            Some(123_456.0)
        );
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn numeric_leaves_flatten_in_document_order() {
        let json = Json::obj(vec![
            ("a", Json::Int(1)),
            (
                "b",
                Json::obj(vec![
                    ("c", Json::Num(2.5)),
                    ("skip", Json::Str("text".into())),
                ]),
            ),
            ("d", Json::Arr(vec![Json::Int(7), Json::Int(8)])),
        ]);
        assert_eq!(
            json.numeric_leaves(),
            vec![
                ("a".to_string(), 1.0),
                ("b.c".to_string(), 2.5),
                ("d.0".to_string(), 7.0),
                ("d.1".to_string(), 8.0),
            ]
        );
    }

    #[test]
    fn metrics_json_exposes_counter_fields() {
        let counters = upkit_trace::Counters::default();
        upkit_trace::Counters::add(&counters.link_bytes_to_device, 42);
        let json = metrics_json(&counters.snapshot());
        assert_eq!(
            json.get("link_bytes_to_device").and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            json.get("flash_erases_slot0").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn compare_reports_deviation() {
        assert_eq!(compare(100.0, 110.0), "110.0 (+10.0%)");
        assert_eq!(compare(0.0, 5.0), "5.0");
    }

    #[test]
    fn bytes_groups_thousands() {
        assert_eq!(bytes(0), "0");
        assert_eq!(bytes(999), "999");
        assert_eq!(bytes(1000), "1,000");
        assert_eq!(bytes(218_472), "218,472");
    }

    #[test]
    fn secs_converts() {
        assert!((secs(61_500_000) - 61.5).abs() < 1e-9);
    }
}
