//! Shared reporting helpers for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it and prints the paper's number next to
//! the reproduced one. These helpers keep the output format uniform so
//! `EXPERIMENTS.md` can quote it directly.

#![warn(missing_docs)]

/// Prints a table with a title, header row, and aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| (*s).to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Formats a paper-vs-measured pair with the relative deviation.
#[must_use]
pub fn compare(paper: f64, measured: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:.1}");
    }
    let pct = (measured - paper) / paper * 100.0;
    format!("{measured:.1} ({pct:+.1}%)")
}

/// Formats seconds from microseconds.
#[must_use]
pub fn secs(micros: u64) -> f64 {
    micros as f64 / 1e6
}

/// Formats a byte count with a thousands separator.
#[must_use]
pub fn bytes(n: u32) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_reports_deviation() {
        assert_eq!(compare(100.0, 110.0), "110.0 (+10.0%)");
        assert_eq!(compare(0.0, 5.0), "5.0");
    }

    #[test]
    fn bytes_groups_thousands() {
        assert_eq!(bytes(0), "0");
        assert_eq!(bytes(999), "999");
        assert_eq!(bytes(1000), "1,000");
        assert_eq!(bytes(218_472), "218,472");
    }

    #[test]
    fn secs_converts() {
        assert!((secs(61_500_000) - 61.5).abs() < 1e-9);
    }
}
