//! Performance benchmark: multi-hop dissemination through caching
//! gateway proxies.
//!
//! Sweeps fan-out × loss rate × gateway cache size over the
//! `upkit-sim::topology` simulator and measures what the block cache
//! buys: total upstream (backhaul) wire bytes and campaign makespan,
//! against the per-device unicast baseline (`cache_blocks = 0`, every
//! device's blocks fetched upstream separately). The headline claim is
//! asserted, not just reported: at fan-out ≥ 8 and loss ≤ 10 %, caching
//! cuts upstream bytes by more than 3× (`gates.reduction_shortfall`
//! pins the number of sweep points violating that to zero).
//!
//! A separate matrix runs one representative lossy multi-gateway config
//! at 1, 2, and 8 worker threads and asserts reports, counters, and
//! trace bytes are identical (`gates.thread_divergence` pins it as a
//! numeric leaf).
//!
//! `--smoke` shrinks the sweep so CI can run it in seconds and gate the
//! metrics with `bench_diff` against
//! `crates/upkit-bench/baselines/BENCH_dissemination_smoke.json`.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin dissemination [-- --smoke]
//! ```

use std::sync::Arc;
use std::time::Instant;

use upkit_bench::{metrics_json, print_table, Json};
use upkit_sim::{run_dissemination, run_dissemination_traced, TopologyConfig};
use upkit_trace::{MemorySink, Tracer};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The cache size (in blocks) the cached arm of the sweep uses: big
/// enough to hold any sweep origin whole.
const WARM_CACHE_BLOCKS: usize = 4_096;

fn config(fan_out: u32, loss_bps: u32, cache_blocks: usize, smoke: bool) -> TopologyConfig {
    TopologyConfig {
        gateways: if smoke { 2 } else { 4 },
        devices_per_gateway: fan_out,
        mesh_hops: 2,
        loss_rate: f64::from(loss_bps) / 10_000.0,
        firmware_size: if smoke { 2_000 } else { 20_000 },
        block_size: 512,
        cache_blocks,
        max_poll_attempts: 32,
        threads: 8,
        seed: 0xD15E_BE2C,
        ..TopologyConfig::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let fan_outs: &[u32] = if smoke {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 32, 64]
    };
    let losses_bps: &[u32] = &[0, 500, 1_000];
    let bounded_cache: usize = 16;

    // --- Sweep: cached vs bounded-cache vs unicast ----------------------
    let start = Instant::now();
    let mut sweep_rows = Vec::new();
    let mut reduction_shortfall = 0u64;
    for &fan_out in fan_outs {
        for &loss_bps in losses_bps {
            let cached = run_dissemination(&config(fan_out, loss_bps, WARM_CACHE_BLOCKS, smoke));
            let bounded = run_dissemination(&config(fan_out, loss_bps, bounded_cache, smoke));
            let unicast = run_dissemination(&config(fan_out, loss_bps, 0, smoke));
            let devices = cached.completed;
            assert_eq!(cached.gave_up, 0, "cached run must converge");
            assert_eq!(unicast.gave_up, 0, "unicast run must converge");
            assert_eq!(cached.image_mismatches, 0);
            assert_eq!(bounded.image_mismatches, 0);
            assert_eq!(unicast.image_mismatches, 0);

            let reduction = unicast.upstream_bytes as f64 / cached.upstream_bytes.max(1) as f64;
            // The acceptance gate: fan-out ≥ 8, loss ≤ 10 % ⇒ caching
            // must cut upstream bytes by more than 3×.
            if fan_out >= 8 && loss_bps <= 1_000 && reduction <= 3.0 {
                reduction_shortfall += 1;
            }
            sweep_rows.push((
                fan_out, loss_bps, devices, cached, bounded, unicast, reduction,
            ));
        }
    }
    let sweep_wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        reduction_shortfall, 0,
        "caching must beat unicast by >3x upstream bytes at fan-out >= 8, loss <= 10%"
    );

    // --- Determinism matrix: 1/2/8 threads, traces compared -------------
    let matrix_config = TopologyConfig {
        campaigns: 2,
        cache_blocks: bounded_cache,
        ..config(8, 800, bounded_cache, smoke)
    };
    let mut matrix = Vec::new();
    for threads in THREAD_COUNTS {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let start = Instant::now();
        let report = run_dissemination_traced(
            &TopologyConfig {
                threads,
                ..matrix_config
            },
            &tracer,
        );
        let wall_s = start.elapsed().as_secs_f64();
        let ndjson: String = sink
            .drain()
            .iter()
            .map(upkit_trace::TraceRecord::to_ndjson)
            .collect::<Vec<_>>()
            .join("\n");
        matrix.push((
            threads,
            wall_s,
            report,
            tracer.counters().snapshot(),
            ndjson,
        ));
    }
    let (_, _, ref_report, ref_metrics, ref_ndjson) = &matrix[0];
    for (threads, _, report, metrics, ndjson) in &matrix {
        assert_eq!(ref_report, report, "{threads} threads changed the report");
        assert_eq!(ref_metrics, metrics, "{threads} threads changed counters");
        assert_eq!(ref_ndjson, ndjson, "{threads} threads changed trace bytes");
    }
    assert_eq!(ref_report.image_mismatches, 0);

    // --- Report ----------------------------------------------------------
    let sweep_json: Vec<Json> = sweep_rows
        .iter()
        .map(
            |(fan_out, loss_bps, devices, cached, bounded, unicast, reduction)| {
                Json::obj(vec![
                    ("fan_out", Json::Int(u64::from(*fan_out))),
                    ("loss_bps", Json::Int(u64::from(*loss_bps))),
                    ("devices", Json::Int(u64::from(*devices))),
                    ("upstream_bytes_cached", Json::Int(cached.upstream_bytes)),
                    ("upstream_bytes_bounded", Json::Int(bounded.upstream_bytes)),
                    ("upstream_bytes_unicast", Json::Int(unicast.upstream_bytes)),
                    ("upstream_reduction", Json::Num(*reduction)),
                    ("cache_hits", Json::Int(cached.cache_hits)),
                    ("single_flight_joins", Json::Int(cached.single_flight_joins)),
                    ("evictions_bounded", Json::Int(bounded.evictions)),
                    ("makespan_micros_cached", Json::Int(cached.makespan_micros)),
                    (
                        "makespan_micros_unicast",
                        Json::Int(unicast.makespan_micros),
                    ),
                ])
            },
        )
        .collect();

    let wall_entries: Vec<(&str, Json)> = matrix
        .iter()
        .map(|(threads, wall_s, ..)| {
            let key: &'static str = match threads {
                1 => "threads_1",
                2 => "threads_2",
                _ => "threads_8",
            };
            (key, Json::Num(*wall_s))
        })
        .collect();

    let json = Json::obj(vec![
        ("bench", Json::Str("dissemination".into())),
        ("smoke", Json::Bool(smoke)),
        ("cores", Json::Int(cores as u64)),
        (
            "thread_counts",
            Json::Arr(THREAD_COUNTS.iter().map(|t| Json::Int(*t as u64)).collect()),
        ),
        ("block_size", Json::Int(512)),
        ("bounded_cache_blocks", Json::Int(bounded_cache as u64)),
        ("sweep", Json::Arr(sweep_json)),
        ("sweep_wall_s", Json::Num(sweep_wall_s)),
        (
            "matrix",
            Json::obj(vec![
                ("completed", Json::Int(u64::from(ref_report.completed))),
                ("upstream_bytes", Json::Int(ref_report.upstream_bytes)),
                ("cache_hits", Json::Int(ref_report.cache_hits)),
                ("cache_misses", Json::Int(ref_report.cache_misses)),
                (
                    "single_flight_joins",
                    Json::Int(ref_report.single_flight_joins),
                ),
                ("evictions", Json::Int(ref_report.evictions)),
                ("makespan_micros", Json::Int(ref_report.makespan_micros)),
                ("wall_s", Json::obj(wall_entries)),
            ]),
        ),
        (
            "gates",
            Json::obj(vec![
                ("thread_divergence", Json::Int(0)),
                ("reduction_shortfall", Json::Int(reduction_shortfall)),
                ("image_mismatches", Json::Int(ref_report.image_mismatches)),
            ]),
        ),
        ("metrics", metrics_json(ref_metrics)),
    ]);

    print_table(
        &format!(
            "Dissemination sweep: {} gateways, mesh depth 2, {cores} cores",
            if smoke { 2 } else { 4 }
        ),
        &[
            "Fan-out",
            "Loss bps",
            "Upstream cached",
            "Upstream unicast",
            "Reduction",
        ],
        &sweep_rows
            .iter()
            .map(|(fan_out, loss_bps, _, cached, _, unicast, reduction)| {
                vec![
                    fan_out.to_string(),
                    loss_bps.to_string(),
                    cached.upstream_bytes.to_string(),
                    unicast.upstream_bytes.to_string(),
                    format!("{reduction:.1}x"),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\n>3x upstream reduction holds at every fan-out >= 8, loss <= 10% point; \
         reports, counters, and traces byte-identical across thread counts"
    );

    std::fs::write("BENCH_dissemination.json", json.render())
        .expect("write BENCH_dissemination.json");
    println!("wrote BENCH_dissemination.json");
}
