//! Extension experiment: flash endurance over long update chains.
//!
//! NOR sectors endure ~10k erase cycles; the slot strategy therefore
//! bounds how many updates a device can ever take. This runs 40 sequential
//! real updates under each Fig. 6 configuration and reports per-sector
//! wear — quantifying an A/B benefit the paper mentions only via loading
//! time.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin wear
//! ```

use upkit_bench::print_table;
use upkit_sim::{run_lifetime, LifetimeMode};

const ENDURANCE_CYCLES: u32 = 10_000;

fn main() {
    let updates = 40;
    let mut rows = Vec::new();
    let mut wear = Vec::new();
    for (name, mode) in [
        ("A/B (Configuration A)", LifetimeMode::AB),
        ("Static swap (Configuration B)", LifetimeMode::StaticSwap),
    ] {
        let report = run_lifetime(mode, updates, 777);
        assert_eq!(report.updates_applied, updates);
        let updates_per_wear = f64::from(updates) / f64::from(report.max_sector_wear);
        let lifetime_updates = (f64::from(ENDURANCE_CYCLES) * updates_per_wear) as u64;
        wear.push(report.max_sector_wear);
        rows.push(vec![
            name.to_string(),
            report.max_sector_wear.to_string(),
            report.total_erases.to_string(),
            lifetime_updates.to_string(),
        ]);
    }

    print_table(
        &format!("Extension: flash wear over {updates} sequential updates"),
        &[
            "Configuration",
            "Max sector wear",
            "Total erases",
            "Updates until 10k-cycle endurance",
        ],
        &rows,
    );
    println!(
        "\nA/B wears the worst sector {:.1}× less than static swap: alternating\n\
         targets erase each slot every other update, while the swap erases the\n\
         staging slot twice per update (reception + boot-time swap).",
        f64::from(wear[1]) / f64::from(wear[0])
    );
}
