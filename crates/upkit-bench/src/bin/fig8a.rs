//! Regenerates **Fig. 8a**: time to complete a full-image 100 kB update
//! with the push and pull approaches (nRF52840 + Zephyr profile, static
//! slots), broken down by phase.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin fig8a
//! ```

use upkit_bench::{print_table, secs};
use upkit_sim::{run_scenario, Approach, ScenarioConfig};

fn main() {
    // Paper values (seconds): total, propagation, verification, loading.
    let paper_push = (61.5, 47.7, 61.5 * 0.0178, 61.5 * 0.206);
    let paper_pull = (69.1, 41.7, 69.1 * 0.0172, 69.1 * 0.379);

    let mut rows = Vec::new();
    for (name, approach, paper) in [
        ("Push (BLE)", Approach::Push, paper_push),
        ("Pull (CoAP)", Approach::Pull, paper_pull),
    ] {
        let result = run_scenario(&ScenarioConfig::fig8a(approach));
        assert!(
            result.outcome.is_complete(),
            "{name} scenario failed: {:?}",
            result.outcome
        );
        let p = result.phases;
        rows.push(vec![
            name.to_string(),
            format!("{:.1} / {:.1}", paper.0, secs(p.total_micros())),
            format!("{:.1} / {:.1}", paper.1, secs(p.propagation_micros)),
            format!("{:.1} / {:.1}", paper.2, secs(p.verification_micros)),
            format!("{:.1} / {:.1}", paper.3, secs(p.loading_micros)),
        ]);
    }

    print_table(
        "Fig. 8a: Full 100 kB update, push vs pull (seconds, paper / repro)",
        &[
            "Approach",
            "Total",
            "Propagation",
            "Verification",
            "Loading",
        ],
        &rows,
    );
    println!(
        "\nShape checks: propagation dominates both; pull total exceeds push\n\
         because the larger pull build makes the loading-phase swap move more\n\
         sectors, while pull's propagation is slightly faster on the wire."
    );
}
