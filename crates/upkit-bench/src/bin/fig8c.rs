//! Regenerates **Fig. 8c**: loading-phase time with static vs A/B slot
//! configurations.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin fig8c
//! ```

use upkit_bench::{print_table, secs};
use upkit_sim::{run_scenario, Approach, ScenarioConfig, SlotMode};

fn main() {
    let mut rows = Vec::new();
    let mut static_loading = 0.0f64;
    let mut ab_loading = 0.0f64;
    for (name, mode) in [
        (
            "Static boot (Configuration B)",
            SlotMode::Static { swap: true },
        ),
        ("A/B boot (Configuration A)", SlotMode::AB),
    ] {
        let mut cfg = ScenarioConfig::fig8a(Approach::Push);
        cfg.slot_mode = mode;
        let result = run_scenario(&cfg);
        assert!(result.outcome.is_complete(), "{name}: {:?}", result.outcome);
        let loading = secs(result.phases.loading_micros);
        match mode {
            SlotMode::Static { .. } => static_loading = loading,
            SlotMode::AB => ab_loading = loading,
        }
        rows.push(vec![
            name.to_string(),
            format!("{loading:.2}"),
            format!("{:.1}", secs(result.phases.total_micros())),
        ]);
    }

    print_table(
        "Fig. 8c: Loading phase, static vs A/B (seconds)",
        &["Configuration", "Loading (s)", "Total (s)"],
        &rows,
    );
    let reduction = (1.0 - ab_loading / static_loading) * 100.0;
    println!(
        "\nA/B updates cut the loading phase by {reduction:.0}% (paper: 92%):\n\
         the bootloader jumps to the newest valid slot instead of swapping."
    );
}
