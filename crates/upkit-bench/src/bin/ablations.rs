//! Ablation experiments for the design choices DESIGN.md calls out (not
//! figures from the paper, but quantified evidence for its claims):
//!
//! 1. **Early rejection** — energy/bytes wasted on a tampered update with
//!    agent-side verification (UpKit) vs bootloader-only verification
//!    (mcuboot-style store-then-verify).
//! 2. **Double signature** — the attack matrix: which attacks each
//!    verification policy stops.
//! 3. **Crypto backends** — verification-phase time for tinycrypt,
//!    TinyDTLS, and the ATECC508 HSM.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin ablations
//! ```

use upkit_bench::print_table;
use upkit_sim::{run_scenario, Approach, CryptoChoice, ScenarioConfig};

fn main() {
    early_rejection();
    attack_matrix();
    crypto_backends();
}

fn early_rejection() {
    let honest = run_scenario(&ScenarioConfig::fig8a(Approach::Push));

    // UpKit: tampered manifest rejected before any firmware transfer.
    let mut cfg = ScenarioConfig::fig8a(Approach::Push);
    cfg.tamper = Some(upkit_net::Tamper::FlipBit { offset: 40 });
    let upkit_tampered = run_scenario(&cfg);

    // mcuboot-style: the device downloads everything, stores it, reboots,
    // and only then rejects — modeled as the honest session's propagation
    // cost plus a wasted reboot, with nothing gained.
    let wasted_bytes_baseline = honest.payload_bytes;
    let wasted_energy_baseline = honest.energy_uj;

    print_table(
        "Ablation 1: cost of receiving one tampered update",
        &["Policy", "Radio bytes wasted", "Energy wasted (mJ)"],
        &[
            vec![
                "UpKit (verify in agent)".into(),
                upkit_tampered.payload_bytes.to_string(),
                format!("{:.1}", upkit_tampered.energy_uj / 1000.0),
            ],
            vec![
                "Bootloader-only (mcuboot-style)".into(),
                wasted_bytes_baseline.to_string(),
                format!("{:.1}", wasted_energy_baseline / 1000.0),
            ],
        ],
    );
    let factor = wasted_energy_baseline / upkit_tampered.energy_uj.max(1.0);
    println!("Early rejection saves a factor of {factor:.0}× in wasted energy per attack.");
}

fn attack_matrix() {
    // Columns: does the policy stop the attack? (demonstrated by the
    // integration test suite; summarized here.)
    print_table(
        "Ablation 2: attack matrix (✓ = attack stopped)",
        &["Attack", "CRC only", "mcuboot", "LwM2M+proxy", "UpKit"],
        &[
            vec![
                "Random corruption".into(),
                "yes".into(),
                "yes".into(),
                "no (agent) / yes (boot)".into(),
                "yes (in agent)".into(),
            ],
            vec![
                "Forged firmware".into(),
                "no".into(),
                "yes".into(),
                "yes (at boot)".into(),
                "yes (in agent)".into(),
            ],
            vec![
                "Replay old image".into(),
                "no".into(),
                "no".into(),
                "no".into(),
                "yes (nonce)".into(),
            ],
            vec![
                "Downgrade".into(),
                "no".into(),
                "no (default)".into(),
                "no".into(),
                "yes (version)".into(),
            ],
            vec![
                "Cross-device replay".into(),
                "no".into(),
                "no".into(),
                "no".into(),
                "yes (device ID)".into(),
            ],
        ],
    );
}

fn crypto_backends() {
    let mut rows = Vec::new();
    for (name, choice) in [
        ("tinycrypt (software)", CryptoChoice::TinyCrypt),
        ("TinyDTLS (software)", CryptoChoice::TinyDtls),
        ("CryptoAuthLib + ATECC508", CryptoChoice::Hsm),
    ] {
        let mut cfg = ScenarioConfig::fig8a(Approach::Push);
        cfg.crypto = choice;
        let result = run_scenario(&cfg);
        assert!(result.outcome.is_complete());
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", result.phases.verification_micros as f64 / 1e6),
        ]);
    }
    print_table(
        "Ablation 3: verification-phase time by crypto backend (100 kB image)",
        &["Backend", "Verification (s)"],
        &rows,
    );
    println!(
        "The HSM trades ~58 ms of fixed latency per signature for ~10% less\n\
         bootloader flash and tamper-protected key storage (Table I)."
    );
}
