//! Regenerates **Table II**: memory footprint of UpKit's update agent per
//! approach and OS.
//!
//! ```text
//! cargo run -p upkit-bench --bin table2
//! ```

use upkit_bench::{bytes, print_table};
use upkit_footprint::{upkit_agent, AgentOptions, Approach, Os};

fn main() {
    let paper: &[(Approach, Os, u32, u32)] = &[
        (Approach::Pull, Os::Zephyr, 218_472, 75_204),
        (Approach::Pull, Os::Riot, 95_780, 31_244),
        (Approach::Pull, Os::Contiki, 79_445, 19_934),
        (Approach::Push, Os::Zephyr, 81_918, 21_856),
    ];

    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&(approach, os, flash_paper, ram_paper)| {
            let fp =
                upkit_agent(os, approach, AgentOptions::default()).expect("measured configuration");
            let approach_name = match approach {
                Approach::Pull => "Pull (6LoWPAN)",
                Approach::Push => "Push (BLE)",
            };
            vec![
                approach_name.to_string(),
                os.name().to_string(),
                bytes(flash_paper),
                bytes(fp.flash),
                bytes(ram_paper),
                bytes(fp.ram),
            ]
        })
        .collect();

    print_table(
        "Table II: Memory footprint of UpKit's update agent (bytes)",
        &[
            "Approach",
            "OS",
            "Flash (paper)",
            "Flash (repro)",
            "RAM (paper)",
            "RAM (repro)",
        ],
        &rows,
    );

    println!(
        "\nModule contributions (Sect. VI-A): pipeline {} B flash / {} B RAM, memory module {} B flash.",
        upkit_footprint::modules::PIPELINE.flash,
        upkit_footprint::modules::PIPELINE.ram,
        upkit_footprint::modules::MEMORY.flash,
    );
    println!(
        "Platform-specific agent code: {:.1}% on average (paper: 23.5%).",
        upkit_footprint::AGENT_PLATFORM_SPECIFIC_FRACTION * 100.0
    );
}
