//! Performance benchmark: staged campaign orchestration at fleet scale.
//!
//! Drives the `upkit-sim::campaign` orchestrator — channels, fractional
//! stages, cohort targeting, health monitoring — over 100k lite devices at
//! 1, 2, and 8 worker threads, then a single 1M-device run for peak
//! throughput. Reports and counters must be byte-identical across thread
//! counts (the bounded-skew virtual clock guarantees it; this bin asserts
//! it). Results go to `BENCH_campaign.json`.
//!
//! Wall-clock entries record the actual thread count and the machine's
//! core count: on a 1-core host the speedup column honestly reads ~1× —
//! the scaling win on such hosts is the hot-path fix itself (no per-poll
//! image serialization, one signature verification per shard per manifest
//! instead of two per device).
//!
//! `--smoke` shrinks the fleet so CI can run the full three-thread-count
//! matrix in seconds and gate the metrics with `bench_diff` against
//! `crates/upkit-bench/baselines/BENCH_campaign_smoke.json`: health
//! counters (`boots_failed`, `forgeries_accepted`, `campaign_halts`) are
//! pinned to zero there, and `gates.thread_divergence` pins cross-thread
//! determinism as a numeric leaf.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin campaign [-- --smoke]
//! ```

use std::time::Instant;

use upkit_bench::{metrics_json, print_table, Json};
use upkit_sim::campaign::{run_campaign_traced, CampaignConfig};
use upkit_sim::FleetConfig;
use upkit_trace::Tracer;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn config(devices: u32, shards: u32, threads: usize) -> CampaignConfig {
    CampaignConfig {
        fleet: FleetConfig {
            devices,
            poll_fraction: 0.25,
            firmware_size: 20_000,
            differential: true,
            seed: 0xCA3D_BE2C,
        },
        shards,
        threads,
        stage_rounds: 4,
        ..CampaignConfig::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (devices, shards) = if smoke {
        (2_000u32, 8u32)
    } else {
        (100_000, 64)
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Counters-only tracers: the snapshots double as the cross-thread
    // determinism check bench_diff gates on.
    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let tracer = Tracer::disabled();
        let start = Instant::now();
        let report = run_campaign_traced(&config(devices, shards, threads), &tracer);
        let wall_s = start.elapsed().as_secs_f64();
        runs.push((threads, wall_s, report, tracer.counters().snapshot()));
    }

    let (_, wall_1, reference, ref_metrics) = &runs[0];
    for (threads, _, report, metrics) in &runs {
        assert_eq!(reference, report, "{threads} threads changed the campaign");
        assert_eq!(ref_metrics, metrics, "{threads} threads changed counters");
    }
    assert!(reference.halted.is_none(), "healthy campaign must not halt");
    assert_eq!(reference.updated, devices, "campaign must converge");

    let rounds = reference.rounds.len();
    let (_, best_wall_s, ..) = runs
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one run");
    let devices_per_sec = f64::from(devices) / best_wall_s;

    // Peak throughput: one 1M-device run at the widest thread count.
    let million = if smoke {
        None
    } else {
        let million_devices = 1_000_000u32;
        let tracer = Tracer::disabled();
        let start = Instant::now();
        let report = run_campaign_traced(&config(million_devices, 256, 8), &tracer);
        let wall_s = start.elapsed().as_secs_f64();
        assert_eq!(report.updated, million_devices, "1M campaign must converge");
        Some(Json::obj(vec![
            ("devices", Json::Int(u64::from(million_devices))),
            ("shards", Json::Int(256)),
            ("threads", Json::Int(8)),
            ("rounds", Json::Int(report.rounds.len() as u64)),
            ("total_wire_bytes", Json::Int(report.total_wire_bytes)),
            ("wall_s", Json::Num(wall_s)),
            (
                "devices_per_sec",
                Json::Num(f64::from(million_devices) / wall_s),
            ),
        ]))
    };

    let wall_entries: Vec<(&str, Json)> = runs
        .iter()
        .map(|(threads, wall_s, ..)| {
            let key: &'static str = match threads {
                1 => "threads_1",
                2 => "threads_2",
                _ => "threads_8",
            };
            (key, Json::Num(*wall_s))
        })
        .collect();
    let mut fields = vec![
        ("bench", Json::Str("campaign".into())),
        ("smoke", Json::Bool(smoke)),
        ("cores", Json::Int(cores as u64)),
        (
            "thread_counts",
            Json::Arr(THREAD_COUNTS.iter().map(|t| Json::Int(*t as u64)).collect()),
        ),
        ("devices", Json::Int(u64::from(devices))),
        ("shards", Json::Int(u64::from(shards))),
        ("stages", Json::Int(5)),
        ("stage_rounds", Json::Int(4)),
        ("manifest_mode", Json::Str("campaign_broadcast".into())),
        ("rounds", Json::Int(rounds as u64)),
        ("total_wire_bytes", Json::Int(reference.total_wire_bytes)),
        ("updated", Json::Int(u64::from(reference.updated))),
        ("wall_s", Json::obj(wall_entries)),
        ("speedup_8_threads_vs_1", Json::Num(wall_1 / runs[2].1)),
        ("devices_per_sec", Json::Num(devices_per_sec)),
        (
            "identical_across_thread_counts",
            Json::Bool(true), // asserted above; divergence aborts the bin
        ),
        (
            "gates",
            Json::obj(vec![("thread_divergence", Json::Int(0))]),
        ),
        ("metrics", metrics_json(ref_metrics)),
    ];
    if let Some(million) = million {
        fields.push(("million_device_run", million));
    }
    let json = Json::obj(fields);

    print_table(
        &format!("Staged campaign: {devices} lite devices, {shards} shards, {cores} cores"),
        &["Threads", "Wall s", "Rounds", "Wire bytes"],
        &runs
            .iter()
            .map(|(threads, wall_s, report, _)| {
                vec![
                    threads.to_string(),
                    format!("{wall_s:.2}"),
                    report.rounds.len().to_string(),
                    report.total_wire_bytes.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\n{devices_per_sec:.0} devices/s at best thread count, \
         reports byte-identical across thread counts"
    );

    std::fs::write("BENCH_campaign.json", json.render()).expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json");
}
