//! Performance benchmark: sharded fleet rollout at 100k devices.
//!
//! Runs the v1→v2 campaign over a large fleet of protocol-faithful lite
//! devices (full double-signature verification, decompression, and
//! patching per update), sharded with per-shard RNG streams. The same
//! configuration is executed at 1, 2, and 8 worker threads; the reports
//! must be identical — sharded execution is deterministic in everything
//! but wall-clock time. Results go to `BENCH_fleet.json`.
//!
//! Every wall-clock entry records the *actual* thread count it ran with
//! (and the machine's core count is in the report), so comparisons across
//! machines are meaningful: on a 1-core host, 8 "threads" time-slice one
//! core and the speedup column honestly shows ~1×.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin fleet_scale [-- --smoke]
//! ```

use std::time::Instant;

use upkit_bench::{metrics_json, print_table, Json};
use upkit_sim::{
    run_rollout_sharded_traced, DeviceModel, FleetConfig, ManifestMode, ShardedFleetConfig,
};
use upkit_trace::Tracer;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (devices, shards) = if smoke {
        (2_000u32, 8u32)
    } else {
        (100_000, 64)
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let base = ShardedFleetConfig {
        fleet: FleetConfig {
            devices,
            poll_fraction: 0.25,
            firmware_size: 20_000,
            differential: true,
            seed: 0xF1EE7_5CA1E,
        },
        shards,
        threads: 1,
        device_model: DeviceModel::Lite,
        verify_signatures: true,
        manifest_mode: ManifestMode::PerDevice,
    };

    // Counters-only tracers (no sink): <2% overhead, and the snapshots
    // double as a determinism check across thread counts.
    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let tracer = Tracer::disabled();
        let start = Instant::now();
        let report = run_rollout_sharded_traced(&ShardedFleetConfig { threads, ..base }, &tracer);
        let wall_s = start.elapsed().as_secs_f64();
        runs.push((threads, wall_s, report, tracer.counters().snapshot()));
    }

    let (_, base_wall_s, reference, ref_metrics) = &runs[0];
    let identical = runs.iter().all(|(threads, _, report, metrics)| {
        assert_eq!(
            reference, report,
            "{threads} threads changed the rollout outcome"
        );
        assert_eq!(
            ref_metrics, metrics,
            "{threads} threads changed the metrics counters"
        );
        true
    });

    let rounds = reference.rounds_to_converge();
    let (_, best_wall_s, ..) = runs
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one run");
    let rounds_per_sec = rounds as f64 / best_wall_s;
    let updates_per_sec = f64::from(devices) / best_wall_s;

    let wall_entries: Vec<(&str, Json)> = THREAD_COUNTS
        .iter()
        .zip(&runs)
        .map(|(_, (threads, wall_s, ..))| {
            let key: &'static str = match threads {
                1 => "threads_1",
                2 => "threads_2",
                _ => "threads_8",
            };
            (key, Json::Num(*wall_s))
        })
        .collect();
    let json = Json::obj(vec![
        ("bench", Json::Str("fleet_scale".into())),
        ("smoke", Json::Bool(smoke)),
        ("cores", Json::Int(cores as u64)),
        (
            "thread_counts",
            Json::Arr(THREAD_COUNTS.iter().map(|t| Json::Int(*t as u64)).collect()),
        ),
        (
            "shards_per_thread",
            Json::Arr(
                THREAD_COUNTS
                    .iter()
                    .map(|t| Json::Num(f64::from(shards) / *t as f64))
                    .collect(),
            ),
        ),
        ("devices", Json::Int(u64::from(devices))),
        ("shards", Json::Int(u64::from(shards))),
        ("device_model", Json::Str("lite".into())),
        ("manifest_mode", Json::Str("per_device".into())),
        ("verify_signatures", Json::Bool(true)),
        ("rounds_to_converge", Json::Int(rounds as u64)),
        ("total_wire_bytes", Json::Int(reference.total_wire_bytes)),
        ("wall_s", Json::obj(wall_entries)),
        ("speedup_8_threads_vs_1", Json::Num(base_wall_s / runs[2].1)),
        ("rounds_per_sec", Json::Num(rounds_per_sec)),
        ("device_updates_per_sec", Json::Num(updates_per_sec)),
        ("identical_across_thread_counts", Json::Bool(identical)),
        ("metrics", metrics_json(ref_metrics)),
    ]);

    print_table(
        &format!("Sharded rollout: {devices} lite devices, {shards} shards, {cores} cores"),
        &["Threads", "Wall s", "Rounds", "Wire bytes"],
        &runs
            .iter()
            .map(|(threads, wall_s, report, _)| {
                vec![
                    threads.to_string(),
                    format!("{wall_s:.2}"),
                    report.rounds_to_converge().to_string(),
                    report.total_wire_bytes.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\n{updates_per_sec:.0} device updates/s, {rounds_per_sec:.2} rounds/s, \
         reports identical across thread counts: {identical}"
    );

    if smoke {
        println!("\n{}", json.render());
    } else {
        std::fs::write("BENCH_fleet.json", json.render()).expect("write BENCH_fleet.json");
        println!("wrote BENCH_fleet.json");
    }
}
