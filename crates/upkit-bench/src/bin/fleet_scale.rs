//! Performance benchmark: sharded fleet rollout at 100k devices.
//!
//! Runs the v1→v2 campaign over a large fleet of protocol-faithful lite
//! devices (full double-signature verification, decompression, and
//! patching per update), sharded with per-shard RNG streams. The same
//! configuration is executed with one worker thread and with all
//! available cores; the reports must be identical — sharded execution is
//! deterministic in everything but wall-clock time. Results go to
//! `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin fleet_scale [-- --smoke]
//! ```

use std::time::Instant;

use upkit_bench::{metrics_json, print_table, Json};
use upkit_sim::{run_rollout_sharded_traced, DeviceModel, FleetConfig, ShardedFleetConfig};
use upkit_trace::Tracer;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (devices, shards) = if smoke {
        (2_000u32, 8u32)
    } else {
        (100_000, 64)
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let base = ShardedFleetConfig {
        fleet: FleetConfig {
            devices,
            poll_fraction: 0.25,
            firmware_size: 20_000,
            differential: true,
            seed: 0xF1EE7_5CA1E,
        },
        shards,
        threads: 1,
        device_model: DeviceModel::Lite,
        verify_signatures: true,
    };

    // Counters-only tracers (no sink): <2% overhead, and the snapshots
    // double as a determinism check across thread counts.
    let sequential_tracer = Tracer::disabled();
    let start = Instant::now();
    let sequential = run_rollout_sharded_traced(&base, &sequential_tracer);
    let sequential_s = start.elapsed().as_secs_f64();

    let parallel_tracer = Tracer::disabled();
    let start = Instant::now();
    let parallel = run_rollout_sharded_traced(
        &ShardedFleetConfig {
            threads: cores,
            ..base
        },
        &parallel_tracer,
    );
    let parallel_s = start.elapsed().as_secs_f64();

    let identical = sequential == parallel;
    assert!(identical, "thread count changed the rollout outcome");
    let metrics = parallel_tracer.counters().snapshot();
    assert_eq!(
        sequential_tracer.counters().snapshot(),
        metrics,
        "thread count changed the metrics counters"
    );

    let rounds = parallel.rounds_to_converge();
    let rounds_per_sec = rounds as f64 / parallel_s;
    let updates_per_sec = f64::from(devices) / parallel_s;

    let json = Json::obj(vec![
        ("bench", Json::Str("fleet_scale".into())),
        ("smoke", Json::Bool(smoke)),
        ("cores", Json::Int(cores as u64)),
        ("devices", Json::Int(u64::from(devices))),
        ("shards", Json::Int(u64::from(shards))),
        ("device_model", Json::Str("lite".into())),
        ("verify_signatures", Json::Bool(true)),
        ("rounds_to_converge", Json::Int(rounds as u64)),
        ("total_wire_bytes", Json::Int(parallel.total_wire_bytes)),
        (
            "wall_s",
            Json::obj(vec![
                ("threads_1", Json::Num(sequential_s)),
                ("threads_all_cores", Json::Num(parallel_s)),
            ]),
        ),
        ("rounds_per_sec", Json::Num(rounds_per_sec)),
        ("device_updates_per_sec", Json::Num(updates_per_sec)),
        ("identical_across_thread_counts", Json::Bool(identical)),
        ("metrics", metrics_json(&metrics)),
    ]);

    print_table(
        &format!("Sharded rollout: {devices} lite devices, {shards} shards"),
        &["Threads", "Wall s", "Rounds", "Wire bytes"],
        &[
            vec![
                "1".into(),
                format!("{sequential_s:.2}"),
                sequential.rounds_to_converge().to_string(),
                sequential.total_wire_bytes.to_string(),
            ],
            vec![
                cores.to_string(),
                format!("{parallel_s:.2}"),
                rounds.to_string(),
                parallel.total_wire_bytes.to_string(),
            ],
        ],
    );
    println!(
        "\n{updates_per_sec:.0} device updates/s, {rounds_per_sec:.2} rounds/s, \
         reports identical across thread counts: {identical}"
    );

    if smoke {
        println!("\n{}", json.render());
    } else {
        std::fs::write("BENCH_fleet.json", json.render()).expect("write BENCH_fleet.json");
        println!("wrote BENCH_fleet.json");
    }
}
