//! Adversarial-input exploration: every untrusted byte surface, mutated,
//! with never-accept / never-panic / bounded-memory proven per case.
//!
//! Runs the `upkit-adversary` explorer over the quickstart A/B scenario:
//! one honest baseline pass captures the frame count, the installed
//! image, and the package corpora, then each `(surface, mutation)` case
//! drives the real acceptance path inside a panic-catching,
//! budget-checked harness. The run fails (exit 1) if any case violates
//! the invariant — and writes each minimized counterexample's reproducer
//! command to `ADVERSARY_repro.txt` so CI can surface it as an artifact.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin adversary_explore [-- --smoke]
//! cargo run --release -p upkit-bench --bin adversary_explore -- \
//!     --repro <mode> <seed> <firmware_size> <slot_size> <surface> <index>
//! ```
//!
//! `--smoke` shrinks the scenario and strides each surface's universe so
//! CI covers every surface in seconds; `--repro` replays exactly
//! one case (the command shape the shrinker emits) and exits non-zero if
//! the invariant fails.

use upkit_adversary::{
    explore_traced, mode_from_label, record_baseline, repro_command, shrink_violation,
    AdversaryConfig, AdversaryReport, MutationClass,
};
use upkit_bench::{metrics_json, print_table, Json};
use upkit_sim::{WorldConfig, WorldMode};
use upkit_trace::Tracer;

fn repro(args: &[String]) -> i32 {
    let usage = "usage: adversary_explore --repro <mode> <seed> <firmware_size> <slot_size> \
                 <surface> <index>";
    let [mode, seed, firmware_size, slot_size, surface, index] = args else {
        eprintln!("{usage}");
        return 2;
    };
    let (Some(mode), Ok(seed), Ok(firmware_size), Ok(slot_size), Some(surface), Ok(index)) = (
        mode_from_label(mode),
        seed.parse::<u64>(),
        firmware_size.parse::<usize>(),
        slot_size.parse::<u32>(),
        MutationClass::from_label(surface),
        index.parse::<u64>(),
    ) else {
        eprintln!("{usage}");
        return 2;
    };
    let scenario = WorldConfig {
        seed,
        firmware_size,
        slot_size,
        mode,
    };
    let baseline = record_baseline(&scenario);
    let case =
        upkit_adversary::run_case(&scenario, &baseline, surface, index, 8, &Tracer::disabled());
    println!("{case:#?}");
    i32::from(!case.ok())
}

fn surface_rows(report: &AdversaryReport) -> Vec<Vec<String>> {
    report
        .universes
        .iter()
        .map(|&(surface, total)| {
            let explored = report
                .explored
                .iter()
                .filter(|(s, _)| *s == surface)
                .count();
            let violations = report
                .violations()
                .iter()
                .filter(|c| c.surface == surface)
                .count();
            vec![
                surface.label().to_string(),
                total.to_string(),
                explored.to_string(),
                violations.to_string(),
            ]
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--repro") {
        std::process::exit(repro(&args[1..]));
    }
    let smoke = args.iter().any(|arg| arg == "--smoke");

    // `--smoke` shrinks the scenario and the per-surface stride, never
    // the surface list: the CI gate always attacks every surface.
    let (firmware_size, slot_size, case_limit) = if smoke {
        (6_000, 4096 * 3, Some(48))
    } else {
        (24_000, 4096 * 8, Some(160))
    };
    let config = AdversaryConfig {
        scenario: WorldConfig {
            seed: 7,
            firmware_size,
            slot_size,
            mode: WorldMode::Ab,
        },
        threads: 4,
        max_boots: 8,
        case_limit,
    };

    // One tracer across every case, merged in deterministic case order:
    // the `metrics` section (including `packages_rejected` and the
    // all-important `forgeries_accepted = 0`) is reproducible bit for
    // bit, so `bench_diff` gates it in CI.
    let tracer = Tracer::disabled();
    let report = explore_traced(&config, &tracer);
    assert!(
        report.full_coverage(),
        "coverage hole — selected cases and result set disagree"
    );

    let mut repro_lines = Vec::new();
    if let Some(shrunk) = {
        let baseline = record_baseline(&config.scenario);
        shrink_violation(&config, &baseline, &report)
    } {
        repro_lines.push(format!(
            "surface {} index {} — {}\n  reproduce: {}",
            shrunk.case.surface.label(),
            shrunk.case.index,
            shrunk.case.violation.as_deref().unwrap_or("violation"),
            shrunk.command
        ));
        for violation in report.violations() {
            repro_lines.push(format!(
                "  also at surface {} index {}: {}",
                violation.surface.label(),
                violation.index,
                repro_command(&config.scenario, violation.surface, violation.index)
            ));
        }
    }

    print_table(
        &format!(
            "Adversarial-input exploration ({firmware_size} B firmware, {} surfaces)",
            MutationClass::ALL.len()
        ),
        &["Surface", "Universe", "Explored", "Violations"],
        &surface_rows(&report),
    );
    println!(
        "\nEach case applies one structure-aware mutation (bit flip,\n\
         truncation, extension, zeroing, frame corrupt/reorder/duplicate/\n\
         inject/drop, or a stale-nonce / wrong-device stream replay) and\n\
         asserts the device either installs a byte-identical valid update\n\
         or returns a typed rejection, never panics, never decodes past\n\
         the slot budget, and still boots to a fixed point."
    );

    let surfaces_json = report
        .universes
        .iter()
        .map(|&(surface, total)| {
            Json::obj(vec![
                ("surface", Json::Str(surface.label().into())),
                ("universe", Json::Int(total)),
                (
                    "explored",
                    Json::Int(
                        report
                            .explored
                            .iter()
                            .filter(|(s, _)| *s == surface)
                            .count() as u64,
                    ),
                ),
            ])
        })
        .collect();
    let json = Json::obj(vec![
        ("bench", Json::Str("adversary_explore".into())),
        ("smoke", Json::Bool(smoke)),
        ("firmware_bytes", Json::Int(firmware_size as u64)),
        ("cases", Json::Int(report.cases.len() as u64)),
        ("violations", Json::Int(report.violations().len() as u64)),
        ("panics", Json::Int(report.panics() as u64)),
        ("surfaces", Json::Arr(surfaces_json)),
        ("metrics", metrics_json(&tracer.counters().snapshot())),
    ]);
    std::fs::write("BENCH_adversary.json", json.render()).expect("write BENCH_adversary.json");
    println!("\nwrote BENCH_adversary.json");

    if !repro_lines.is_empty() {
        let body = repro_lines.join("\n") + "\n";
        std::fs::write("ADVERSARY_repro.txt", &body).expect("write ADVERSARY_repro.txt");
        eprintln!("\nadversarial-input violations found:\n{body}");
        std::process::exit(1);
    }
}
