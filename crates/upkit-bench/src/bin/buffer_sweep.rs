//! Ablation: pipeline buffer size vs flash cost.
//!
//! The paper's buffer-stage rationale (Sect. IV-C): "Matching the buffer
//! size with the flash sector size results in faster writes and fewer
//! flash erasures." This sweep stores the same 100 kB image through the
//! pipeline with buffer capacities from 32 B to 2× the sector size and
//! reports the number of program operations plus the modeled flash time
//! (each program operation carries a fixed controller setup cost on real
//! parts; 150 µs is a representative value for serial-NOR-class flash).
//!
//! ```text
//! cargo run --release -p upkit-bench --bin buffer_sweep
//! ```

use upkit_bench::print_table;
use upkit_core::image::FIRMWARE_OFFSET;
use upkit_core::pipeline::Pipeline;
use upkit_flash::{configuration_a, standard, FlashGeometry, MemoryLayout, SimFlash};
use upkit_sim::FirmwareGenerator;

const SECTOR: u32 = 4096;
const WRITE_OP_SETUP_MICROS: u64 = 150;
const WRITE_MICROS_PER_BYTE: u64 = 8;

fn layout() -> MemoryLayout {
    configuration_a(
        Box::new(SimFlash::new(FlashGeometry {
            size: 4096 * 64,
            sector_size: SECTOR,
            read_micros_per_byte: 0,
            write_micros_per_byte: WRITE_MICROS_PER_BYTE,
            erase_micros_per_sector: 85_000,
        })),
        4096 * 32,
    )
    .expect("valid layout")
}

fn main() {
    let firmware = FirmwareGenerator::new(11).base(100_000);
    let mut rows = Vec::new();

    for capacity in [32usize, 128, 512, 1024, 4096, 8192] {
        let mut layout = layout();
        layout.erase_slot(standard::SLOT_B).expect("fresh");
        layout.reset_stats();

        let mut pipeline =
            Pipeline::new_full(&layout, standard::SLOT_B, firmware.len() as u32).expect("fits");
        pipeline.set_buffer_capacity(capacity);
        for chunk in firmware.chunks(244) {
            pipeline.push(&mut layout, chunk).expect("valid stream");
        }
        pipeline.finish(&mut layout).expect("complete");

        let stats = layout.total_stats();
        let modeled_micros =
            stats.bytes_written * WRITE_MICROS_PER_BYTE + stats.write_ops * WRITE_OP_SETUP_MICROS;
        rows.push(vec![
            if capacity == SECTOR as usize {
                format!("{capacity} (= sector)")
            } else {
                capacity.to_string()
            },
            stats.write_ops.to_string(),
            format!("{:.2}", modeled_micros as f64 / 1e6),
        ]);

        // Verify content regardless of buffering.
        let mut stored = vec![0u8; firmware.len()];
        layout
            .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut stored)
            .expect("read back");
        assert_eq!(stored, firmware, "capacity {capacity}");
    }

    print_table(
        "Ablation: buffer capacity vs flash cost (100 kB image)",
        &["Buffer (B)", "Program ops", "Modeled flash time (s)"],
        &rows,
    );
    println!(
        "\nOps fall hyperbolically with buffer size and flatten at the sector\n\
         size — the paper's recommendation. Beyond it, RAM is spent for no\n\
         time gain (and page-program limits on real parts forbid it anyway)."
    );
}
