//! Performance benchmark: multi-target update generation.
//!
//! Prepares double-signed updates for a batch of device requests spread
//! over several target platforms (one base release per platform, one new
//! release), three ways:
//!
//! 1. **baseline_sequential** — the pre-optimization path: every request
//!    rebuilds the old image's suffix array with prefix doubling, re-diffs,
//!    re-compresses, and signs, exactly like the seed's `prepare_update`.
//! 2. **optimized_sequential** — `UpdateServer::prepare_update` with the
//!    SA-IS delta engine and the per-base `DeltaContext`/payload caches.
//! 3. **optimized_parallel** — the same server driven by
//!    `ParallelGenerator` across all available cores, two-phase: warm the
//!    content-addressed patch cache once per transition, then sign per
//!    token. The campaign's cache hit/miss counters land in `metrics`.
//!
//! All three produce byte-identical wire images (asserted), so the timings
//! compare equal work. A second section times the *chunked framed diff*
//! (windowed container, windows diffed concurrently) at 1, 2, and 8
//! worker threads against one image pair, asserting the container bytes
//! are identical at every thread count. Results go to
//! `BENCH_generation.json`; wall clocks are recorded for the host that
//! ran them (a single-core runner shows no parallel speedup — the
//! determinism assertions are the portable part).
//!
//! ```text
//! cargo run --release -p upkit-bench --bin gen_parallel [-- --smoke]
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use upkit_bench::{metrics_json, print_table, Json};
use upkit_compress::{compress, Params as LzssParams};
use upkit_core::generation::{Release, UpdateServer, VendorServer};
use upkit_core::parallel::ParallelGenerator;
use upkit_crypto::ecdsa::SigningKey;
use upkit_delta::{patch_framed, DeltaContext, FramedDiffOptions, SuffixAlgorithm};
use upkit_manifest::{server_sign, DeviceToken, Manifest, SignedManifest, UpdateImage, Version};
use upkit_sim::FirmwareGenerator;

const APP_ID: u32 = 0xF1;
const LINK_OFFSET: u32 = 0;

/// The seed's per-request generation path: prefix-doubling suffix array
/// rebuilt per call, no context or payload reuse. Kept here as the
/// measured "before"; its output must stay byte-identical to the
/// optimized server's.
fn prepare_baseline(
    server_key: &SigningKey,
    base: &Release,
    latest: &Release,
    token: &DeviceToken,
) -> UpdateImage {
    let context = DeltaContext::with_algorithm(&base.firmware, SuffixAlgorithm::PrefixDoubling);
    let patch = context.diff(&base.firmware, &latest.firmware);
    let mut payload = compress(&patch, LzssParams::default());
    if let Ok(sparse) = LzssParams::new(8) {
        let alt = compress(&patch, sparse);
        if alt.len() < payload.len() {
            payload = alt;
        }
    }
    let old_version = if payload.len() < latest.firmware.len() {
        base.version
    } else {
        payload = latest.firmware.clone();
        Version(0)
    };
    let manifest = Manifest {
        device_id: token.device_id,
        nonce: token.nonce,
        old_version,
        version: latest.version,
        size: latest.firmware.len() as u32,
        payload_size: payload.len() as u32,
        digest: latest.digest,
        link_offset: latest.link_offset,
        app_id: latest.app_id,
    };
    UpdateImage {
        signed_manifest: SignedManifest {
            manifest,
            vendor_signature: latest.vendor_signature,
            server_signature: server_sign(&manifest, server_key),
        },
        payload,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (image_size, platforms, requests_per_platform) = if smoke {
        (32 * 1024, 2u16, 1u32)
    } else {
        (256 * 1024, 4u16, 4u32)
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut rng = StdRng::seed_from_u64(0x6E5);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let server_key = SigningKey::generate(&mut rng);
    let mut server = UpdateServer::new(server_key.clone());

    // One base release per target platform (firmware variants of a shared
    // image, like per-board builds of one codebase), plus the new release.
    let generator = FirmwareGenerator::new(0xBE7C);
    let shared = generator.base(image_size);
    let mut releases = Vec::new();
    for platform in 1..=platforms {
        let firmware = generator.app_change(&shared, 2048 + 512 * usize::from(platform));
        let release = vendor.release(firmware, Version(platform), LINK_OFFSET, APP_ID);
        server.publish(release.clone());
        releases.push(release);
    }
    let latest_version = platforms + 1;
    let latest = vendor.release(
        generator.os_version_change(&shared),
        Version(latest_version),
        LINK_OFFSET,
        APP_ID,
    );
    server.publish(latest.clone());

    let tokens: Vec<DeviceToken> = (0..platforms)
        .flat_map(|platform| {
            (0..requests_per_platform).map(move |device| DeviceToken {
                device_id: 0x3000 + u32::from(platform) * 100 + device,
                nonce: (u32::from(platform) << 16 | device).wrapping_mul(0x9E37_79B9) | 1,
                current_version: Version(platform + 1),
            })
        })
        .collect();

    // Suffix-array construction cost on one platform image.
    let start = Instant::now();
    let doubling_ctx =
        DeltaContext::with_algorithm(&releases[0].firmware, SuffixAlgorithm::PrefixDoubling);
    let sa_doubling_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let sais_ctx = DeltaContext::with_algorithm(&releases[0].firmware, SuffixAlgorithm::SaIs);
    let sa_sais_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        doubling_ctx.diff(&releases[0].firmware, &latest.firmware),
        sais_ctx.diff(&releases[0].firmware, &latest.firmware),
        "constructions must yield identical patches"
    );

    // Single-diff cost: fresh build per call vs reused context.
    let start = Instant::now();
    let fresh_patch = upkit_delta::diff(&releases[0].firmware, &latest.firmware);
    let diff_fresh_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let reused_patch = sais_ctx.diff(&releases[0].firmware, &latest.firmware);
    let diff_context_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fresh_patch, reused_patch);

    // Multi-target batch, three ways.
    let start = Instant::now();
    let baseline: Vec<UpdateImage> = tokens
        .iter()
        .map(|token| {
            let base = &releases[usize::from(token.current_version.0 - 1)];
            prepare_baseline(&server_key, base, &latest, token)
        })
        .collect();
    let baseline_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let sequential: Vec<UpdateImage> = tokens
        .iter()
        .map(|token| {
            server
                .prepare_update(token)
                .expect("campaign serves all")
                .image
        })
        .collect();
    let sequential_ms = start.elapsed().as_secs_f64() * 1e3;

    // Fresh server so the parallel run starts with cold caches too.
    let mut parallel_server = UpdateServer::new(server_key.clone());
    for release in &releases {
        parallel_server.publish(release.clone());
    }
    parallel_server.publish(latest.clone());
    let workers = ParallelGenerator::new(&parallel_server);
    let campaign_tracer = upkit_trace::Tracer::disabled();
    let start = Instant::now();
    let parallel: Vec<UpdateImage> = workers
        .prepare_updates_traced(&tokens, &campaign_tracer)
        .into_iter()
        .map(|p| p.expect("campaign serves all").image)
        .collect();
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    let campaign_counters = campaign_tracer.counters().snapshot();
    assert_eq!(
        campaign_counters.patch_cache_misses,
        u64::from(platforms),
        "the campaign must diff each transition exactly once"
    );

    let byte_identical = baseline
        .iter()
        .zip(&sequential)
        .zip(&parallel)
        .all(|((b, s), p)| {
            let b = b.to_bytes();
            b == s.to_bytes() && b == p.to_bytes()
        });
    assert!(
        byte_identical,
        "all three paths must emit identical wire images"
    );

    // Chunked framed diff: one image pair, windows diffed concurrently on
    // 1, 2, and 8 worker threads. The container must be byte-identical at
    // every thread count (the walls are host facts, the bytes are not).
    let mut framed_walls = Vec::new();
    let mut framed_reference: Option<Vec<u8>> = None;
    for threads in [1usize, 2, 8] {
        let options = FramedDiffOptions::default().with_threads(threads);
        let start = Instant::now();
        let container = sais_ctx.framed_diff(&releases[0].firmware, &latest.firmware, &options);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        framed_walls.push((threads, wall_ms));
        match &framed_reference {
            None => {
                assert_eq!(
                    patch_framed(&releases[0].firmware, &container).expect("container applies"),
                    latest.firmware,
                    "the framed container must reconstruct the new image"
                );
                framed_reference = Some(container);
            }
            Some(reference) => assert_eq!(
                reference, &container,
                "framed container bytes must not depend on the thread count"
            ),
        }
    }
    let framed_container_bytes = framed_reference.as_ref().map_or(0, Vec::len) as u64;
    let framed_speedup_8t = framed_walls[0].1 / framed_walls[2].1;

    // Deterministic generation metrics: total bytes the batch would put on
    // the wire, the compressed payload bytes produced, and the campaign's
    // patch-cache ledger. A delta-engine or compressor regression that
    // inflates updates — or a cache regression that re-diffs — trips
    // `bench_diff` here.
    let counters = upkit_trace::Counters::default();
    let wire_bytes: u64 = parallel.iter().map(|img| img.to_bytes().len() as u64).sum();
    let payload_bytes: u64 = parallel.iter().map(|img| img.payload.len() as u64).sum();
    upkit_trace::Counters::add(&counters.link_bytes_to_device, wire_bytes);
    upkit_trace::Counters::add(&counters.pipeline_bytes_out, payload_bytes);
    counters.absorb(&campaign_counters);

    let json = Json::obj(vec![
        ("bench", Json::Str("gen_parallel".into())),
        ("smoke", Json::Bool(smoke)),
        ("cores", Json::Int(cores as u64)),
        ("worker_threads", Json::Int(workers.threads() as u64)),
        ("platforms", Json::Int(u64::from(platforms))),
        ("requests", Json::Int(tokens.len() as u64)),
        ("image_bytes", Json::Int(image_size as u64)),
        (
            "suffix_build_ms",
            Json::obj(vec![
                ("prefix_doubling", Json::Num(sa_doubling_ms)),
                ("sais", Json::Num(sa_sais_ms)),
            ]),
        ),
        (
            "single_diff_ms",
            Json::obj(vec![
                ("fresh_build", Json::Num(diff_fresh_ms)),
                ("context_reuse", Json::Num(diff_context_ms)),
            ]),
        ),
        (
            "multi_target_wall_ms",
            Json::obj(vec![
                ("baseline_sequential", Json::Num(baseline_ms)),
                ("optimized_sequential", Json::Num(sequential_ms)),
                ("optimized_parallel", Json::Num(parallel_ms)),
            ]),
        ),
        (
            "speedup_vs_baseline",
            Json::obj(vec![
                (
                    "optimized_sequential",
                    Json::Num(baseline_ms / sequential_ms),
                ),
                ("optimized_parallel", Json::Num(baseline_ms / parallel_ms)),
            ]),
        ),
        (
            "framed_diff_wall_ms",
            Json::obj(vec![
                ("threads_1", Json::Num(framed_walls[0].1)),
                ("threads_2", Json::Num(framed_walls[1].1)),
                ("threads_8", Json::Num(framed_walls[2].1)),
            ]),
        ),
        ("framed_speedup_8t", Json::Num(framed_speedup_8t)),
        ("framed_container_bytes", Json::Int(framed_container_bytes)),
        ("byte_identical", Json::Bool(byte_identical)),
        (
            "parallel_not_slower_than_sequential",
            Json::Bool(parallel_ms <= sequential_ms * 1.25),
        ),
        ("metrics", metrics_json(&counters.snapshot())),
    ]);

    print_table(
        &format!(
            "Multi-target generation: {} requests, {platforms} platforms, {} KiB images",
            tokens.len(),
            image_size / 1024
        ),
        &["Variant", "Wall ms", "Speedup"],
        &[
            vec![
                "baseline (prefix-doubling, no reuse)".into(),
                format!("{baseline_ms:.1}"),
                "1.0x".into(),
            ],
            vec![
                "optimized sequential (SA-IS + caches)".into(),
                format!("{sequential_ms:.1}"),
                format!("{:.1}x", baseline_ms / sequential_ms),
            ],
            vec![
                format!("optimized parallel ({} threads)", workers.threads()),
                format!("{parallel_ms:.1}"),
                format!("{:.1}x", baseline_ms / parallel_ms),
            ],
        ],
    );

    print_table(
        "Chunked framed diff: one image pair, windows diffed concurrently",
        &["Threads", "Wall ms", "Speedup vs 1t"],
        &framed_walls
            .iter()
            .map(|&(threads, wall_ms)| {
                vec![
                    format!("{threads}"),
                    format!("{wall_ms:.1}"),
                    format!("{:.2}x", framed_walls[0].1 / wall_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ncampaign patch cache: {} misses / {} hits over {} requests",
        campaign_counters.patch_cache_misses,
        campaign_counters.patch_cache_hits,
        tokens.len()
    );

    // Always write the JSON (smoke runs feed the CI `bench_diff` gate).
    std::fs::write("BENCH_generation.json", json.render()).expect("write BENCH_generation.json");
    println!("\nwrote BENCH_generation.json");
    if smoke {
        println!("{}", json.render());
    }
}
