//! Performance benchmark: multi-target update generation.
//!
//! Prepares double-signed updates for a batch of device requests spread
//! over several target platforms (one base release per platform, one new
//! release), three ways:
//!
//! 1. **baseline_sequential** — the pre-optimization path: every request
//!    rebuilds the old image's suffix array with prefix doubling, re-diffs,
//!    re-compresses, and signs, exactly like the seed's `prepare_update`.
//! 2. **optimized_sequential** — `UpdateServer::prepare_update` with the
//!    SA-IS delta engine and the per-base `DeltaContext`/payload caches.
//! 3. **optimized_parallel** — the same server driven by
//!    `ParallelGenerator` across all available cores.
//!
//! All three produce byte-identical wire images (asserted), so the timings
//! compare equal work. Results go to `BENCH_generation.json`.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin gen_parallel [-- --smoke]
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use upkit_bench::{metrics_json, print_table, Json};
use upkit_compress::{compress, Params as LzssParams};
use upkit_core::generation::{Release, UpdateServer, VendorServer};
use upkit_core::parallel::ParallelGenerator;
use upkit_crypto::ecdsa::SigningKey;
use upkit_delta::{DeltaContext, SuffixAlgorithm};
use upkit_manifest::{server_sign, DeviceToken, Manifest, SignedManifest, UpdateImage, Version};
use upkit_sim::FirmwareGenerator;

const APP_ID: u32 = 0xF1;
const LINK_OFFSET: u32 = 0;

/// The seed's per-request generation path: prefix-doubling suffix array
/// rebuilt per call, no context or payload reuse. Kept here as the
/// measured "before"; its output must stay byte-identical to the
/// optimized server's.
fn prepare_baseline(
    server_key: &SigningKey,
    base: &Release,
    latest: &Release,
    token: &DeviceToken,
) -> UpdateImage {
    let context = DeltaContext::with_algorithm(&base.firmware, SuffixAlgorithm::PrefixDoubling);
    let patch = context.diff(&base.firmware, &latest.firmware);
    let mut payload = compress(&patch, LzssParams::default());
    if let Ok(sparse) = LzssParams::new(8) {
        let alt = compress(&patch, sparse);
        if alt.len() < payload.len() {
            payload = alt;
        }
    }
    let old_version = if payload.len() < latest.firmware.len() {
        base.version
    } else {
        payload = latest.firmware.clone();
        Version(0)
    };
    let manifest = Manifest {
        device_id: token.device_id,
        nonce: token.nonce,
        old_version,
        version: latest.version,
        size: latest.firmware.len() as u32,
        payload_size: payload.len() as u32,
        digest: latest.digest,
        link_offset: latest.link_offset,
        app_id: latest.app_id,
    };
    UpdateImage {
        signed_manifest: SignedManifest {
            manifest,
            vendor_signature: latest.vendor_signature,
            server_signature: server_sign(&manifest, server_key),
        },
        payload,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (image_size, platforms, requests_per_platform) = if smoke {
        (32 * 1024, 2u16, 1u32)
    } else {
        (256 * 1024, 4u16, 4u32)
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut rng = StdRng::seed_from_u64(0x6E5);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let server_key = SigningKey::generate(&mut rng);
    let mut server = UpdateServer::new(server_key.clone());

    // One base release per target platform (firmware variants of a shared
    // image, like per-board builds of one codebase), plus the new release.
    let generator = FirmwareGenerator::new(0xBE7C);
    let shared = generator.base(image_size);
    let mut releases = Vec::new();
    for platform in 1..=platforms {
        let firmware = generator.app_change(&shared, 2048 + 512 * usize::from(platform));
        let release = vendor.release(firmware, Version(platform), LINK_OFFSET, APP_ID);
        server.publish(release.clone());
        releases.push(release);
    }
    let latest_version = platforms + 1;
    let latest = vendor.release(
        generator.os_version_change(&shared),
        Version(latest_version),
        LINK_OFFSET,
        APP_ID,
    );
    server.publish(latest.clone());

    let tokens: Vec<DeviceToken> = (0..platforms)
        .flat_map(|platform| {
            (0..requests_per_platform).map(move |device| DeviceToken {
                device_id: 0x3000 + u32::from(platform) * 100 + device,
                nonce: (u32::from(platform) << 16 | device).wrapping_mul(0x9E37_79B9) | 1,
                current_version: Version(platform + 1),
            })
        })
        .collect();

    // Suffix-array construction cost on one platform image.
    let start = Instant::now();
    let doubling_ctx =
        DeltaContext::with_algorithm(&releases[0].firmware, SuffixAlgorithm::PrefixDoubling);
    let sa_doubling_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let sais_ctx = DeltaContext::with_algorithm(&releases[0].firmware, SuffixAlgorithm::SaIs);
    let sa_sais_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        doubling_ctx.diff(&releases[0].firmware, &latest.firmware),
        sais_ctx.diff(&releases[0].firmware, &latest.firmware),
        "constructions must yield identical patches"
    );

    // Single-diff cost: fresh build per call vs reused context.
    let start = Instant::now();
    let fresh_patch = upkit_delta::diff(&releases[0].firmware, &latest.firmware);
    let diff_fresh_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let reused_patch = sais_ctx.diff(&releases[0].firmware, &latest.firmware);
    let diff_context_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fresh_patch, reused_patch);

    // Multi-target batch, three ways.
    let start = Instant::now();
    let baseline: Vec<UpdateImage> = tokens
        .iter()
        .map(|token| {
            let base = &releases[usize::from(token.current_version.0 - 1)];
            prepare_baseline(&server_key, base, &latest, token)
        })
        .collect();
    let baseline_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let sequential: Vec<UpdateImage> = tokens
        .iter()
        .map(|token| {
            server
                .prepare_update(token)
                .expect("campaign serves all")
                .image
        })
        .collect();
    let sequential_ms = start.elapsed().as_secs_f64() * 1e3;

    // Fresh server so the parallel run starts with cold caches too.
    let mut parallel_server = UpdateServer::new(server_key.clone());
    for release in &releases {
        parallel_server.publish(release.clone());
    }
    parallel_server.publish(latest.clone());
    let workers = ParallelGenerator::new(&parallel_server);
    let start = Instant::now();
    let parallel: Vec<UpdateImage> = workers
        .prepare_updates(&tokens)
        .into_iter()
        .map(|p| p.expect("campaign serves all").image)
        .collect();
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    let byte_identical = baseline
        .iter()
        .zip(&sequential)
        .zip(&parallel)
        .all(|((b, s), p)| {
            let b = b.to_bytes();
            b == s.to_bytes() && b == p.to_bytes()
        });
    assert!(
        byte_identical,
        "all three paths must emit identical wire images"
    );

    // Deterministic generation metrics: total bytes the batch would put on
    // the wire and the compressed payload bytes produced. A delta-engine or
    // compressor regression that inflates updates trips `bench_diff` here.
    let counters = upkit_trace::Counters::default();
    let wire_bytes: u64 = parallel.iter().map(|img| img.to_bytes().len() as u64).sum();
    let payload_bytes: u64 = parallel.iter().map(|img| img.payload.len() as u64).sum();
    upkit_trace::Counters::add(&counters.link_bytes_to_device, wire_bytes);
    upkit_trace::Counters::add(&counters.pipeline_bytes_out, payload_bytes);

    let json = Json::obj(vec![
        ("bench", Json::Str("gen_parallel".into())),
        ("smoke", Json::Bool(smoke)),
        ("cores", Json::Int(cores as u64)),
        ("worker_threads", Json::Int(workers.threads() as u64)),
        ("platforms", Json::Int(u64::from(platforms))),
        ("requests", Json::Int(tokens.len() as u64)),
        ("image_bytes", Json::Int(image_size as u64)),
        (
            "suffix_build_ms",
            Json::obj(vec![
                ("prefix_doubling", Json::Num(sa_doubling_ms)),
                ("sais", Json::Num(sa_sais_ms)),
            ]),
        ),
        (
            "single_diff_ms",
            Json::obj(vec![
                ("fresh_build", Json::Num(diff_fresh_ms)),
                ("context_reuse", Json::Num(diff_context_ms)),
            ]),
        ),
        (
            "multi_target_wall_ms",
            Json::obj(vec![
                ("baseline_sequential", Json::Num(baseline_ms)),
                ("optimized_sequential", Json::Num(sequential_ms)),
                ("optimized_parallel", Json::Num(parallel_ms)),
            ]),
        ),
        (
            "speedup_vs_baseline",
            Json::obj(vec![
                (
                    "optimized_sequential",
                    Json::Num(baseline_ms / sequential_ms),
                ),
                ("optimized_parallel", Json::Num(baseline_ms / parallel_ms)),
            ]),
        ),
        ("byte_identical", Json::Bool(byte_identical)),
        ("metrics", metrics_json(&counters.snapshot())),
    ]);

    print_table(
        &format!(
            "Multi-target generation: {} requests, {platforms} platforms, {} KiB images",
            tokens.len(),
            image_size / 1024
        ),
        &["Variant", "Wall ms", "Speedup"],
        &[
            vec![
                "baseline (prefix-doubling, no reuse)".into(),
                format!("{baseline_ms:.1}"),
                "1.0x".into(),
            ],
            vec![
                "optimized sequential (SA-IS + caches)".into(),
                format!("{sequential_ms:.1}"),
                format!("{:.1}x", baseline_ms / sequential_ms),
            ],
            vec![
                format!("optimized parallel ({} threads)", workers.threads()),
                format!("{parallel_ms:.1}"),
                format!("{:.1}x", baseline_ms / parallel_ms),
            ],
        ],
    );

    if smoke {
        println!("\n{}", json.render());
    } else {
        std::fs::write("BENCH_generation.json", json.render())
            .expect("write BENCH_generation.json");
        println!("\nwrote BENCH_generation.json");
    }
}
