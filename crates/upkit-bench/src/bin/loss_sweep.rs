//! Extension experiment: propagation time under frame loss.
//!
//! Smart objects "operate in harsh environmental conditions for several
//! years" (paper, Sect. I); this sweep quantifies how 802.15.4 frame loss
//! inflates the pull propagation phase for full versus differential
//! updates — the differential update's advantage *grows* with loss,
//! because retransmission cost scales with bytes on the wire.
//!
//! Three views, coarse to fine:
//!
//! 1. the analytic expectation (retransmit `chunks × rate` blocks),
//! 2. a real stepped `PullSession` per rate, with seeded Bernoulli
//!    loss, per-block timeouts, and exponential backoff, and
//! 3. an interleaved event-fleet campaign where hundreds of such
//!    sessions share one virtual clock.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin loss_sweep [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the fleet so CI can run the whole binary in seconds.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use upkit_bench::{metrics_json, print_table, Json};
use upkit_core::agent::{AgentConfig, UpdateAgent, UpdatePlan};
use upkit_core::generation::{UpdateServer, VendorServer};
use upkit_core::image::FIRMWARE_OFFSET;
use upkit_core::keys::TrustAnchors;
use upkit_crypto::backend::TinyCryptBackend;
use upkit_crypto::ecdsa::SigningKey;
use upkit_flash::{configuration_a, standard, FlashGeometry, SimFlash};
use upkit_manifest::Version;
use upkit_net::{
    BorderRouter, LinkProfile, LossyLink, PullEndpoints, PullSession, RetryPolicy,
    SessionEventKind, SessionOutcome, Step, TransferAccounting, Transport,
};
use upkit_sim::{run_event_rollout_traced, EventFleetConfig, FirmwareGenerator};
use upkit_trace::Tracer;

const LOSS_RATES: [(&str, f64); 5] = [
    ("0 %", 0.0),
    ("1 %", 0.01),
    ("5 %", 0.05),
    ("10 %", 0.10),
    ("20 %", 0.20),
];

fn propagation_secs(link: LossyLink, payload_bytes: u64) -> f64 {
    let mut acc = TransferAccounting::default();
    link.charge_to_device(&mut acc, payload_bytes);
    // Each confirmed blockwise GET costs a round trip (as in the pull
    // driver).
    for _ in 0..link.link.chunks_for(payload_bytes) {
        acc.charge_round_trip(&link.link);
    }
    acc.elapsed_micros as f64 / 1e6
}

/// What one real stepped session did under a given loss rate.
struct SteppedRow {
    outcome: SessionOutcome,
    events: u64,
    lost_chunks: u64,
    backoff_wait_micros: u64,
    elapsed_micros: u64,
}

/// Runs one full pull update through the stepped session machinery: a
/// provisioned device, a Bernoulli-lossy 6LoWPAN link, and the per-block
/// timeout → retry → exponential-backoff policy, advanced one link event
/// at a time so losses and waits can be counted exactly.
fn stepped_pull(firmware_size: usize, loss_rate: f64, seed: u64, tracer: &Tracer) -> SteppedRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());

    let generator = FirmwareGenerator::new(seed);
    let v1 = generator.base(firmware_size);
    let v2 = generator.os_version_change(&v1);
    server.publish(vendor.release(v1.clone(), Version(1), 0, 0xF1));
    server.publish(vendor.release(v2, Version(2), 0, 0xF1));

    let slot_size = (firmware_size as u32 + FIRMWARE_OFFSET).div_ceil(4096) * 4096 + 4096 * 4;
    let mut layout = configuration_a(
        Box::new(SimFlash::new(FlashGeometry {
            size: (slot_size * 2).next_power_of_two().max(64 * 1024),
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        })),
        slot_size,
    )
    .expect("valid layout");
    let mut agent = UpdateAgent::new(
        Arc::new(TinyCryptBackend),
        anchors,
        AgentConfig {
            device_id: 0xD0,
            app_id: 0xF1,
            supports_differential: false,
            content_key: None,
        },
    );
    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(1),
        installed_size: firmware_size as u32,
        allowed_link_offsets: vec![0],
        max_firmware_size: slot_size - FIRMWARE_OFFSET,
    };

    layout.set_tracer(tracer.clone());
    let link = LinkProfile::ieee802154_6lowpan();
    let router = BorderRouter::new();
    let mut session = PullSession::new(
        LossyLink::bernoulli(link, loss_rate, seed),
        RetryPolicy::for_link(&link),
        seed,
    );
    session.set_tracer(tracer.clone());
    let mut endpoints = PullEndpoints::new(&server, &router, &mut agent, &mut layout, plan, 1);

    let mut events = 0u64;
    let mut lost_chunks = 0u64;
    let mut backoff_wait_micros = 0u64;
    let report = loop {
        match session.step(&mut endpoints) {
            Step::Progress(event) => {
                events += 1;
                if let SessionEventKind::ChunkLost { timeout_micros, .. } = event.kind {
                    lost_chunks += 1;
                    backoff_wait_micros += timeout_micros;
                }
            }
            Step::Done(report) => break report,
        }
    };
    SteppedRow {
        outcome: report.outcome,
        events,
        lost_chunks,
        backoff_wait_micros,
        elapsed_micros: report.accounting.elapsed_micros,
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let base = LinkProfile::ieee802154_6lowpan();
    let full_bytes = 100_000u64; // Fig. 8a's image
    let delta_bytes = 24_600u64; // Fig. 8b's OS-change delta

    // ── 1. Analytic expectation ─────────────────────────────────────────
    let mut rows = Vec::new();
    for (label, rate) in LOSS_RATES {
        let link = LossyLink::bernoulli(base, rate, 0);
        let full = propagation_secs(link, full_bytes);
        let delta = propagation_secs(link, delta_bytes);
        rows.push(vec![
            label.to_string(),
            format!("{full:.1}"),
            format!("{delta:.1}"),
            format!("{:.1}×", full / delta),
        ]);
    }

    print_table(
        "Extension: pull propagation time vs frame loss (seconds)",
        &[
            "Loss rate",
            "Full 100 kB",
            "Delta 24.6 kB",
            "Delta advantage",
        ],
        &rows,
    );
    println!(
        "\nLoss inflates both transfers proportionally, so the differential\n\
         update's absolute saving grows with link quality degradation —\n\
         harsh environments benefit most from UpKit's delta support."
    );

    // ── 2. One real stepped session per rate ────────────────────────────
    // One counters-only tracer across the whole sweep: every session,
    // flash write, and retransmission lands in the `metrics` section of
    // BENCH_loss.json. Everything is virtual-time and seeded, so the
    // section is byte-deterministic — CI diffs it against a committed
    // snapshot with `bench_diff`.
    let tracer = Tracer::disabled();
    let stepped_fw = if smoke { 20_000 } else { 100_000 };
    let mut rows = Vec::new();
    for (label, rate) in LOSS_RATES {
        let row = stepped_pull(stepped_fw, rate, 0x10_55 + (rate * 100.0) as u64, &tracer);
        assert!(
            matches!(row.outcome, SessionOutcome::Complete),
            "stepped session at {label}: {:?}",
            row.outcome
        );
        rows.push(vec![
            label.to_string(),
            row.events.to_string(),
            row.lost_chunks.to_string(),
            format!("{:.1}", row.backoff_wait_micros as f64 / 1e6),
            format!("{:.1}", row.elapsed_micros as f64 / 1e6),
        ]);
    }
    print_table(
        &format!("Stepped pull session, Bernoulli loss, {stepped_fw} B image"),
        &[
            "Loss rate",
            "Link events",
            "Lost chunks",
            "Backoff wait (s)",
            "Elapsed (s)",
        ],
        &rows,
    );
    println!(
        "\nEach row is a single resumable PullSession advanced one link event\n\
         at a time: every lost chunk costs a timeout (doubling per\n\
         consecutive loss) before its retransmission, so sampled loss adds\n\
         backoff wait on top of the analytic airtime above."
    );

    // ── 3. Interleaved event-fleet campaign ─────────────────────────────
    let devices = if smoke { 60 } else { 400 };
    let mut rows = Vec::new();
    let mut fleet_rows = Vec::new();
    for (label, rate) in [("0 %", 0.0), ("10 %", 0.10), ("20 %", 0.20)] {
        let report = run_event_rollout_traced(
            &EventFleetConfig {
                devices,
                firmware_size: 2_000,
                loss_rate: rate,
                verify_signatures: false,
                device_bound_manifests: false,
                ..EventFleetConfig::default()
            },
            &tracer,
        );
        fleet_rows.push(Json::obj(vec![
            ("loss_rate", Json::Num(rate)),
            ("completed", Json::Int(u64::from(report.completed))),
            ("wire_bytes", Json::Int(report.total_wire_bytes)),
            ("makespan_micros", Json::Int(report.makespan_micros)),
        ]));
        rows.push(vec![
            label.to_string(),
            format!("{}/{}", report.completed, devices),
            report.peak_in_flight.to_string(),
            format!("{:.1}", report.total_wire_bytes as f64 / 1e3),
            format!("{:.1}", report.makespan_micros as f64 / 1e6),
        ]);
    }
    print_table(
        &format!("Event-driven fleet: {devices} interleaved pull sessions"),
        &[
            "Loss rate",
            "Completed",
            "Peak in flight",
            "Wire kB",
            "Makespan (s)",
        ],
        &rows,
    );
    println!(
        "\nAll sessions share one virtual clock: loss stretches individual\n\
         sessions (more wire bytes, longer makespan) without serialising the\n\
         campaign — retransmissions of one device interleave with fresh\n\
         chunks of every other."
    );

    // Machine-readable artifact. Everything in it — including the metrics
    // counters — is virtual-time and seeded, so the file is reproducible
    // bit for bit and diffable in CI.
    let json = Json::obj(vec![
        ("bench", Json::Str("loss_sweep".into())),
        ("smoke", Json::Bool(smoke)),
        ("stepped_firmware_bytes", Json::Int(stepped_fw as u64)),
        ("fleet_devices", Json::Int(u64::from(devices))),
        ("event_fleet", Json::Arr(fleet_rows)),
        ("metrics", metrics_json(&tracer.counters().snapshot())),
    ]);
    std::fs::write("BENCH_loss.json", json.render()).expect("write BENCH_loss.json");
    println!("\nwrote BENCH_loss.json");
}
