//! Extension experiment: propagation time under frame loss.
//!
//! Smart objects "operate in harsh environmental conditions for several
//! years" (paper, Sect. I); this sweep quantifies how 802.15.4 frame loss
//! inflates the pull propagation phase for full versus differential
//! updates — the differential update's advantage *grows* with loss,
//! because retransmission cost scales with bytes on the wire.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin loss_sweep
//! ```

use upkit_bench::print_table;
use upkit_net::{LinkProfile, LossyLink, TransferAccounting};

fn propagation_secs(link: LossyLink, payload_bytes: u64) -> f64 {
    let mut acc = TransferAccounting::default();
    link.charge_to_device(&mut acc, payload_bytes);
    // Each confirmed blockwise GET costs a round trip (as in the pull
    // driver).
    for _ in 0..link.link.chunks_for(payload_bytes) {
        acc.charge_round_trip(&link.link);
    }
    acc.elapsed_micros as f64 / 1e6
}

fn main() {
    let base = LinkProfile::ieee802154_6lowpan();
    let full_bytes = 100_000u64; // Fig. 8a's image
    let delta_bytes = 24_600u64; // Fig. 8b's OS-change delta

    let mut rows = Vec::new();
    for (label, drop_every) in [
        ("0 %", 0u64),
        ("1 %", 100),
        ("5 %", 20),
        ("10 %", 10),
        ("20 %", 5),
    ] {
        let link = LossyLink::with_loss(base, drop_every);
        let full = propagation_secs(link, full_bytes);
        let delta = propagation_secs(link, delta_bytes);
        rows.push(vec![
            label.to_string(),
            format!("{full:.1}"),
            format!("{delta:.1}"),
            format!("{:.1}×", full / delta),
        ]);
    }

    print_table(
        "Extension: pull propagation time vs frame loss (seconds)",
        &[
            "Loss rate",
            "Full 100 kB",
            "Delta 24.6 kB",
            "Delta advantage",
        ],
        &rows,
    );
    println!(
        "\nLoss inflates both transfers proportionally, so the differential\n\
         update's absolute saving grows with link quality degradation —\n\
         harsh environments benefit most from UpKit's delta support."
    );
}
