//! Regenerates **Fig. 7**: UpKit's footprint vs state-of-the-art solutions
//! (a: bootloader vs mcuboot; b: pull agent vs LwM2M; c: push agent vs
//! mcumgr).
//!
//! ```text
//! cargo run -p upkit-bench --bin fig7
//! ```

use upkit_bench::{bytes, print_table};
use upkit_footprint::{
    lwm2m_agent, mcuboot_bootloader, mcumgr_agent, upkit_agent, upkit_bootloader, AgentOptions,
    Approach, CryptoLib, Footprint, Os,
};

fn row(name: &str, fp: Footprint) -> Vec<String> {
    vec![name.to_string(), bytes(fp.flash), bytes(fp.ram)]
}

fn main() {
    let upkit_boot = upkit_bootloader(Os::Zephyr, CryptoLib::TinyCrypt);
    let mcuboot = mcuboot_bootloader();
    print_table(
        "Fig. 7a: Bootloader (Zephyr + tinycrypt, ECDSA secp256r1 + SHA-256)",
        &["System", "Flash (B)", "RAM (B)"],
        &[row("UpKit bootloader", upkit_boot), row("mcuboot", mcuboot)],
    );
    println!(
        "UpKit saves {} B flash and {} B RAM vs mcuboot (paper: 1600 B / 716 B).",
        mcuboot.flash - upkit_boot.flash,
        mcuboot.ram - upkit_boot.ram
    );

    let upkit_pull = upkit_agent(Os::Zephyr, Approach::Pull, AgentOptions::default()).unwrap();
    let lwm2m = lwm2m_agent();
    print_table(
        "Fig. 7b: Pull update agent (Zephyr)",
        &["System", "Flash (B)", "RAM (B)"],
        &[row("UpKit agent (pull)", upkit_pull), row("LwM2M", lwm2m)],
    );
    println!(
        "UpKit saves {:.1} kB flash and {:.1} kB RAM vs LwM2M (paper: 4.8 kB / 2.4 kB).",
        f64::from(lwm2m.flash - upkit_pull.flash) / 1000.0,
        f64::from(lwm2m.ram - upkit_pull.ram) / 1000.0
    );

    let upkit_push = upkit_agent(Os::Zephyr, Approach::Push, AgentOptions::default()).unwrap();
    let mcumgr = mcumgr_agent();
    print_table(
        "Fig. 7c: Push update agent (Zephyr)",
        &["System", "Flash (B)", "RAM (B)"],
        &[row("UpKit agent (push)", upkit_push), row("mcumgr", mcumgr)],
    );
    println!(
        "UpKit saves {} B flash but uses {} B more RAM vs mcumgr (paper: 426 B / 1200 B),\n\
         despite adding differential updates and double-signature validation.",
        mcumgr.flash - upkit_push.flash,
        upkit_push.ram - mcumgr.ram
    );
}
