//! Extension experiment: fleet rollout — adoption curve and server egress
//! with and without differential updates.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin rollout
//! ```

use upkit_bench::print_table;
use upkit_sim::{run_rollout, FleetConfig};

fn main() {
    let base = FleetConfig {
        devices: 60,
        poll_fraction: 0.25,
        firmware_size: 50_000,
        differential: true,
        seed: 0x0110,
    };

    let diff = run_rollout(&base);
    let full = run_rollout(&FleetConfig {
        differential: false,
        ..base
    });

    let mut rows = Vec::new();
    let max_rounds = diff.rounds.len().max(full.rounds.len());
    for round in 0..max_rounds {
        let cell = |report: &upkit_sim::FleetReport| {
            report
                .rounds
                .get(round)
                .map_or_else(|| "done".into(), |r| format!("{}/60", r.updated))
        };
        rows.push(vec![format!("{}", round + 1), cell(&diff), cell(&full)]);
    }
    print_table(
        "Extension: rollout adoption per polling round (60 devices, 25 %/round)",
        &["Round", "Differential fleet", "Full-image fleet"],
        &rows,
    );

    print_table(
        "Server egress over the campaign",
        &["Fleet", "Total wire bytes", "Per device"],
        &[
            vec![
                "Differential".into(),
                diff.total_wire_bytes.to_string(),
                (diff.total_wire_bytes / 60).to_string(),
            ],
            vec![
                "Full-image".into(),
                full.total_wire_bytes.to_string(),
                (full.total_wire_bytes / 60).to_string(),
            ],
        ],
    );
    println!(
        "\nDifferential updates cut campaign egress {:.1}× — the fleet-scale\n\
         consequence of Fig. 8b's per-device saving.",
        full.total_wire_bytes as f64 / diff.total_wire_bytes as f64
    );
}
