//! Regenerates **Table I**: memory footprint of UpKit's bootloader across
//! OSes and crypto libraries.
//!
//! ```text
//! cargo run -p upkit-bench --bin table1
//! ```

use upkit_bench::{bytes, print_table};
use upkit_footprint::{upkit_bootloader, CryptoLib, Os};

fn main() {
    let paper: &[(Os, CryptoLib, u32, u32)] = &[
        (Os::Zephyr, CryptoLib::TinyDtls, 13_040, 8_180),
        (Os::Zephyr, CryptoLib::TinyCrypt, 14_151, 8_180),
        (Os::Riot, CryptoLib::TinyDtls, 15_420, 6_512),
        (Os::Riot, CryptoLib::TinyCrypt, 16_552, 6_512),
        (Os::Contiki, CryptoLib::TinyDtls, 15_454, 6_637),
        (Os::Contiki, CryptoLib::TinyCrypt, 16_546, 6_637),
        (Os::Contiki, CryptoLib::CryptoAuthLib, 14_078, 6_553),
    ];

    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&(os, lib, flash_paper, ram_paper)| {
            let fp = upkit_bootloader(os, lib);
            vec![
                format!("{} bootloader", os.name()),
                lib.name().to_string(),
                bytes(flash_paper),
                bytes(fp.flash),
                bytes(ram_paper),
                bytes(fp.ram),
            ]
        })
        .collect();

    print_table(
        "Table I: Memory footprint of UpKit's bootloader (bytes)",
        &[
            "Configuration",
            "Library",
            "Flash (paper)",
            "Flash (repro)",
            "RAM (paper)",
            "RAM (repro)",
        ],
        &rows,
    );

    println!(
        "\nPortability: {:.0}% of the bootloader code is platform-independent (paper: 91%).",
        upkit_footprint::BOOTLOADER_PORTABLE_FRACTION * 100.0
    );
}
