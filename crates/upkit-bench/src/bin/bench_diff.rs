//! Regression diff for `BENCH_*.json` artifacts.
//!
//! Compares the numeric leaves of a candidate bench JSON against a
//! committed baseline and exits non-zero when any watched metric regressed
//! past the threshold. Designed for CI: run a deterministic bench (for
//! example `loss_sweep --smoke`), then diff its output against the
//! snapshot checked into the repository — a change that silently costs 10%
//! more link bytes or flash erases fails the build.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [options]
//!
//!   --threshold PCT    relative increase that counts as a regression
//!                      (default 5.0; metrics where more is worse)
//!   --prefix PATH      dotted path prefix to watch (default "metrics.";
//!                      repeatable — a leaf is watched if any prefix
//!                      matches)
//!   --ignore SUBSTR    skip leaves whose path contains SUBSTR
//!                      (repeatable; wall-clock fields are skipped by
//!                      default)
//!   --all              watch every numeric leaf, not just --prefix ones
//! ```
//!
//! Exit codes: 0 = no regression, 1 = regression(s), 2 = usage or parse
//! error.

use std::process::ExitCode;

use upkit_bench::{print_table, Json};

/// Leaves that are timing noise, never compared (even under `--all`):
/// wall clocks are not reproducible between machines.
const ALWAYS_IGNORED: [&str; 4] = ["wall_ms", "wall_s", "_per_sec", "speedup"];

struct Options {
    baseline: String,
    candidate: String,
    threshold_pct: f64,
    prefixes: Vec<String>,
    ignores: Vec<String>,
    all: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut positional = Vec::new();
    let mut threshold_pct = 5.0;
    let mut prefixes = Vec::new();
    let mut ignores = Vec::new();
    let mut all = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold_pct = args
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --threshold: {e}"))?;
            }
            "--prefix" => prefixes.push(args.next().ok_or("--prefix needs a value")?),
            "--ignore" => ignores.push(args.next().ok_or("--ignore needs a value")?),
            "--all" => all = true,
            "--help" | "-h" => return Err("usage".into()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if positional.len() != 2 {
        return Err("expected exactly two files: <baseline.json> <candidate.json>".into());
    }
    if prefixes.is_empty() {
        prefixes.push("metrics.".to_string());
    }
    let mut positional = positional.into_iter();
    Ok(Options {
        baseline: positional.next().unwrap_or_default(),
        candidate: positional.next().unwrap_or_default(),
        threshold_pct,
        prefixes,
        ignores,
        all,
    })
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn watched(path: &str, opts: &Options) -> bool {
    if ALWAYS_IGNORED.iter().any(|noise| path.contains(noise)) {
        return false;
    }
    if opts.ignores.iter().any(|ignore| path.contains(ignore)) {
        return false;
    }
    opts.all || opts.prefixes.iter().any(|prefix| path.starts_with(prefix))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("bench_diff: {message}");
            eprintln!(
                "usage: bench_diff <baseline.json> <candidate.json> \
                 [--threshold PCT] [--prefix PATH]... [--ignore SUBSTR]... [--all]"
            );
            return ExitCode::from(2);
        }
    };

    let (baseline, candidate) = match (load(&opts.baseline), load(&opts.candidate)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let base_leaves = baseline.numeric_leaves();
    let cand_leaves: std::collections::HashMap<String, f64> =
        candidate.numeric_leaves().into_iter().collect();

    let mut rows = Vec::new();
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (path, base_value) in &base_leaves {
        if !watched(path, &opts) {
            continue;
        }
        let Some(&cand_value) = cand_leaves.get(path) else {
            // A metric that disappeared is a regression in observability
            // itself.
            regressions += 1;
            rows.push(vec![
                path.clone(),
                format!("{base_value}"),
                "MISSING".into(),
                "-".into(),
                "REGRESSED".into(),
            ]);
            continue;
        };
        compared += 1;
        let delta_pct = if *base_value == 0.0 {
            if cand_value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (cand_value - base_value) / base_value * 100.0
        };
        let regressed = delta_pct > opts.threshold_pct;
        if regressed {
            regressions += 1;
        }
        // Keep the table focused: only changed or regressed leaves.
        if regressed || delta_pct != 0.0 {
            rows.push(vec![
                path.clone(),
                format!("{base_value}"),
                format!("{cand_value}"),
                if delta_pct.is_finite() {
                    format!("{delta_pct:+.2}%")
                } else {
                    "new-nonzero".into()
                },
                if regressed { "REGRESSED" } else { "ok" }.into(),
            ]);
        }
    }

    if compared == 0 && regressions == 0 {
        eprintln!(
            "bench_diff: no watched metrics found (prefixes: {:?}) — \
             baseline has no comparable leaves",
            opts.prefixes
        );
        return ExitCode::from(2);
    }

    if rows.is_empty() {
        println!(
            "bench_diff: {compared} metrics compared, all identical \
             (threshold {:.1}%)",
            opts.threshold_pct
        );
    } else {
        print_table(
            &format!(
                "bench_diff: {} vs {} (threshold {:.1}%)",
                opts.baseline, opts.candidate, opts.threshold_pct
            ),
            &["Metric", "Baseline", "Candidate", "Delta", "Verdict"],
            &rows,
        );
        println!("\n{compared} metrics compared, {regressions} regression(s)");
    }

    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
