//! Design-choice experiment: bsdiff + LZSS versus an rsync-style block
//! diff, over the paper's two differential workloads.
//!
//! UpKit adopts `bsdiff` + `lzss` citing Stolikj et al.; this reproduces
//! the comparison on our synthetic firmware. Reported: wire bytes after
//! compression (what propagation pays) for each algorithm and workload,
//! plus the framed container (windowed bsdiff, per-window LZSS) so the
//! framing overhead of the streamable format is visible next to the
//! monolithic patch it wraps.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin delta_algorithms
//! ```

use upkit_bench::print_table;
use upkit_compress::{compress, Params};
use upkit_delta::{blockdiff, diff, framed_diff, patch_framed, FramedDiffOptions};
use upkit_sim::FirmwareGenerator;

fn wire_len(delta: &[u8]) -> usize {
    // Both algorithms feed the same LZSS stage in the pipeline; compare at
    // the best window, as the update server does.
    let default = compress(delta, Params::default());
    let sparse = compress(delta, Params::new(8).expect("valid window"));
    default.len().min(sparse.len())
}

fn main() {
    let generator = FirmwareGenerator::new(0xDE17A);
    let v1 = generator.base(100_000);
    let workloads = [
        ("OS version change", generator.os_version_change(&v1)),
        ("App change ~1000 B", generator.app_change(&v1, 1000)),
        ("Scattered 1-byte edits", {
            let mut fw = v1.clone();
            for i in (128..fw.len()).step_by(512) {
                fw[i] ^= 1;
            }
            fw
        }),
    ];

    let mut rows = Vec::new();
    for (name, v2) in &workloads {
        let bsdiff_wire = wire_len(&diff(&v1, v2));
        let block_wire = wire_len(&blockdiff::diff(&v1, v2));
        // The framed container carries its own per-window LZSS, so its
        // wire cost is the container length itself.
        let framed = framed_diff(&v1, v2, &FramedDiffOptions::default());
        // Correctness cross-check before quoting numbers.
        assert_eq!(&upkit_delta::patch(&v1, &diff(&v1, v2)).unwrap(), v2);
        assert_eq!(
            &blockdiff::patch(&v1, &blockdiff::diff(&v1, v2)).unwrap(),
            v2
        );
        assert_eq!(&patch_framed(&v1, &framed).unwrap(), v2);
        rows.push(vec![
            (*name).to_string(),
            v2.len().to_string(),
            bsdiff_wire.to_string(),
            framed.len().to_string(),
            block_wire.to_string(),
            format!("{:.1}×", block_wire as f64 / bsdiff_wire as f64),
        ]);
    }

    print_table(
        "Design choice: bsdiff+LZSS vs rsync-style block diff (wire bytes)",
        &[
            "Workload",
            "Image size",
            "bsdiff+LZSS",
            "framed (64 KiB windows)",
            "blockdiff+LZSS",
            "bsdiff advantage",
        ],
        &rows,
    );
    println!(
        "\nbsdiff's byte-wise deltas dominate on firmware-style workloads —\n\
         the basis of the paper's pipeline design (Sect. IV-C, citing\n\
         Stolikj et al.). Block diffs only compete when edits are\n\
         block-aligned, which linker output almost never is."
    );
}
