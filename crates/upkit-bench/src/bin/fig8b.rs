//! Regenerates **Fig. 8b**: impact of differential updates on total update
//! time (full image vs OS-version-change delta vs application-change
//! delta).
//!
//! ```text
//! cargo run --release -p upkit-bench --bin fig8b
//! ```

use upkit_bench::{print_table, secs};
use upkit_sim::{run_scenario, Approach, ScenarioConfig, SlotMode, UpdateKind};

fn main() {
    let mut base = ScenarioConfig::fig8a(Approach::Pull);
    // Differential savings show in propagation; run with A/B loading so the
    // fixed phases do not mask them (the paper reports savings of up to
    // 66 % and 82 % of the total).
    base.slot_mode = SlotMode::AB;

    let mut rows = Vec::new();
    let mut full_total = 0.0f64;
    for (name, kind, paper_saving) in [
        ("Full image", UpdateKind::Full, 0.0),
        ("Diff: OS version change", UpdateKind::DiffOsChange, 66.0),
        (
            "Diff: app change (~1000 B)",
            UpdateKind::DiffAppChange { bytes: 1000 },
            82.0,
        ),
    ] {
        let mut cfg = base.clone();
        cfg.update_kind = kind;
        let result = run_scenario(&cfg);
        assert!(
            result.outcome.is_complete(),
            "{name} failed: {:?}",
            result.outcome
        );
        let total = secs(result.phases.total_micros());
        if kind == UpdateKind::Full {
            full_total = total;
        }
        let saving = if full_total > 0.0 {
            (1.0 - total / full_total) * 100.0
        } else {
            0.0
        };
        rows.push(vec![
            name.to_string(),
            format!("{total:.1}"),
            format!("{:.1}", secs(result.phases.propagation_micros)),
            format!("{}", result.payload_bytes),
            format!("{saving:.0}% (paper: {paper_saving:.0}%)"),
        ]);
    }

    print_table(
        "Fig. 8b: Differential updates (pull, A/B slots)",
        &[
            "Update",
            "Total (s)",
            "Propagation (s)",
            "Wire bytes",
            "Time saved vs full",
        ],
        &rows,
    );
    println!(
        "\nAs in the paper, the saving is exclusively in the propagation phase:\n\
         verification and loading operate on the reconstructed full image."
    );
}
