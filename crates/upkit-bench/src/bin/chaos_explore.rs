//! Crash-consistency exploration: every flash-op boundary, every fault
//! class, never-brick proven per case.
//!
//! Runs the `upkit-chaos` explorer over the quickstart A/B scenario and
//! the static-swap-with-recovery scenario: one fault-free recording pass
//! enumerates every mutating flash op, then each `(boundary, fault)`
//! pair is re-executed with the fault injected and rebooted to a fixed
//! point. The run fails (exit 1) if any case violates the invariant —
//! and writes each minimized counterexample's reproducer command to
//! `CHAOS_repro.txt` so CI can surface it as an artifact.
//!
//! ```text
//! cargo run --release -p upkit-bench --bin chaos_explore \
//!     [-- --smoke] [--components N]
//! cargo run --release -p upkit-bench --bin chaos_explore -- \
//!     --repro <mode> <seed> <firmware_size> <slot_size> <fault> <boundary>
//! ```
//!
//! `--smoke` shrinks the scenarios so CI explores them exhaustively in
//! seconds; `--components N` (2 ..= 8) adds an N-component transactional
//! scenario, whose cases additionally assert the never-mixed-set
//! invariant (`mixed_set_violations` in the metrics section, pinned to
//! zero by `bench_diff`); `--repro` replays exactly one case (the
//! command shape the shrinker emits) and exits non-zero if the invariant
//! fails.

use upkit_bench::{metrics_json, print_table, Json};
use upkit_chaos::{
    explore_traced, mode_from_label, repro_command, shrink_violation, ChaosConfig, ChaosReport,
    FaultClass,
};
use upkit_sim::{WorldConfig, WorldMode};
use upkit_trace::Tracer;

fn repro(args: &[String]) -> i32 {
    let usage =
        "usage: chaos_explore --repro <mode> <seed> <firmware_size> <slot_size> <fault> <boundary>";
    let [mode, seed, firmware_size, slot_size, fault, boundary] = args else {
        eprintln!("{usage}");
        return 2;
    };
    let (Some(mode), Ok(seed), Ok(firmware_size), Ok(slot_size), Some(fault), Ok(boundary)) = (
        mode_from_label(mode),
        seed.parse::<u64>(),
        firmware_size.parse::<usize>(),
        slot_size.parse::<u32>(),
        FaultClass::from_label(fault),
        boundary.parse::<u64>(),
    ) else {
        eprintln!("{usage}");
        return 2;
    };
    let scenario = WorldConfig {
        seed,
        firmware_size,
        slot_size,
        mode,
    };
    let case = upkit_chaos::run_case(&scenario, boundary, fault, 8, &Tracer::disabled());
    println!("{case:#?}");
    i32::from(!case.ok())
}

fn scenario_row(label: &str, report: &ChaosReport) -> Vec<String> {
    vec![
        label.to_string(),
        report.recorded_ops.to_string(),
        report.explored.len().to_string(),
        report.cases.len().to_string(),
        report.violations().len().to_string(),
        report.max_boots_to_recovery.to_string(),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--repro") {
        std::process::exit(repro(&args[1..]));
    }
    let smoke = args.iter().any(|arg| arg == "--smoke");
    let components: Option<u8> =
        args.windows(2)
            .find(|pair| pair[0] == "--components")
            .map(|pair| match pair[1].parse() {
                Ok(n) if (2..=8).contains(&n) => n,
                _ => {
                    eprintln!("--components takes a count in 2 ..= 8, got {:?}", pair[1]);
                    std::process::exit(2);
                }
            });

    // Exhaustive in both profiles: `--smoke` shrinks the *scenario*, not
    // the boundary coverage, so the CI gate still proves every boundary
    // of its (smaller) update.
    let (firmware_size, slot_size) = if smoke {
        (6_000, 4096 * 3)
    } else {
        (24_000, 4096 * 8)
    };
    let mut scenarios = vec![
        ("quickstart-ab", WorldMode::Ab),
        ("static-recovery", WorldMode::StaticSwap { recovery: true }),
    ];
    if let Some(components) = components {
        // An N-module set behind the transactional commit journal: every
        // staging write, the journal record, and every replay copy is a
        // boundary, so cuts between component swaps and double cuts
        // mid-replay are all in the case universe.
        let mode = WorldMode::Multi { components };
        scenarios.push((upkit_chaos::mode_label(mode), mode));
    }

    // One tracer across every case of every scenario, merged in
    // deterministic case order: the `metrics` section (including
    // `faults_injected` and the all-important `fault_violations = 0`) is
    // reproducible bit for bit, so `bench_diff` gates it in CI.
    let tracer = Tracer::disabled();
    let mut rows = Vec::new();
    let mut scenario_json = Vec::new();
    let mut repro_lines = Vec::new();
    for (label, mode) in scenarios {
        let config = ChaosConfig {
            scenario: WorldConfig {
                seed: 7,
                firmware_size,
                slot_size,
                mode,
            },
            threads: 4,
            max_boots: 8,
            boundary_limit: None,
        };
        let report = explore_traced(&config, &tracer);
        assert!(report.recorded_ops > 0, "{label}: recording found no ops");
        assert!(
            report.full_coverage(),
            "{label}: coverage hole — explored boundaries and case set disagree"
        );
        if let Some(shrunk) = shrink_violation(&config, &report) {
            repro_lines.push(format!(
                "{label}: boundary {} fault {} — {}\n  reproduce: {}",
                shrunk.case.boundary,
                shrunk.case.fault.label(),
                shrunk.case.violation.as_deref().unwrap_or("violation"),
                shrunk.command
            ));
            for violation in report.violations() {
                repro_lines.push(format!(
                    "  also at boundary {} fault {}: {}",
                    violation.boundary,
                    violation.fault.label(),
                    repro_command(&config.scenario, violation.fault, violation.boundary)
                ));
            }
        }
        rows.push(scenario_row(label, &report));
        scenario_json.push(Json::obj(vec![
            ("scenario", Json::Str(label.into())),
            ("boundaries", Json::Int(report.recorded_ops as u64)),
            ("cases", Json::Int(report.cases.len() as u64)),
            ("violations", Json::Int(report.violations().len() as u64)),
            (
                "max_boots_to_recovery",
                Json::Int(u64::from(report.max_boots_to_recovery)),
            ),
        ]));
    }

    print_table(
        &format!("Crash-consistency exploration ({firmware_size} B firmware, 5 fault classes)"),
        &[
            "Scenario",
            "Boundaries",
            "Explored",
            "Cases",
            "Violations",
            "Max boots",
        ],
        &rows,
    );
    println!(
        "\nEach case injects one fault (clean cut, torn write, torn erase,\n\
         post-cut bit flip, or double cut) at one recorded flash-op\n\
         boundary, then reboots to a fixed point and checks the booted\n\
         slot still carries a valid dual signature at version ≥ the\n\
         pre-update one."
    );

    let json = Json::obj(vec![
        ("bench", Json::Str("chaos_explore".into())),
        ("smoke", Json::Bool(smoke)),
        ("firmware_bytes", Json::Int(firmware_size as u64)),
        ("scenarios", Json::Arr(scenario_json)),
        ("metrics", metrics_json(&tracer.counters().snapshot())),
    ]);
    std::fs::write("BENCH_chaos.json", json.render()).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json");

    if !repro_lines.is_empty() {
        let body = repro_lines.join("\n") + "\n";
        std::fs::write("CHAOS_repro.txt", &body).expect("write CHAOS_repro.txt");
        eprintln!("\nnever-brick violations found:\n{body}");
        std::process::exit(1);
    }
}
