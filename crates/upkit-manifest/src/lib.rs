//! Manifest, device token, and update-image container formats for UpKit.
//!
//! The manifest is the metadata record at the heart of UpKit's security
//! design (Sect. IV-D of the paper). Compared to mcuboot/mcumgr manifests it
//! adds three fields — *ID*, *nonce*, and *old version* — plus a second
//! signature from the update server, which together grant **update
//! freshness** independent of the network path:
//!
//! | field | bytes | grants |
//! |---|---|---|
//! | ID | 4 | binds the image to one device |
//! | nonce | 4 | binds the image to one request |
//! | old version | 2 | differential-update base (0 = full image) |
//! | version | 2 | downgrade protection (must be strictly higher) |
//! | size | 4 | firmware size; bounds reception |
//! | payload size | 4 | bytes on the wire (patch size for deltas) |
//! | digest | 32 | SHA-256 of the firmware; integrity |
//! | link offset | 4 | memory address the image was linked for |
//! | app ID | 4 | application/hardware compatibility |
//!
//! The **vendor server** signs the *core* fields (version, size, digest,
//! link offset, app ID) at generation time; the **update server** signs the
//! *full* manifest — including the device-token fields — per request. Both
//! signatures are ECDSA-P256 over SHA-256 ([`upkit_crypto`]).
//!
//! > Implementation note: `payload size` is not listed in the paper's field
//! > enumeration but is required so the agent FSM knows how many wire bytes
//! > to accept when the payload is a compressed patch rather than the raw
//! > firmware; it is covered by the update-server signature.
//!
//! For interop with IETF SUIT tooling (the paper's future work), [`suit`]
//! converts between this manifest and a SUIT-style CBOR envelope built on
//! the deterministic-CBOR subset in [`cbor`].

#![cfg_attr(not(feature = "std"), no_std)]
#![warn(missing_docs)]
#![warn(
    clippy::std_instead_of_core,
    clippy::std_instead_of_alloc,
    clippy::alloc_instead_of_core
)]

extern crate alloc;

pub mod cbor;
pub mod components;
pub mod suit;

pub use components::{
    server_sign_multi, vendor_sign_multi, ComponentEntry, ComponentTable, MultiManifest,
    SignedMultiManifest, COMPONENT_ENTRY_LEN, COMPONENT_TABLE_MAGIC, MAX_COMPONENTS,
};

use alloc::vec::Vec;

use upkit_crypto::ecdsa::{Signature, SigningKey, VerifyingKey, SIGNATURE_LEN};
use upkit_crypto::sha256::sha256;

/// A firmware version number.
///
/// The paper uses 16-bit versions; `0` is reserved to mean "no version"
/// (e.g. a device token advertising that differential updates are
/// unsupported).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version(pub u16);

impl core::fmt::Display for Version {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Serialized length of a [`Manifest`].
pub const MANIFEST_LEN: usize = 4 + 4 + 2 + 2 + 4 + 4 + 32 + 4 + 4;

/// Serialized length of a [`SignedManifest`] (manifest + two signatures).
pub const SIGNED_MANIFEST_LEN: usize = MANIFEST_LEN + 2 * SIGNATURE_LEN;

/// Serialized length of a [`DeviceToken`].
pub const DEVICE_TOKEN_LEN: usize = 4 + 4 + 2;

/// Errors from parsing or verifying manifest structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManifestError {
    /// Input shorter than the fixed wire format requires.
    Truncated,
    /// A signature field failed to parse.
    BadSignature,
    /// The payload length disagrees with the manifest's payload size.
    PayloadLengthMismatch,
    /// A component table declared zero entries or more than
    /// [`components::MAX_COMPONENTS`].
    ComponentCountOutOfRange,
    /// Summed component sizes disagree with the manifest's total size.
    ComponentSizeMismatch,
    /// Two component entries claim the same slot or component ID.
    DuplicateComponentSlot,
    /// A component table carried an unknown magic/version prefix.
    BadComponentTable,
}

impl core::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated => f.write_str("manifest bytes truncated"),
            Self::BadSignature => f.write_str("manifest signature failed to parse"),
            Self::PayloadLengthMismatch => {
                f.write_str("payload length disagrees with manifest payload size")
            }
            Self::ComponentCountOutOfRange => {
                f.write_str("component table entry count out of range")
            }
            Self::ComponentSizeMismatch => {
                f.write_str("summed component sizes disagree with manifest size")
            }
            Self::DuplicateComponentSlot => {
                f.write_str("component table repeats a slot or component id")
            }
            Self::BadComponentTable => f.write_str("component table magic/version not recognized"),
        }
    }
}

impl core::error::Error for ManifestError {}

/// The device token: the request-specific structure a device hands to
/// whoever fetches an update on its behalf (Sect. III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceToken {
    /// Unique 32-bit device identifier (e.g. derived from the MAC address).
    pub device_id: u32,
    /// Fresh 32-bit nonce generated by the device for this request.
    pub nonce: u32,
    /// The device's current firmware version, or [`Version`] `0` if the
    /// device does not support differential updates.
    pub current_version: Version,
}

impl DeviceToken {
    /// Serializes to the fixed 10-byte wire format.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; DEVICE_TOKEN_LEN] {
        let mut out = [0u8; DEVICE_TOKEN_LEN];
        out[0..4].copy_from_slice(&self.device_id.to_le_bytes());
        out[4..8].copy_from_slice(&self.nonce.to_le_bytes());
        out[8..10].copy_from_slice(&self.current_version.0.to_le_bytes());
        out
    }

    /// Parses the fixed 10-byte wire format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ManifestError> {
        if bytes.len() < DEVICE_TOKEN_LEN {
            return Err(ManifestError::Truncated);
        }
        Ok(Self {
            device_id: u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            nonce: u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            current_version: Version(u16::from_le_bytes(
                bytes[8..10].try_into().expect("2 bytes"),
            )),
        })
    }

    /// Whether the device advertises differential-update support.
    #[must_use]
    pub fn supports_differential(&self) -> bool {
        self.current_version.0 != 0
    }
}

/// The UpKit manifest (Sect. IV-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Target device's unique identifier (freshness).
    pub device_id: u32,
    /// Request nonce copied from the device token (freshness).
    pub nonce: u32,
    /// Differential-update base version; `0` for full images.
    pub old_version: Version,
    /// Version of the contained firmware (must exceed the installed one).
    pub version: Version,
    /// Size in bytes of the (installed) firmware image.
    pub size: u32,
    /// Size in bytes of the transferred payload (== `size` for full
    /// updates, the compressed-patch length for differential ones).
    pub payload_size: u32,
    /// SHA-256 digest of the firmware image.
    pub digest: [u8; 32],
    /// Memory address the firmware was linked to execute from.
    pub link_offset: u32,
    /// Application/hardware-platform identifier.
    pub app_id: u32,
}

impl Manifest {
    /// Serializes all fields in the fixed wire order.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; MANIFEST_LEN] {
        let mut out = [0u8; MANIFEST_LEN];
        out[0..4].copy_from_slice(&self.device_id.to_le_bytes());
        out[4..8].copy_from_slice(&self.nonce.to_le_bytes());
        out[8..10].copy_from_slice(&self.old_version.0.to_le_bytes());
        out[10..12].copy_from_slice(&self.version.0.to_le_bytes());
        out[12..16].copy_from_slice(&self.size.to_le_bytes());
        out[16..20].copy_from_slice(&self.payload_size.to_le_bytes());
        out[20..52].copy_from_slice(&self.digest);
        out[52..56].copy_from_slice(&self.link_offset.to_le_bytes());
        out[56..60].copy_from_slice(&self.app_id.to_le_bytes());
        out
    }

    /// Parses the fixed wire format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ManifestError> {
        if bytes.len() < MANIFEST_LEN {
            return Err(ManifestError::Truncated);
        }
        let mut digest = [0u8; 32];
        digest.copy_from_slice(&bytes[20..52]);
        Ok(Self {
            device_id: u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            nonce: u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            old_version: Version(u16::from_le_bytes(
                bytes[8..10].try_into().expect("2 bytes"),
            )),
            version: Version(u16::from_le_bytes(
                bytes[10..12].try_into().expect("2 bytes"),
            )),
            size: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
            payload_size: u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")),
            digest,
            link_offset: u32::from_le_bytes(bytes[52..56].try_into().expect("4 bytes")),
            app_id: u32::from_le_bytes(bytes[56..60].try_into().expect("4 bytes")),
        })
    }

    /// The byte region covered by the **vendor** signature: the
    /// request-independent core (version, size, digest, link offset,
    /// app ID). Signed once at generation time.
    #[must_use]
    pub fn vendor_signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + 4 + 32 + 4 + 4);
        out.extend_from_slice(&self.version.0.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.digest);
        out.extend_from_slice(&self.link_offset.to_le_bytes());
        out.extend_from_slice(&self.app_id.to_le_bytes());
        out
    }

    /// The byte region covered by the **update-server** signature: the full
    /// manifest including the device-token fields. Signed per request.
    #[must_use]
    pub fn server_signed_bytes(&self) -> Vec<u8> {
        self.to_bytes().to_vec()
    }

    /// Whether this manifest describes a differential update.
    #[must_use]
    pub fn is_differential(&self) -> bool {
        self.old_version.0 != 0
    }
}

/// A manifest plus its two signatures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SignedManifest {
    /// The signed metadata.
    pub manifest: Manifest,
    /// Vendor-server signature over [`Manifest::vendor_signed_bytes`].
    pub vendor_signature: Signature,
    /// Update-server signature over [`Manifest::server_signed_bytes`].
    pub server_signature: Signature,
}

impl SignedManifest {
    /// Serializes manifest and both signatures.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; SIGNED_MANIFEST_LEN] {
        let mut out = [0u8; SIGNED_MANIFEST_LEN];
        out[..MANIFEST_LEN].copy_from_slice(&self.manifest.to_bytes());
        out[MANIFEST_LEN..MANIFEST_LEN + SIGNATURE_LEN]
            .copy_from_slice(&self.vendor_signature.to_bytes());
        out[MANIFEST_LEN + SIGNATURE_LEN..].copy_from_slice(&self.server_signature.to_bytes());
        out
    }

    /// Parses manifest and signatures, rejecting malformed signature
    /// encodings outright (an early, cheap check).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ManifestError> {
        if bytes.len() < SIGNED_MANIFEST_LEN {
            return Err(ManifestError::Truncated);
        }
        let manifest = Manifest::from_bytes(&bytes[..MANIFEST_LEN])?;
        let vendor_signature =
            Signature::from_bytes(&bytes[MANIFEST_LEN..MANIFEST_LEN + SIGNATURE_LEN])
                .map_err(|_| ManifestError::BadSignature)?;
        let server_signature =
            Signature::from_bytes(&bytes[MANIFEST_LEN + SIGNATURE_LEN..SIGNED_MANIFEST_LEN])
                .map_err(|_| ManifestError::BadSignature)?;
        Ok(Self {
            manifest,
            vendor_signature,
            server_signature,
        })
    }

    /// Convenience: verify both signatures against the given keys.
    /// (The on-device verifier in `upkit-core` goes through the pluggable
    /// security backend instead; this is for server-side checks and tests.)
    pub fn verify_with_keys(
        &self,
        vendor_key: &VerifyingKey,
        server_key: &VerifyingKey,
    ) -> Result<(), upkit_crypto::EcdsaError> {
        vendor_key.verify_prehashed(
            &sha256(&self.manifest.vendor_signed_bytes()),
            &self.vendor_signature,
        )?;
        server_key.verify_prehashed(
            &sha256(&self.manifest.server_signed_bytes()),
            &self.server_signature,
        )
    }
}

/// Signs the vendor-covered core of `manifest`.
#[must_use]
pub fn vendor_sign(manifest: &Manifest, vendor_key: &SigningKey) -> Signature {
    vendor_key.sign_prehashed(&sha256(&manifest.vendor_signed_bytes()))
}

/// Signs the full `manifest` as the update server.
#[must_use]
pub fn server_sign(manifest: &Manifest, server_key: &SigningKey) -> Signature {
    server_key.sign_prehashed(&sha256(&manifest.server_signed_bytes()))
}

/// A complete update image: signed manifest followed by the payload.
///
/// The payload is the raw firmware for full updates or the LZSS-compressed
/// bsdiff patch for differential ones; which one is indicated by
/// `manifest.old_version`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateImage {
    /// The signed manifest.
    pub signed_manifest: SignedManifest,
    /// The wire payload (full image or compressed patch).
    pub payload: Vec<u8>,
}

/// Process-wide count of full [`UpdateImage::to_bytes`] serializations.
///
/// Serializing an update image copies the whole payload; simulation hot
/// paths must account wire bytes via [`UpdateImage::wire_len`] instead.
/// This relaxed counter exists so tests can pin that invariant — see
/// [`image_serializations`].
static IMAGE_SERIALIZATIONS: core::sync::atomic::AtomicU64 = core::sync::atomic::AtomicU64::new(0);

/// Number of full [`UpdateImage::to_bytes`] serializations this process
/// has performed. Monotone; intended for tests that assert a hot path
/// never serializes (compare before/after deltas, not absolute values).
#[must_use]
pub fn image_serializations() -> u64 {
    IMAGE_SERIALIZATIONS.load(core::sync::atomic::Ordering::Relaxed)
}

impl UpdateImage {
    /// Serializes manifest-first, payload after — the order in which the
    /// propagation phase transmits them.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        IMAGE_SERIALIZATIONS.fetch_add(1, core::sync::atomic::Ordering::Relaxed);
        let mut out = Vec::with_capacity(SIGNED_MANIFEST_LEN + self.payload.len());
        out.extend_from_slice(&self.signed_manifest.to_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Length [`Self::to_bytes`] would serialize to, computed without
    /// serializing (the manifest wire format is fixed-size). This is the
    /// wire-byte count campaign accounting uses.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        SIGNED_MANIFEST_LEN + self.payload.len()
    }

    /// Parses an update image, checking the payload length against the
    /// manifest's declared payload size.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ManifestError> {
        let signed_manifest = SignedManifest::from_bytes(bytes)?;
        let payload = bytes[SIGNED_MANIFEST_LEN..].to_vec();
        if !payload_len_matches(payload.len(), signed_manifest.manifest.payload_size) {
            return Err(ManifestError::PayloadLengthMismatch);
        }
        Ok(Self {
            signed_manifest,
            payload,
        })
    }
}

/// Whether an actual payload length equals the declared `payload_size`.
///
/// Compared in `u64`: casting the length down to `u32` would let any
/// payload whose length is congruent to the declared size modulo 2^32
/// (e.g. `size + 4 GiB`) slip through the check.
#[must_use]
pub fn payload_len_matches(actual_len: usize, declared: u32) -> bool {
    actual_len as u64 == u64::from(declared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_manifest() -> Manifest {
        Manifest {
            device_id: 0xDEAD_BEEF,
            nonce: 0x1234_5678,
            old_version: Version(0),
            version: Version(2),
            size: 100_000,
            payload_size: 100_000,
            digest: sha256(b"firmware contents"),
            link_offset: 0x0800_0000,
            app_id: 0xCAFE_0001,
        }
    }

    #[test]
    fn manifest_byte_round_trip() {
        let m = sample_manifest();
        assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn manifest_rejects_short_input() {
        assert_eq!(
            Manifest::from_bytes(&[0u8; MANIFEST_LEN - 1]),
            Err(ManifestError::Truncated)
        );
    }

    #[test]
    fn device_token_round_trip() {
        let token = DeviceToken {
            device_id: 42,
            nonce: 777,
            current_version: Version(3),
        };
        assert_eq!(DeviceToken::from_bytes(&token.to_bytes()).unwrap(), token);
        assert!(token.supports_differential());
        let no_diff = DeviceToken {
            current_version: Version(0),
            ..token
        };
        assert!(!no_diff.supports_differential());
    }

    #[test]
    fn vendor_signature_excludes_token_fields() {
        // Two manifests differing only in device-token fields share the
        // vendor-signed region — the property that lets one vendor
        // signature serve every device and request.
        let a = sample_manifest();
        let b = Manifest {
            device_id: 1,
            nonce: 2,
            old_version: Version(1),
            payload_size: 5000,
            ..a
        };
        assert_eq!(a.vendor_signed_bytes(), b.vendor_signed_bytes());
        assert_ne!(a.server_signed_bytes(), b.server_signed_bytes());
    }

    #[test]
    fn signed_manifest_round_trip_and_verify() {
        let mut rng = StdRng::seed_from_u64(51);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let manifest = sample_manifest();
        let signed = SignedManifest {
            manifest,
            vendor_signature: vendor_sign(&manifest, &vendor),
            server_signature: server_sign(&manifest, &server),
        };
        let parsed = SignedManifest::from_bytes(&signed.to_bytes()).unwrap();
        assert_eq!(parsed, signed);
        parsed
            .verify_with_keys(&vendor.verifying_key(), &server.verifying_key())
            .unwrap();
    }

    #[test]
    fn verify_rejects_swapped_keys() {
        let mut rng = StdRng::seed_from_u64(52);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let manifest = sample_manifest();
        let signed = SignedManifest {
            manifest,
            vendor_signature: vendor_sign(&manifest, &vendor),
            server_signature: server_sign(&manifest, &server),
        };
        assert!(signed
            .verify_with_keys(&server.verifying_key(), &vendor.verifying_key())
            .is_err());
    }

    #[test]
    fn verify_rejects_field_tampering() {
        let mut rng = StdRng::seed_from_u64(53);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let manifest = sample_manifest();
        let mut signed = SignedManifest {
            manifest,
            vendor_signature: vendor_sign(&manifest, &vendor),
            server_signature: server_sign(&manifest, &server),
        };
        // Bump the version: both signatures must now fail.
        signed.manifest.version = Version(9);
        assert!(signed
            .verify_with_keys(&vendor.verifying_key(), &server.verifying_key())
            .is_err());
    }

    #[test]
    fn nonce_tampering_defeats_server_signature_only() {
        let mut rng = StdRng::seed_from_u64(54);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let manifest = sample_manifest();
        let mut signed = SignedManifest {
            manifest,
            vendor_signature: vendor_sign(&manifest, &vendor),
            server_signature: server_sign(&manifest, &server),
        };
        signed.manifest.nonce ^= 1;
        // Vendor signature still valid (nonce outside its coverage)…
        vendor
            .verifying_key()
            .verify_prehashed(
                &sha256(&signed.manifest.vendor_signed_bytes()),
                &signed.vendor_signature,
            )
            .unwrap();
        // …but the double signature as a whole fails: freshness holds.
        assert!(signed
            .verify_with_keys(&vendor.verifying_key(), &server.verifying_key())
            .is_err());
    }

    #[test]
    fn signed_manifest_rejects_garbage_signatures() {
        let manifest = sample_manifest();
        let mut bytes = [0u8; SIGNED_MANIFEST_LEN];
        bytes[..MANIFEST_LEN].copy_from_slice(&manifest.to_bytes());
        // All-zero signatures are invalid encodings (r = s = 0).
        assert_eq!(
            SignedManifest::from_bytes(&bytes),
            Err(ManifestError::BadSignature)
        );
    }

    #[test]
    fn update_image_round_trip() {
        let mut rng = StdRng::seed_from_u64(55);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let payload = vec![0x5A; 1000];
        let mut manifest = sample_manifest();
        manifest.size = 1000;
        manifest.payload_size = 1000;
        let image = UpdateImage {
            signed_manifest: SignedManifest {
                manifest,
                vendor_signature: vendor_sign(&manifest, &vendor),
                server_signature: server_sign(&manifest, &server),
            },
            payload,
        };
        assert_eq!(UpdateImage::from_bytes(&image.to_bytes()).unwrap(), image);
    }

    #[test]
    fn update_image_rejects_wrong_payload_length() {
        let mut rng = StdRng::seed_from_u64(56);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let mut manifest = sample_manifest();
        manifest.payload_size = 10;
        let image = UpdateImage {
            signed_manifest: SignedManifest {
                manifest,
                vendor_signature: vendor_sign(&manifest, &vendor),
                server_signature: server_sign(&manifest, &server),
            },
            payload: vec![0; 10],
        };
        let mut bytes = image.to_bytes();
        bytes.push(0xFF); // extra byte
        assert_eq!(
            UpdateImage::from_bytes(&bytes),
            Err(ManifestError::PayloadLengthMismatch)
        );
    }

    #[test]
    fn payload_length_check_does_not_truncate_modulo_2_pow_32() {
        // Regression: the check used to compare `payload.len() as u32`,
        // so a payload of declared_size + 4 GiB passed. Allocating 4 GiB
        // in a unit test is not an option, so exercise the extracted
        // comparison with a mocked length.
        let declared: u32 = 1000;
        assert!(payload_len_matches(1000, declared));
        assert!(!payload_len_matches(1001, declared));
        // Exactly declared + 2^32 bytes: truncates to `declared` in u32.
        let aliased = (1u64 << 32) as usize + 1000;
        assert_eq!(aliased as u32, declared, "test premise: length aliases");
        assert!(!payload_len_matches(aliased, declared));
        // And the degenerate 0-declared case with a 4 GiB payload.
        assert!(!payload_len_matches((1u64 << 32) as usize, 0));
    }

    #[test]
    fn differential_flag_follows_old_version() {
        let mut m = sample_manifest();
        assert!(!m.is_differential());
        m.old_version = Version(1);
        assert!(m.is_differential());
    }
}
