//! SUIT-style manifest interop (the paper's future work: "the support of
//! the upcoming IETF SUIT standard, in order to allow inter-operation with
//! a larger range of IoT solutions").
//!
//! Implements a CBOR envelope *modeled on* the IETF SUIT information model
//! (draft-ietf-suit-information-model, the draft the paper cites): a map
//! with a manifest version, a sequence number, a common section carrying
//! component/compatibility identifiers, and a payload section with digest
//! and size. UpKit's freshness fields (device ID, nonce, old version,
//! payload size) travel in an extension section, exactly how vendors
//! extend SUIT in practice.
//!
//! The conversions are lossless: `Manifest → envelope → Manifest` is the
//! identity, so an UpKit deployment can exchange manifests with SUIT
//! tooling without weakening any of its checks.

use alloc::vec;
use alloc::vec::Vec;

use crate::cbor::{decode, encode, CborError, Value};
use crate::{Manifest, Version};

/// SUIT envelope keys (information-model names).
mod key {
    /// suit-manifest-version
    pub const MANIFEST_VERSION: u64 = 1;
    /// suit-manifest-sequence-number (UpKit: firmware version)
    pub const SEQUENCE_NUMBER: u64 = 2;
    /// suit-common
    pub const COMMON: u64 = 3;
    /// suit-payload-info
    pub const PAYLOAD_INFO: u64 = 9;
    /// vendor extension: UpKit freshness fields
    pub const UPKIT_EXTENSION: u64 = 24;

    /// Inside suit-common:
    pub const VENDOR_ID: u64 = 1;
    pub const CLASS_ID: u64 = 2;
    pub const COMPONENT_OFFSET: u64 = 3;

    /// Inside suit-payload-info:
    pub const DIGEST: u64 = 1;
    pub const SIZE: u64 = 2;

    /// Inside the UpKit extension:
    pub const DEVICE_ID: u64 = 1;
    pub const NONCE: u64 = 2;
    pub const OLD_VERSION: u64 = 3;
    pub const PAYLOAD_SIZE: u64 = 4;
}

/// The manifest version this module emits.
pub const SUIT_MANIFEST_VERSION: u64 = 1;

/// Errors converting between UpKit manifests and SUIT envelopes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SuitError {
    /// The envelope is not valid CBOR (within the deterministic subset).
    Cbor(CborError),
    /// A required field is absent or has the wrong type.
    MissingField(u64),
    /// The manifest version is not supported.
    UnsupportedVersion,
    /// A numeric field exceeds its UpKit range.
    FieldRange,
}

impl core::fmt::Display for SuitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Cbor(e) => write!(f, "SUIT envelope CBOR error: {e}"),
            Self::MissingField(k) => write!(f, "SUIT envelope missing field {k}"),
            Self::UnsupportedVersion => f.write_str("unsupported SUIT manifest version"),
            Self::FieldRange => f.write_str("SUIT field exceeds UpKit range"),
        }
    }
}

impl core::error::Error for SuitError {}

impl From<CborError> for SuitError {
    fn from(e: CborError) -> Self {
        Self::Cbor(e)
    }
}

/// Serializes an UpKit manifest as a SUIT-style CBOR envelope.
#[must_use]
pub fn to_suit_envelope(manifest: &Manifest) -> Vec<u8> {
    let envelope = Value::Map(vec![
        (key::MANIFEST_VERSION, Value::Uint(SUIT_MANIFEST_VERSION)),
        (
            key::SEQUENCE_NUMBER,
            Value::Uint(u64::from(manifest.version.0)),
        ),
        (
            key::COMMON,
            Value::Map(vec![
                (key::VENDOR_ID, Value::Uint(u64::from(manifest.app_id))),
                (key::CLASS_ID, Value::Uint(u64::from(manifest.app_id))),
                (
                    key::COMPONENT_OFFSET,
                    Value::Uint(u64::from(manifest.link_offset)),
                ),
            ]),
        ),
        (
            key::PAYLOAD_INFO,
            Value::Map(vec![
                (key::DIGEST, Value::Bytes(manifest.digest.to_vec())),
                (key::SIZE, Value::Uint(u64::from(manifest.size))),
            ]),
        ),
        (
            key::UPKIT_EXTENSION,
            Value::Map(vec![
                (key::DEVICE_ID, Value::Uint(u64::from(manifest.device_id))),
                (key::NONCE, Value::Uint(u64::from(manifest.nonce))),
                (
                    key::OLD_VERSION,
                    Value::Uint(u64::from(manifest.old_version.0)),
                ),
                (
                    key::PAYLOAD_SIZE,
                    Value::Uint(u64::from(manifest.payload_size)),
                ),
            ]),
        ),
    ]);
    encode(&envelope)
}

fn require(value: &Value, k: u64) -> Result<&Value, SuitError> {
    value.get(k).ok_or(SuitError::MissingField(k))
}

fn uint_field<T: TryFrom<u64>>(value: &Value, k: u64) -> Result<T, SuitError> {
    let raw = require(value, k)?
        .as_uint()
        .ok_or(SuitError::MissingField(k))?;
    T::try_from(raw).map_err(|_| SuitError::FieldRange)
}

/// Parses a SUIT-style envelope back into an UpKit manifest.
pub fn from_suit_envelope(bytes: &[u8]) -> Result<Manifest, SuitError> {
    let envelope = decode(bytes)?;
    let version_field: u64 = uint_field(&envelope, key::MANIFEST_VERSION)?;
    if version_field != SUIT_MANIFEST_VERSION {
        return Err(SuitError::UnsupportedVersion);
    }
    let sequence: u16 = uint_field(&envelope, key::SEQUENCE_NUMBER)?;

    let common = require(&envelope, key::COMMON)?;
    let app_id: u32 = uint_field(common, key::VENDOR_ID)?;
    let link_offset: u32 = uint_field(common, key::COMPONENT_OFFSET)?;

    let payload_info = require(&envelope, key::PAYLOAD_INFO)?;
    let digest_bytes = require(payload_info, key::DIGEST)?
        .as_bytes()
        .ok_or(SuitError::MissingField(key::DIGEST))?;
    let digest: [u8; 32] = digest_bytes.try_into().map_err(|_| SuitError::FieldRange)?;
    let size: u32 = uint_field(payload_info, key::SIZE)?;

    let ext = require(&envelope, key::UPKIT_EXTENSION)?;
    Ok(Manifest {
        device_id: uint_field(ext, key::DEVICE_ID)?,
        nonce: uint_field(ext, key::NONCE)?,
        old_version: Version(uint_field(ext, key::OLD_VERSION)?),
        version: Version(sequence),
        size,
        payload_size: uint_field(ext, key::PAYLOAD_SIZE)?,
        digest,
        link_offset,
        app_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use upkit_crypto::sha256::sha256;

    fn sample() -> Manifest {
        Manifest {
            device_id: 0x1111_2222,
            nonce: 0x3333_4444,
            old_version: Version(4),
            version: Version(5),
            size: 123_456,
            payload_size: 45_678,
            digest: sha256(b"suit payload"),
            link_offset: 0x0800_4000,
            app_id: 0xABCD,
        }
    }

    #[test]
    fn round_trip_is_lossless() {
        let m = sample();
        let envelope = to_suit_envelope(&m);
        assert_eq!(from_suit_envelope(&envelope).unwrap(), m);
    }

    #[test]
    fn envelope_is_valid_deterministic_cbor() {
        let envelope = to_suit_envelope(&sample());
        let value = decode(&envelope).unwrap();
        // Re-encoding the decoded structure reproduces the bytes: the
        // determinism SUIT needs for signing.
        assert_eq!(encode(&value), envelope);
    }

    #[test]
    fn sequence_number_carries_the_version() {
        let envelope = to_suit_envelope(&sample());
        let value = decode(&envelope).unwrap();
        assert_eq!(
            value.get(key::SEQUENCE_NUMBER).and_then(Value::as_uint),
            Some(5)
        );
    }

    #[test]
    fn rejects_missing_extension() {
        let envelope = to_suit_envelope(&sample());
        let mut value = decode(&envelope).unwrap();
        if let Value::Map(entries) = &mut value {
            entries.retain(|(k, _)| *k != key::UPKIT_EXTENSION);
        }
        assert_eq!(
            from_suit_envelope(&encode(&value)),
            Err(SuitError::MissingField(key::UPKIT_EXTENSION))
        );
    }

    #[test]
    fn rejects_wrong_manifest_version() {
        let envelope = to_suit_envelope(&sample());
        let mut value = decode(&envelope).unwrap();
        if let Value::Map(entries) = &mut value {
            entries[0].1 = Value::Uint(99);
        }
        assert_eq!(
            from_suit_envelope(&encode(&value)),
            Err(SuitError::UnsupportedVersion)
        );
    }

    #[test]
    fn rejects_wrong_digest_length() {
        let envelope = to_suit_envelope(&sample());
        let mut value = decode(&envelope).unwrap();
        if let Value::Map(entries) = &mut value {
            for (k, v) in entries.iter_mut() {
                if *k == key::PAYLOAD_INFO {
                    if let Value::Map(info) = v {
                        for (ik, iv) in info.iter_mut() {
                            if *ik == key::DIGEST {
                                *iv = Value::Bytes(vec![0; 20]); // SHA-1 sized
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(
            from_suit_envelope(&encode(&value)),
            Err(SuitError::FieldRange)
        );
    }

    #[test]
    fn rejects_out_of_range_sequence() {
        let envelope = to_suit_envelope(&sample());
        let mut value = decode(&envelope).unwrap();
        if let Value::Map(entries) = &mut value {
            entries[1].1 = Value::Uint(u64::from(u16::MAX) + 1);
        }
        assert_eq!(
            from_suit_envelope(&encode(&value)),
            Err(SuitError::FieldRange)
        );
    }

    #[test]
    fn rejects_garbage() {
        // 0xFF is a CBOR "break" with no enclosing indefinite item.
        assert!(matches!(
            from_suit_envelope(&[0xFF, 0x00]),
            Err(SuitError::Cbor(_))
        ));
        assert!(matches!(
            from_suit_envelope(&encode(&Value::Uint(7))),
            Err(SuitError::MissingField(_))
        ));
    }
}
