//! Minimal CBOR (RFC 8949) subset: unsigned integers, byte strings, text
//! strings, arrays, and integer-keyed maps — exactly what a SUIT-style
//! manifest envelope needs.
//!
//! Encoding is deterministic (definite lengths, shortest-form integers),
//! matching the SUIT requirement that manifests be byte-reproducible for
//! signing.

use alloc::string::String;
use alloc::vec::Vec;

/// A CBOR data item (the subset used by [`crate::suit`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Major type 0: unsigned integer.
    Uint(u64),
    /// Major type 2: byte string.
    Bytes(Vec<u8>),
    /// Major type 3: UTF-8 text string.
    Text(String),
    /// Major type 4: array.
    Array(Vec<Value>),
    /// Major type 5: map with unsigned-integer keys (sorted ascending, as
    /// deterministic CBOR requires).
    Map(Vec<(u64, Value)>),
}

/// Maximum container nesting the decoder accepts.
///
/// Manifests nest two or three levels deep; anything beyond this bound is
/// an attack on the decoder's stack (a stream of `0x81` bytes recurses once
/// per byte), so decoding fails with [`CborError::DepthExceeded`] instead.
pub const MAX_DEPTH: usize = 16;

/// Errors from CBOR decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CborError {
    /// Input ended inside an item.
    Truncated,
    /// A major type or additional-info value outside the supported subset.
    Unsupported,
    /// Text string was not valid UTF-8.
    BadText,
    /// Map keys were not unsigned integers in ascending order.
    BadMapKey,
    /// Extra bytes followed the top-level item.
    TrailingBytes,
    /// Containers nested deeper than [`MAX_DEPTH`].
    DepthExceeded,
    /// A declared length exceeds the remaining input (a length-lying
    /// header; rejected before any allocation is sized from it).
    LengthOverflow,
}

impl core::fmt::Display for CborError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated => f.write_str("CBOR input truncated"),
            Self::Unsupported => f.write_str("CBOR item outside the supported subset"),
            Self::BadText => f.write_str("CBOR text string is not valid UTF-8"),
            Self::BadMapKey => f.write_str("CBOR map keys must be ascending unsigned integers"),
            Self::TrailingBytes => f.write_str("trailing bytes after CBOR item"),
            Self::DepthExceeded => f.write_str("CBOR nesting deeper than supported"),
            Self::LengthOverflow => f.write_str("CBOR declared length exceeds input"),
        }
    }
}

impl core::error::Error for CborError {}

fn encode_head(out: &mut Vec<u8>, major: u8, value: u64) {
    let mt = major << 5;
    if value < 24 {
        out.push(mt | value as u8);
    } else if value <= u64::from(u8::MAX) {
        out.push(mt | 24);
        out.push(value as u8);
    } else if value <= u64::from(u16::MAX) {
        out.push(mt | 25);
        out.extend_from_slice(&(value as u16).to_be_bytes());
    } else if value <= u64::from(u32::MAX) {
        out.push(mt | 26);
        out.extend_from_slice(&(value as u32).to_be_bytes());
    } else {
        out.push(mt | 27);
        out.extend_from_slice(&value.to_be_bytes());
    }
}

/// Encodes a value to deterministic CBOR.
#[must_use]
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Uint(v) => encode_head(out, 0, *v),
        Value::Bytes(b) => {
            encode_head(out, 2, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::Text(t) => {
            encode_head(out, 3, t.len() as u64);
            out.extend_from_slice(t.as_bytes());
        }
        Value::Array(items) => {
            encode_head(out, 4, items.len() as u64);
            for item in items {
                encode_into(item, out);
            }
        }
        Value::Map(entries) => {
            encode_head(out, 5, entries.len() as u64);
            for (key, item) in entries {
                encode_head(out, 0, *key);
                encode_into(item, out);
            }
        }
    }
}

/// Decodes a single top-level value, rejecting trailing bytes.
pub fn decode(input: &[u8]) -> Result<Value, CborError> {
    let (value, used) = decode_item(input, 0)?;
    if used != input.len() {
        return Err(CborError::TrailingBytes);
    }
    Ok(value)
}

fn decode_head(input: &[u8]) -> Result<(u8, u64, usize), CborError> {
    let first = *input.first().ok_or(CborError::Truncated)?;
    let major = first >> 5;
    let info = first & 0x1F;
    let (value, used) = match info {
        0..=23 => (u64::from(info), 1),
        24 => {
            let b = *input.get(1).ok_or(CborError::Truncated)?;
            (u64::from(b), 2)
        }
        25 => {
            let bytes = input.get(1..3).ok_or(CborError::Truncated)?;
            (u64::from(u16::from_be_bytes([bytes[0], bytes[1]])), 3)
        }
        26 => {
            let bytes = input.get(1..5).ok_or(CborError::Truncated)?;
            (
                u64::from(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])),
                5,
            )
        }
        27 => {
            let bytes: [u8; 8] = input
                .get(1..9)
                .and_then(|b| b.try_into().ok())
                .ok_or(CborError::Truncated)?;
            (u64::from_be_bytes(bytes), 9)
        }
        _ => return Err(CborError::Unsupported), // indefinite lengths
    };
    Ok((major, value, used))
}

/// Declared lengths an attacker can lie about (string bytes, container
/// element counts) are checked against the *remaining input* before any
/// loop runs or any `Vec` capacity is derived from them: every string byte
/// and every container element costs at least one input byte, so a
/// declaration larger than what is left can never be satisfied.
fn check_declared_len(value: u64, remaining: usize) -> Result<usize, CborError> {
    let len = usize::try_from(value).map_err(|_| CborError::LengthOverflow)?;
    if len > remaining {
        return Err(CborError::LengthOverflow);
    }
    Ok(len)
}

fn decode_item(input: &[u8], depth: usize) -> Result<(Value, usize), CborError> {
    if depth > MAX_DEPTH {
        return Err(CborError::DepthExceeded);
    }
    let (major, value, mut used) = decode_head(input)?;
    match major {
        0 => Ok((Value::Uint(value), used)),
        2 | 3 => {
            let len = check_declared_len(value, input.len() - used)?;
            let end = used.checked_add(len).ok_or(CborError::LengthOverflow)?;
            let body = input.get(used..end).ok_or(CborError::Truncated)?.to_vec();
            used = end;
            if major == 2 {
                Ok((Value::Bytes(body), used))
            } else {
                let text = String::from_utf8(body).map_err(|_| CborError::BadText)?;
                Ok((Value::Text(text), used))
            }
        }
        4 => {
            let count = check_declared_len(value, input.len() - used)?;
            let mut items = Vec::new();
            for _ in 0..count {
                let (item, item_used) = decode_item(&input[used..], depth + 1)?;
                items.push(item);
                used += item_used;
            }
            Ok((Value::Array(items), used))
        }
        5 => {
            let count = check_declared_len(value, input.len() - used)?;
            let mut entries = Vec::new();
            let mut last_key: Option<u64> = None;
            for _ in 0..count {
                let (key_major, key, key_used) = decode_head(&input[used..])?;
                if key_major != 0 {
                    return Err(CborError::BadMapKey);
                }
                if let Some(prev) = last_key {
                    if key <= prev {
                        return Err(CborError::BadMapKey);
                    }
                }
                last_key = Some(key);
                used += key_used;
                let (item, item_used) = decode_item(&input[used..], depth + 1)?;
                entries.push((key, item));
                used += item_used;
            }
            Ok((Value::Map(entries), used))
        }
        _ => Err(CborError::Unsupported),
    }
}

impl Value {
    /// Map lookup by integer key.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| *k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The contained unsigned integer, if this is one.
    #[must_use]
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained byte string, if this is one.
    #[must_use]
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8949 Appendix A vectors (within the subset).
    #[test]
    fn rfc8949_uint_vectors() {
        assert_eq!(hex(&encode(&Value::Uint(0))), "00");
        assert_eq!(hex(&encode(&Value::Uint(10))), "0a");
        assert_eq!(hex(&encode(&Value::Uint(23))), "17");
        assert_eq!(hex(&encode(&Value::Uint(24))), "1818");
        assert_eq!(hex(&encode(&Value::Uint(100))), "1864");
        assert_eq!(hex(&encode(&Value::Uint(1000))), "1903e8");
        assert_eq!(hex(&encode(&Value::Uint(1_000_000))), "1a000f4240");
        assert_eq!(
            hex(&encode(&Value::Uint(1_000_000_000_000))),
            "1b000000e8d4a51000"
        );
    }

    #[test]
    fn rfc8949_string_vectors() {
        assert_eq!(hex(&encode(&Value::Bytes(vec![1, 2, 3, 4]))), "4401020304");
        assert_eq!(hex(&encode(&Value::Text("IETF".into()))), "6449455446");
        assert_eq!(hex(&encode(&Value::Text(String::new()))), "60");
    }

    #[test]
    fn rfc8949_array_vector() {
        let v = Value::Array(vec![Value::Uint(1), Value::Uint(2), Value::Uint(3)]);
        assert_eq!(hex(&encode(&v)), "83010203");
    }

    #[test]
    fn map_round_trip_with_sorted_keys() {
        let v = Value::Map(vec![
            (1, Value::Uint(2)),
            (3, Value::Bytes(vec![0xAA])),
            (10, Value::Array(vec![Value::Text("x".into())])),
        ]);
        assert_eq!(decode(&encode(&v)).unwrap(), v);
    }

    #[test]
    fn rejects_unsorted_map_keys() {
        // Hand-encode a map {2: 0, 1: 0} — non-deterministic order.
        let bytes = [0xA2, 0x02, 0x00, 0x01, 0x00];
        assert_eq!(decode(&bytes), Err(CborError::BadMapKey));
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        // A byte string cut short is caught by the declared-length check:
        // the header claims more bytes than the input holds.
        let full = encode(&Value::Bytes(vec![1, 2, 3]));
        assert_eq!(
            decode(&full[..full.len() - 1]),
            Err(CborError::LengthOverflow)
        );
        // A truncated multi-byte head is still plain truncation.
        assert_eq!(decode(&[0x19, 0x01]), Err(CborError::Truncated));
        assert_eq!(decode(&[0x1B, 0, 0, 0, 0]), Err(CborError::Truncated));
        let mut extra = full.clone();
        extra.push(0x00);
        assert_eq!(decode(&extra), Err(CborError::TrailingBytes));
    }

    #[test]
    fn rejects_nesting_deeper_than_max_depth() {
        // `0x81` = one-element array; a run of them recurses once per byte.
        // Deep enough to smash the stack without the depth limit.
        let mut bytes = vec![0x81u8; 10_000];
        bytes.push(0x00);
        assert_eq!(decode(&bytes), Err(CborError::DepthExceeded));
        // Depth at the limit still decodes.
        let mut ok = vec![0x81u8; MAX_DEPTH];
        ok.push(0x00);
        assert!(decode(&ok).is_ok());
        // One past the limit does not.
        let mut over = vec![0x81u8; MAX_DEPTH + 1];
        over.push(0x00);
        assert_eq!(decode(&over), Err(CborError::DepthExceeded));
    }

    #[test]
    fn rejects_length_lying_headers() {
        // Byte string claiming 4 GiB from a 10-byte input.
        let mut lying = vec![0x5A]; // major 2, 4-byte length
        lying.extend_from_slice(&0xFFFF_FFFFu32.to_be_bytes());
        lying.extend_from_slice(&[0; 5]);
        assert_eq!(decode(&lying), Err(CborError::LengthOverflow));
        // Array claiming u64::MAX elements.
        let mut huge_array = vec![0x9B]; // major 4, 8-byte length
        huge_array.extend_from_slice(&u64::MAX.to_be_bytes());
        assert_eq!(decode(&huge_array), Err(CborError::LengthOverflow));
        // Map claiming 2^32 entries with two bytes of body.
        let mut huge_map = vec![0xBA]; // major 5, 4-byte length
        huge_map.extend_from_slice(&u32::MAX.to_be_bytes());
        huge_map.extend_from_slice(&[0x00, 0x00]);
        assert_eq!(decode(&huge_map), Err(CborError::LengthOverflow));
    }

    #[test]
    fn rejects_unsupported_types() {
        // Major type 7 (simple/float): not in the subset.
        assert_eq!(decode(&[0xF5]), Err(CborError::Unsupported));
        // Negative integer (major 1).
        assert_eq!(decode(&[0x20]), Err(CborError::Unsupported));
        // Indefinite-length byte string.
        assert_eq!(decode(&[0x5F]), Err(CborError::Unsupported));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            (
                1,
                Value::Array(vec![
                    Value::Map(vec![(0, Value::Uint(7))]),
                    Value::Bytes(vec![9; 300]), // 2-byte length head
                ]),
            ),
            (2, Value::Uint(u64::MAX)),
        ]);
        assert_eq!(decode(&encode(&v)).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Value::Map(vec![(1, Value::Uint(5)), (2, Value::Bytes(vec![1]))]);
        assert_eq!(v.get(1).and_then(Value::as_uint), Some(5));
        assert_eq!(v.get(2).and_then(Value::as_bytes), Some(&[1u8][..]));
        assert!(v.get(3).is_none());
        assert!(Value::Uint(1).get(0).is_none());
    }
}
