//! Multi-payload manifests: the component table.
//!
//! ROADMAP item 4 (and SUIT's multi-payload envelopes) call for updating a
//! *set* of independently-versioned components — a base OS plus app
//! modules — under one signed manifest. The wire format is strictly
//! additive: a legacy single-payload [`SignedManifest`] is exactly a
//! [`SignedMultiManifest`] with an absent component table, byte for byte,
//! so every deployed decoder keeps working and the signed bytes of legacy
//! manifests never change.
//!
//! Wire layout (little-endian, appended after the two signatures):
//!
//! | field | bytes | |
//! |---|---|---|
//! | magic | 4 | `"UKC1"` — versioned table format |
//! | count | 2 | number of entries (1 ..= [`MAX_COMPONENTS`]) |
//! | entries | 43 × count | dependency order (install order) |
//!
//! Each entry:
//!
//! | field | bytes | |
//! |---|---|---|
//! | component ID | 4 | stable module identifier |
//! | version | 2 | per-component version |
//! | size | 4 | component firmware size in bytes |
//! | digest | 32 | SHA-256 of the component firmware |
//! | slot | 1 | bootable slot index the component runs from |
//!
//! Validation is structural and total: the entry count is bounded, summed
//! component sizes must equal the outer manifest's `size` (checked in
//! `u64`, so a table whose sizes overflow `u32` arithmetic cannot alias a
//! small total), and slot assignments must not collide. Both signatures
//! extend over the table when it is present, so a tampered table defeats
//! acceptance the same way a tampered digest does.

use alloc::vec::Vec;

use upkit_crypto::ecdsa::{Signature, SigningKey, VerifyingKey};
use upkit_crypto::sha256::sha256;

use crate::{Manifest, ManifestError, SignedManifest, Version, MANIFEST_LEN, SIGNED_MANIFEST_LEN};

/// Serialized length of one [`ComponentEntry`].
pub const COMPONENT_ENTRY_LEN: usize = 4 + 2 + 4 + 32 + 1;

/// Magic prefix of a serialized component table (versioned: bump the
/// trailing digit for incompatible revisions).
pub const COMPONENT_TABLE_MAGIC: [u8; 4] = *b"UKC1";

/// Upper bound on component-table entries. Constrained devices provision a
/// fixed slot pair per component, so the bound is small; it also caps the
/// memory a hostile `count` field can demand before validation.
pub const MAX_COMPONENTS: usize = 8;

/// One component of a multi-payload update set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComponentEntry {
    /// Stable identifier of the module (survives version changes).
    pub component_id: u32,
    /// Version of this component in the set.
    pub version: Version,
    /// Size in bytes of the component's firmware image.
    pub size: u32,
    /// SHA-256 digest of the component's firmware image.
    pub digest: [u8; 32],
    /// Bootable slot index the component executes from.
    pub slot: u8,
}

impl ComponentEntry {
    /// Serializes the fixed 43-byte wire format.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; COMPONENT_ENTRY_LEN] {
        let mut out = [0u8; COMPONENT_ENTRY_LEN];
        out[0..4].copy_from_slice(&self.component_id.to_le_bytes());
        out[4..6].copy_from_slice(&self.version.0.to_le_bytes());
        out[6..10].copy_from_slice(&self.size.to_le_bytes());
        out[10..42].copy_from_slice(&self.digest);
        out[42] = self.slot;
        out
    }

    /// Parses the fixed 43-byte wire format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ManifestError> {
        if bytes.len() < COMPONENT_ENTRY_LEN {
            return Err(ManifestError::Truncated);
        }
        let mut digest = [0u8; 32];
        digest.copy_from_slice(&bytes[10..42]);
        Ok(Self {
            component_id: u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            version: Version(u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"))),
            size: u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")),
            digest,
            slot: bytes[42],
        })
    }
}

/// A validated, dependency-ordered component table.
///
/// Construction validates; a value of this type always satisfies the
/// structural invariants (bounded count, no slot collisions). The
/// size-sum-vs-total check needs the outer manifest and runs in
/// [`MultiManifest::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentTable {
    entries: Vec<ComponentEntry>,
}

impl ComponentTable {
    /// Builds a table from entries in dependency order (the order in which
    /// components must be committed; a component must precede anything
    /// that depends on it).
    pub fn new(entries: Vec<ComponentEntry>) -> Result<Self, ManifestError> {
        if entries.is_empty() || entries.len() > MAX_COMPONENTS {
            return Err(ManifestError::ComponentCountOutOfRange);
        }
        // O(n²) over ≤ 8 entries beats allocating a set in no_std.
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[..i] {
                if a.slot == b.slot {
                    return Err(ManifestError::DuplicateComponentSlot);
                }
                if a.component_id == b.component_id {
                    return Err(ManifestError::DuplicateComponentSlot);
                }
            }
        }
        Ok(Self { entries })
    }

    /// The entries, in dependency (install) order.
    #[must_use]
    pub fn entries(&self) -> &[ComponentEntry] {
        &self.entries
    }

    /// Number of components in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`: an empty table cannot be constructed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Summed component sizes in `u64` (cannot overflow: ≤ 8 × `u32::MAX`).
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.size)).sum()
    }

    /// Serialized length of this table on the wire.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        4 + 2 + self.entries.len() * COMPONENT_ENTRY_LEN
    }

    /// Serializes magic, count, and entries.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&COMPONENT_TABLE_MAGIC);
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for entry in &self.entries {
            out.extend_from_slice(&entry.to_bytes());
        }
        out
    }

    /// Parses and validates a serialized table. The declared count is
    /// bounds-checked *before* any allocation, so a count bomb cannot
    /// demand memory.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ManifestError> {
        if bytes.len() < 6 {
            return Err(ManifestError::Truncated);
        }
        if bytes[0..4] != COMPONENT_TABLE_MAGIC {
            return Err(ManifestError::BadComponentTable);
        }
        let count = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes")) as usize;
        if count == 0 || count > MAX_COMPONENTS {
            return Err(ManifestError::ComponentCountOutOfRange);
        }
        let need = 6 + count * COMPONENT_ENTRY_LEN;
        if bytes.len() < need {
            return Err(ManifestError::Truncated);
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = 6 + i * COMPONENT_ENTRY_LEN;
            entries.push(ComponentEntry::from_bytes(
                &bytes[at..at + COMPONENT_ENTRY_LEN],
            )?);
        }
        Self::new(entries)
    }

    /// SHA-256 over the serialized table: the *component set digest* the
    /// transactional installer journals in its commit record. Two sets
    /// agree on this digest iff they agree on every component's identity,
    /// version, size, digest, slot, and order.
    #[must_use]
    pub fn set_digest(&self) -> [u8; 32] {
        sha256(&self.to_bytes())
    }
}

/// A manifest plus an optional component table.
///
/// `components: None` is the legacy single-payload form; its wire bytes —
/// signed and unsigned — are byte-identical to a plain [`Manifest`] /
/// [`SignedManifest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiManifest {
    /// The outer manifest. For multi-payload sets, `size` is the summed
    /// component sizes and `digest` covers the concatenated component
    /// images in table order.
    pub manifest: Manifest,
    /// The component table, absent for legacy single-payload updates.
    pub components: Option<ComponentTable>,
}

impl MultiManifest {
    /// Wraps a legacy single-payload manifest (no component table).
    #[must_use]
    pub fn legacy(manifest: Manifest) -> Self {
        Self {
            manifest,
            components: None,
        }
    }

    /// Cross-field validation: with a table present, summed component
    /// sizes must equal the declared total (compared in `u64` so the sum
    /// cannot alias a small total modulo 2^32).
    pub fn validate(&self) -> Result<(), ManifestError> {
        if let Some(table) = &self.components {
            if table.total_size() != u64::from(self.manifest.size) {
                return Err(ManifestError::ComponentSizeMismatch);
            }
        }
        Ok(())
    }

    /// The component set this manifest describes. Legacy manifests yield a
    /// synthesized single entry carrying the outer manifest's version,
    /// size, and digest (slot 0 by convention: the only bootable slot a
    /// single-payload device has).
    #[must_use]
    pub fn component_set(&self) -> Vec<ComponentEntry> {
        match &self.components {
            Some(table) => table.entries().to_vec(),
            None => alloc::vec![ComponentEntry {
                component_id: self.manifest.app_id,
                version: self.manifest.version,
                size: self.manifest.size,
                digest: self.manifest.digest,
                slot: 0,
            }],
        }
    }

    /// Serializes: legacy manifest bytes, then the table when present.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            MANIFEST_LEN + self.components.as_ref().map_or(0, ComponentTable::wire_len),
        );
        out.extend_from_slice(&self.manifest.to_bytes());
        if let Some(table) = &self.components {
            out.extend_from_slice(&table.to_bytes());
        }
        out
    }

    /// Parses manifest-then-optional-table and runs [`Self::validate`].
    /// Exactly [`MANIFEST_LEN`] bytes decode as a legacy manifest.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ManifestError> {
        let manifest = Manifest::from_bytes(bytes)?;
        let components = if bytes.len() > MANIFEST_LEN {
            Some(ComponentTable::from_bytes(&bytes[MANIFEST_LEN..])?)
        } else {
            None
        };
        let multi = Self {
            manifest,
            components,
        };
        multi.validate()?;
        Ok(multi)
    }

    /// Vendor-signed region: the legacy core fields, extended by the
    /// serialized table when present. Byte-identical to
    /// [`Manifest::vendor_signed_bytes`] for legacy manifests.
    #[must_use]
    pub fn vendor_signed_bytes(&self) -> Vec<u8> {
        let mut out = self.manifest.vendor_signed_bytes();
        if let Some(table) = &self.components {
            out.extend_from_slice(&table.to_bytes());
        }
        out
    }

    /// Server-signed region: the full manifest, extended by the serialized
    /// table when present. Byte-identical to
    /// [`Manifest::server_signed_bytes`] for legacy manifests.
    #[must_use]
    pub fn server_signed_bytes(&self) -> Vec<u8> {
        let mut out = self.manifest.server_signed_bytes();
        if let Some(table) = &self.components {
            out.extend_from_slice(&table.to_bytes());
        }
        out
    }
}

/// A multi-payload manifest plus its two signatures.
///
/// Wire layout keeps the table *after* both signatures —
/// `manifest ‖ vendor sig ‖ server sig ‖ [table]` — so the first
/// [`SIGNED_MANIFEST_LEN`] bytes of any value are a decodable legacy
/// [`SignedManifest`], and a legacy value (no table) round-trips through
/// this type without a single byte changing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedMultiManifest {
    /// The signed metadata, component table included.
    pub multi: MultiManifest,
    /// Vendor signature over [`MultiManifest::vendor_signed_bytes`].
    pub vendor_signature: Signature,
    /// Server signature over [`MultiManifest::server_signed_bytes`].
    pub server_signature: Signature,
}

impl SignedMultiManifest {
    /// Total serialized length.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        SIGNED_MANIFEST_LEN
            + self
                .multi
                .components
                .as_ref()
                .map_or(0, ComponentTable::wire_len)
    }

    /// Serializes manifest, both signatures, then the table when present.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.multi.manifest.to_bytes());
        out.extend_from_slice(&self.vendor_signature.to_bytes());
        out.extend_from_slice(&self.server_signature.to_bytes());
        if let Some(table) = &self.multi.components {
            out.extend_from_slice(&table.to_bytes());
        }
        out
    }

    /// Parses and validates. Exactly [`SIGNED_MANIFEST_LEN`] bytes decode
    /// as a legacy signed manifest with no table.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ManifestError> {
        let legacy = SignedManifest::from_bytes(bytes)?;
        let components = if bytes.len() > SIGNED_MANIFEST_LEN {
            Some(ComponentTable::from_bytes(&bytes[SIGNED_MANIFEST_LEN..])?)
        } else {
            None
        };
        let multi = MultiManifest {
            manifest: legacy.manifest,
            components,
        };
        multi.validate()?;
        Ok(Self {
            multi,
            vendor_signature: legacy.vendor_signature,
            server_signature: legacy.server_signature,
        })
    }

    /// The legacy view: manifest plus signatures, table dropped. Only
    /// meaningful for values without a table (where it is the identity on
    /// wire bytes); with a table the signatures cover more than the legacy
    /// region and will not verify against legacy signed bytes.
    #[must_use]
    pub fn legacy_view(&self) -> SignedManifest {
        SignedManifest {
            manifest: self.multi.manifest,
            vendor_signature: self.vendor_signature,
            server_signature: self.server_signature,
        }
    }

    /// Verifies both signatures over the table-extended regions.
    pub fn verify_with_keys(
        &self,
        vendor_key: &VerifyingKey,
        server_key: &VerifyingKey,
    ) -> Result<(), upkit_crypto::EcdsaError> {
        vendor_key.verify_prehashed(
            &sha256(&self.multi.vendor_signed_bytes()),
            &self.vendor_signature,
        )?;
        server_key.verify_prehashed(
            &sha256(&self.multi.server_signed_bytes()),
            &self.server_signature,
        )
    }
}

/// Signs the vendor-covered region of a multi-payload manifest.
#[must_use]
pub fn vendor_sign_multi(multi: &MultiManifest, vendor_key: &SigningKey) -> Signature {
    vendor_key.sign_prehashed(&sha256(&multi.vendor_signed_bytes()))
}

/// Signs the full multi-payload manifest as the update server.
#[must_use]
pub fn server_sign_multi(multi: &MultiManifest, server_key: &SigningKey) -> Signature {
    server_key.sign_prehashed(&sha256(&multi.server_signed_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{server_sign, vendor_sign};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_manifest() -> Manifest {
        Manifest {
            device_id: 0xDEAD_BEEF,
            nonce: 0x1234_5678,
            old_version: Version(0),
            version: Version(2),
            size: 100_000,
            payload_size: 100_000,
            digest: sha256(b"firmware contents"),
            link_offset: 0x0800_0000,
            app_id: 0xCAFE_0001,
        }
    }

    fn entry(id: u32, slot: u8, size: u32) -> ComponentEntry {
        ComponentEntry {
            component_id: id,
            version: Version(2),
            size,
            digest: sha256(&id.to_le_bytes()),
            slot,
        }
    }

    fn sample_multi() -> MultiManifest {
        let table = ComponentTable::new(alloc::vec![
            entry(1, 0, 4000),
            entry(2, 2, 2500),
            entry(3, 4, 1500),
        ])
        .unwrap();
        let mut manifest = sample_manifest();
        manifest.size = 8000;
        manifest.payload_size = 8000;
        MultiManifest {
            manifest,
            components: Some(table),
        }
    }

    #[test]
    fn multi_manifest_round_trip() {
        let multi = sample_multi();
        assert_eq!(MultiManifest::from_bytes(&multi.to_bytes()).unwrap(), multi);
    }

    #[test]
    fn legacy_wire_bytes_are_identical() {
        // The backward-compat pin: a table-less MultiManifest serializes to
        // exactly the legacy Manifest bytes, and the signed form to exactly
        // the legacy SignedManifest bytes — same signatures, same regions.
        let mut rng = StdRng::seed_from_u64(61);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let manifest = sample_manifest();
        let multi = MultiManifest::legacy(manifest);
        assert_eq!(multi.to_bytes(), manifest.to_bytes().to_vec());
        assert_eq!(multi.vendor_signed_bytes(), manifest.vendor_signed_bytes());
        assert_eq!(multi.server_signed_bytes(), manifest.server_signed_bytes());

        let signed_legacy = SignedManifest {
            manifest,
            vendor_signature: vendor_sign(&manifest, &vendor),
            server_signature: server_sign(&manifest, &server),
        };
        let signed_multi = SignedMultiManifest {
            multi: multi.clone(),
            vendor_signature: vendor_sign_multi(&multi, &vendor),
            server_signature: server_sign_multi(&multi, &server),
        };
        assert_eq!(signed_multi.to_bytes(), signed_legacy.to_bytes().to_vec());
        assert_eq!(signed_multi.legacy_view(), signed_legacy);

        // And the legacy bytes parse back into a 1-component set.
        let parsed = SignedMultiManifest::from_bytes(&signed_legacy.to_bytes()).unwrap();
        assert!(parsed.multi.components.is_none());
        let set = parsed.multi.component_set();
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].version, manifest.version);
        assert_eq!(set[0].digest, manifest.digest);
        assert_eq!(set[0].size, manifest.size);
    }

    #[test]
    fn signed_multi_round_trip_and_verify() {
        let mut rng = StdRng::seed_from_u64(62);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let multi = sample_multi();
        let signed = SignedMultiManifest {
            vendor_signature: vendor_sign_multi(&multi, &vendor),
            server_signature: server_sign_multi(&multi, &server),
            multi,
        };
        let parsed = SignedMultiManifest::from_bytes(&signed.to_bytes()).unwrap();
        assert_eq!(parsed, signed);
        parsed
            .verify_with_keys(&vendor.verifying_key(), &server.verifying_key())
            .unwrap();
    }

    #[test]
    fn table_tampering_defeats_both_signatures() {
        let mut rng = StdRng::seed_from_u64(63);
        let vendor = SigningKey::generate(&mut rng);
        let server = SigningKey::generate(&mut rng);
        let multi = sample_multi();
        let signed = SignedMultiManifest {
            vendor_signature: vendor_sign_multi(&multi, &vendor),
            server_signature: server_sign_multi(&multi, &server),
            multi,
        };
        let mut bytes = signed.to_bytes();
        // Flip a bit in the first component's digest, keeping the outer
        // manifest (and its digest field) untouched.
        let at = SIGNED_MANIFEST_LEN + 6 + 10;
        bytes[at] ^= 0x01;
        let parsed = SignedMultiManifest::from_bytes(&bytes).unwrap();
        assert!(parsed
            .verify_with_keys(&vendor.verifying_key(), &server.verifying_key())
            .is_err());
    }

    #[test]
    fn rejects_structural_attacks() {
        // Count bomb: a huge declared count is rejected before allocation.
        let multi = sample_multi();
        let mut bytes = multi.to_bytes();
        bytes[MANIFEST_LEN + 4..MANIFEST_LEN + 6].copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(
            MultiManifest::from_bytes(&bytes),
            Err(ManifestError::ComponentCountOutOfRange)
        );

        // Zero count.
        let mut bytes = multi.to_bytes();
        bytes[MANIFEST_LEN + 4..MANIFEST_LEN + 6].copy_from_slice(&0u16.to_le_bytes());
        assert_eq!(
            MultiManifest::from_bytes(&bytes),
            Err(ManifestError::ComponentCountOutOfRange)
        );

        // Truncated table: drop the last entry's final byte.
        let mut bytes = multi.to_bytes();
        bytes.pop();
        assert_eq!(
            MultiManifest::from_bytes(&bytes),
            Err(ManifestError::Truncated)
        );

        // Bad magic.
        let mut bytes = multi.to_bytes();
        bytes[MANIFEST_LEN] = b'X';
        assert_eq!(
            MultiManifest::from_bytes(&bytes),
            Err(ManifestError::BadComponentTable)
        );

        // Duplicate slots.
        assert_eq!(
            ComponentTable::new(alloc::vec![entry(1, 0, 100), entry(2, 0, 100)]),
            Err(ManifestError::DuplicateComponentSlot)
        );
        // Duplicate component IDs.
        assert_eq!(
            ComponentTable::new(alloc::vec![entry(1, 0, 100), entry(1, 2, 100)]),
            Err(ManifestError::DuplicateComponentSlot)
        );
    }

    #[test]
    fn set_digest_tracks_every_field_and_order() {
        let a = ComponentTable::new(alloc::vec![entry(1, 0, 100), entry(2, 2, 100)]).unwrap();
        let b = ComponentTable::new(alloc::vec![entry(2, 2, 100), entry(1, 0, 100)]).unwrap();
        assert_ne!(a.set_digest(), b.set_digest(), "order matters");
        let mut bumped = a.entries().to_vec();
        bumped[0].version = Version(3);
        let c = ComponentTable::new(bumped).unwrap();
        assert_ne!(a.set_digest(), c.set_digest(), "version matters");
    }

    proptest! {
        #[test]
        fn multi_encoding_round_trips(
            seed in 0u64..1000,
            count in 1usize..=MAX_COMPONENTS,
        ) {
            let mut entries = Vec::with_capacity(count);
            let mut total: u64 = 0;
            for i in 0..count {
                let size = 512 + ((seed as u32).wrapping_mul(31).wrapping_add(i as u32 * 97) % 9000);
                total += u64::from(size);
                entries.push(ComponentEntry {
                    component_id: 0x10 + i as u32,
                    version: Version(2 + (seed % 7) as u16),
                    size,
                    digest: sha256(&[i as u8, seed as u8]),
                    slot: (i * 2) as u8,
                });
            }
            let table = ComponentTable::new(entries).unwrap();
            let mut manifest = sample_manifest();
            manifest.size = u32::try_from(total).unwrap();
            manifest.payload_size = manifest.size;
            let multi = MultiManifest { manifest, components: Some(table) };
            let bytes = multi.to_bytes();
            prop_assert_eq!(MultiManifest::from_bytes(&bytes).unwrap(), multi);
        }

        #[test]
        fn rejects_summed_size_disagreement(
            declared in 0u32..100_000,
            skew in 1u32..50_000,
        ) {
            // Two components whose sizes sum to declared + skew must be
            // rejected against a manifest declaring `declared` — including
            // when the true sum exceeds u32 range entirely.
            let half = declared / 2;
            let table = ComponentTable::new(alloc::vec![
                entry(1, 0, half),
                entry(2, 2, declared - half + skew),
            ]).unwrap();
            let mut manifest = sample_manifest();
            manifest.size = declared;
            let multi = MultiManifest { manifest, components: Some(table) };
            prop_assert_eq!(multi.validate(), Err(ManifestError::ComponentSizeMismatch));
            prop_assert_eq!(
                MultiManifest::from_bytes(&multi.to_bytes()),
                Err(ManifestError::ComponentSizeMismatch)
            );

            // u64 check: sizes summing past 2^32 cannot alias a small total.
            let table = ComponentTable::new(alloc::vec![
                entry(1, 0, u32::MAX),
                entry(2, 2, declared.wrapping_add(1)),
            ]).unwrap();
            let mut manifest = sample_manifest();
            manifest.size = declared;
            let multi = MultiManifest { manifest, components: Some(table) };
            prop_assert_eq!(multi.validate(), Err(ManifestError::ComponentSizeMismatch));
        }
    }
}
