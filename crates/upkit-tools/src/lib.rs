//! Library behind the `upkit-tools` command line: the vendor/update-server
//! operations an UpKit deployment runs off-device.
//!
//! The binary is a thin argument parser over these functions so everything
//! is unit-testable:
//!
//! * [`keygen`] — generate a P-256 key pair (hex files).
//! * [`make_release`] — vendor-sign a firmware binary into a release file.
//! * [`prepare_update`] — answer a device token with a double-signed
//!   update image, optionally differential.
//! * [`inspect_image`] — human-readable dump of an update image.
//! * [`verify_image`] — check both signatures and the firmware digest of a
//!   full update image.
//! * [`suit_export`] — emit the SUIT-style CBOR envelope of an image's
//!   manifest.
//!
//! File formats: keys are lowercase hex (32-byte scalar / 65-byte SEC1
//! public). A *release file* is `manifest(60) ‖ vendor_sig(64) ‖ firmware`
//! — the request-independent output of the generation phase. An *update
//! image* is the on-wire `SignedManifest ‖ payload` from `upkit-manifest`.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use upkit_compress::decompress;
use upkit_core::generation::{Release, UpdateServer, VendorServer};
use upkit_crypto::ecdsa::{Signature, SigningKey, VerifyingKey};
use upkit_crypto::sha256::sha256;
pub use upkit_delta::PatchFormat;
use upkit_delta::{patch, patch_framed};
use upkit_manifest::{DeviceToken, Manifest, SignedManifest, UpdateImage, Version, MANIFEST_LEN};

/// Length of a release file's fixed header (manifest + vendor signature).
pub const RELEASE_HEADER_LEN: usize = MANIFEST_LEN + 64;

/// Tool errors, with operator-facing messages.
#[derive(Debug)]
#[non_exhaustive]
pub enum ToolError {
    /// Filesystem failure (path included in the message).
    Io(String),
    /// A key or signature file held invalid material.
    BadKeyMaterial(String),
    /// An input file was not the expected format.
    BadFormat(String),
    /// Verification failed.
    VerifyFailed(String),
}

impl core::fmt::Display for ToolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(m) => write!(f, "io error: {m}"),
            Self::BadKeyMaterial(m) => write!(f, "bad key material: {m}"),
            Self::BadFormat(m) => write!(f, "bad format: {m}"),
            Self::VerifyFailed(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl std::error::Error for ToolError {}

fn read(path: &Path) -> Result<Vec<u8>, ToolError> {
    fs::read(path).map_err(|e| ToolError::Io(format!("{}: {e}", path.display())))
}

fn write(path: &Path, data: &[u8]) -> Result<(), ToolError> {
    fs::write(path, data).map_err(|e| ToolError::Io(format!("{}: {e}", path.display())))
}

/// Encodes bytes as lowercase hex.
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decodes lowercase/uppercase hex (whitespace tolerated at the ends).
pub fn from_hex(text: &str) -> Result<Vec<u8>, ToolError> {
    let text = text.trim();
    if !text.len().is_multiple_of(2) {
        return Err(ToolError::BadFormat("odd-length hex string".into()));
    }
    (0..text.len() / 2)
        .map(|i| {
            u8::from_str_radix(&text[i * 2..i * 2 + 2], 16)
                .map_err(|_| ToolError::BadFormat("non-hex character".into()))
        })
        .collect()
}

fn load_signing_key(path: &Path) -> Result<SigningKey, ToolError> {
    let hex = String::from_utf8(read(path)?)
        .map_err(|_| ToolError::BadKeyMaterial("key file is not text".into()))?;
    let bytes = from_hex(&hex)?;
    let array: [u8; 32] = bytes
        .try_into()
        .map_err(|_| ToolError::BadKeyMaterial("private key must be 32 bytes".into()))?;
    SigningKey::from_bytes(&array)
        .map_err(|e| ToolError::BadKeyMaterial(format!("invalid scalar: {e}")))
}

fn load_verifying_key(path: &Path) -> Result<VerifyingKey, ToolError> {
    let hex = String::from_utf8(read(path)?)
        .map_err(|_| ToolError::BadKeyMaterial("key file is not text".into()))?;
    let bytes = from_hex(&hex)?;
    VerifyingKey::from_sec1_bytes(&bytes)
        .map_err(|e| ToolError::BadKeyMaterial(format!("invalid public key: {e}")))
}

/// Generates a key pair, writing `<prefix>.key` (private scalar, hex) and
/// `<prefix>.pub` (SEC1 uncompressed, hex). Returns the public key hex.
pub fn keygen(prefix: &Path) -> Result<String, ToolError> {
    let key = SigningKey::generate(&mut rand::rng());
    let public_hex = to_hex(&key.verifying_key().to_sec1_bytes());
    write(
        &prefix.with_extension("key"),
        to_hex(&key.to_bytes()).as_bytes(),
    )?;
    write(&prefix.with_extension("pub"), public_hex.as_bytes())?;
    Ok(public_hex)
}

/// Builds a release file: vendor-signed manifest core plus the firmware.
pub fn make_release(
    firmware_path: &Path,
    version: u16,
    link_offset: u32,
    app_id: u32,
    vendor_key_path: &Path,
    out_path: &Path,
) -> Result<(), ToolError> {
    let firmware = read(firmware_path)?;
    let vendor = VendorServer::new(load_signing_key(vendor_key_path)?);
    let release = vendor.release(firmware, Version(version), link_offset, app_id);

    let manifest = release_manifest(&release);
    let mut out = Vec::with_capacity(RELEASE_HEADER_LEN + release.firmware.len());
    out.extend_from_slice(&manifest.to_bytes());
    out.extend_from_slice(&release.vendor_signature.to_bytes());
    out.extend_from_slice(&release.firmware);
    write(out_path, &out)
}

fn release_manifest(release: &Release) -> Manifest {
    Manifest {
        device_id: 0,
        nonce: 0,
        old_version: Version(0),
        version: release.version,
        size: release.firmware.len() as u32,
        payload_size: release.firmware.len() as u32,
        digest: release.digest,
        link_offset: release.link_offset,
        app_id: release.app_id,
    }
}

fn load_release(path: &Path) -> Result<Release, ToolError> {
    let bytes = read(path)?;
    if bytes.len() < RELEASE_HEADER_LEN {
        return Err(ToolError::BadFormat("release file too short".into()));
    }
    let manifest = Manifest::from_bytes(&bytes[..MANIFEST_LEN])
        .map_err(|e| ToolError::BadFormat(format!("release manifest: {e}")))?;
    let vendor_signature = Signature::from_bytes(&bytes[MANIFEST_LEN..RELEASE_HEADER_LEN])
        .map_err(|e| ToolError::BadFormat(format!("vendor signature: {e}")))?;
    let firmware = bytes[RELEASE_HEADER_LEN..].to_vec();
    if firmware.len() as u32 != manifest.size {
        return Err(ToolError::BadFormat(
            "firmware length disagrees with release manifest".into(),
        ));
    }
    Ok(Release {
        version: manifest.version,
        digest: manifest.digest,
        link_offset: manifest.link_offset,
        app_id: manifest.app_id,
        vendor_signature,
        firmware,
    })
}

/// Prepares a double-signed update image for one device token, serving a
/// differential payload when `base_release` (the firmware the device
/// currently runs) is supplied. `format` selects the patch container for
/// differential payloads; devices sniff it from the payload magic.
#[allow(clippy::too_many_arguments)]
pub fn prepare_update(
    release_path: &Path,
    server_key_path: &Path,
    device_id: u32,
    nonce: u32,
    base_release_path: Option<&Path>,
    format: PatchFormat,
    out_path: &Path,
) -> Result<&'static str, ToolError> {
    let mut server = UpdateServer::new(load_signing_key(server_key_path)?);
    server.set_patch_format(format);
    let release = load_release(release_path)?;
    let latest_version = release.version;
    server.publish(release);

    let current_version = match base_release_path {
        Some(base) => {
            let base_release = load_release(base)?;
            let version = base_release.version;
            server.publish(base_release);
            version
        }
        None => Version(0),
    };

    let token = DeviceToken {
        device_id,
        nonce,
        current_version,
    };
    let prepared = server.prepare_update(&token).ok_or_else(|| {
        ToolError::BadFormat(format!(
            "device already runs {current_version}, latest is {latest_version}"
        ))
    })?;
    write(out_path, &prepared.image.to_bytes())?;
    Ok(match prepared.kind {
        upkit_core::generation::ServedKind::Full => "full",
        upkit_core::generation::ServedKind::Differential { .. } => "differential",
    })
}

/// Renders an update image's manifest as a human-readable report.
pub fn inspect_image(image_path: &Path) -> Result<String, ToolError> {
    let bytes = read(image_path)?;
    let image = UpdateImage::from_bytes(&bytes)
        .map_err(|e| ToolError::BadFormat(format!("update image: {e}")))?;
    let m = image.signed_manifest.manifest;
    let mut out = String::new();
    let _ = writeln!(out, "update image: {} bytes", bytes.len());
    let _ = writeln!(out, "  device id:    {:#010x}", m.device_id);
    let _ = writeln!(out, "  nonce:        {:#010x}", m.nonce);
    let _ = writeln!(
        out,
        "  version:      {} (old: {})",
        m.version, m.old_version
    );
    let _ = writeln!(
        out,
        "  kind:         {}",
        if m.is_differential() {
            "differential"
        } else {
            "full image"
        }
    );
    let _ = writeln!(out, "  firmware:     {} bytes", m.size);
    let _ = writeln!(out, "  payload:      {} bytes", m.payload_size);
    let _ = writeln!(out, "  digest:       {}", to_hex(&m.digest));
    let _ = writeln!(out, "  link offset:  {:#010x}", m.link_offset);
    let _ = writeln!(out, "  app id:       {:#010x}", m.app_id);
    Ok(out)
}

/// Verifies an update image end to end: both signatures and — for full
/// images — the payload digest. Differential payloads are verified against
/// the base firmware when one is supplied.
pub fn verify_image(
    image_path: &Path,
    vendor_pub_path: &Path,
    server_pub_path: &Path,
    base_firmware_path: Option<&Path>,
) -> Result<String, ToolError> {
    let bytes = read(image_path)?;
    let image = UpdateImage::from_bytes(&bytes)
        .map_err(|e| ToolError::BadFormat(format!("update image: {e}")))?;
    let vendor = load_verifying_key(vendor_pub_path)?;
    let server = load_verifying_key(server_pub_path)?;

    image
        .signed_manifest
        .verify_with_keys(&vendor, &server)
        .map_err(|e| ToolError::VerifyFailed(format!("signature check: {e}")))?;

    let m = image.signed_manifest.manifest;
    let firmware = if m.is_differential() {
        let Some(base_path) = base_firmware_path else {
            return Ok(
                "signatures OK (differential payload: supply --base to check the digest)".into(),
            );
        };
        let base = read(base_path)?;
        // Same container sniff the device pipeline performs: a framed
        // payload is applied directly, anything else is the legacy
        // LZSS-compressed bsdiff stream.
        if PatchFormat::detect(&image.payload) == Some(PatchFormat::Framed) {
            patch_framed(&base, &image.payload)
                .map_err(|e| ToolError::VerifyFailed(format!("framed patch: {e}")))?
        } else {
            let raw_patch = decompress(&image.payload)
                .map_err(|e| ToolError::VerifyFailed(format!("payload decompression: {e}")))?;
            patch(&base, &raw_patch)
                .map_err(|e| ToolError::VerifyFailed(format!("patch application: {e}")))?
        }
    } else {
        image.payload.clone()
    };
    if sha256(&firmware) != m.digest {
        return Err(ToolError::VerifyFailed("firmware digest mismatch".into()));
    }
    Ok("signatures OK, firmware digest OK".into())
}

/// Writes the SUIT-style CBOR envelope of an image's manifest.
pub fn suit_export(image_path: &Path, out_path: &Path) -> Result<usize, ToolError> {
    let bytes = read(image_path)?;
    let signed = SignedManifest::from_bytes(&bytes)
        .map_err(|e| ToolError::BadFormat(format!("update image: {e}")))?;
    let envelope = upkit_manifest::suit::to_suit_envelope(&signed.manifest);
    write(out_path, &envelope)?;
    Ok(envelope.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("upkit-tools-test-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&p);
            fs::create_dir_all(&p).unwrap();
            Self(p)
        }
        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn hex_round_trip() {
        assert_eq!(
            from_hex(&to_hex(&[0, 1, 0xAB, 0xFF])).unwrap(),
            vec![0, 1, 0xAB, 0xFF]
        );
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
        assert_eq!(from_hex("  0a0b \n").unwrap(), vec![0x0A, 0x0B]);
    }

    #[test]
    fn keygen_produces_loadable_pair() {
        let dir = TempDir::new("keygen");
        let public_hex = keygen(&dir.path("vendor")).unwrap();
        let key = load_signing_key(&dir.path("vendor.key")).unwrap();
        let public = load_verifying_key(&dir.path("vendor.pub")).unwrap();
        assert_eq!(to_hex(&key.verifying_key().to_sec1_bytes()), public_hex);
        assert_eq!(to_hex(&public.to_sec1_bytes()), public_hex);
    }

    #[test]
    fn full_tool_pipeline_release_prepare_verify() {
        let dir = TempDir::new("pipeline");
        keygen(&dir.path("vendor")).unwrap();
        keygen(&dir.path("server")).unwrap();
        fs::write(dir.path("fw.bin"), vec![0x42u8; 5000]).unwrap();

        make_release(
            &dir.path("fw.bin"),
            2,
            0x100,
            0xA,
            &dir.path("vendor.key"),
            &dir.path("release.bin"),
        )
        .unwrap();

        let kind = prepare_update(
            &dir.path("release.bin"),
            &dir.path("server.key"),
            0xD1,
            0x42,
            None,
            PatchFormat::Raw,
            &dir.path("update.img"),
        )
        .unwrap();
        assert_eq!(kind, "full");

        let report = verify_image(
            &dir.path("update.img"),
            &dir.path("vendor.pub"),
            &dir.path("server.pub"),
            None,
        )
        .unwrap();
        assert!(report.contains("digest OK"), "{report}");

        let dump = inspect_image(&dir.path("update.img")).unwrap();
        assert!(dump.contains("device id:    0x000000d1"), "{dump}");
        assert!(dump.contains("full image"), "{dump}");
    }

    #[test]
    fn differential_pipeline_and_base_verification() {
        let dir = TempDir::new("diff");
        keygen(&dir.path("vendor")).unwrap();
        keygen(&dir.path("server")).unwrap();
        let v1: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let mut v2 = v1.clone();
        v2[100..140].fill(0x99);
        fs::write(dir.path("v1.bin"), &v1).unwrap();
        fs::write(dir.path("v2.bin"), &v2).unwrap();

        make_release(
            &dir.path("v1.bin"),
            1,
            0,
            0xA,
            &dir.path("vendor.key"),
            &dir.path("r1.bin"),
        )
        .unwrap();
        make_release(
            &dir.path("v2.bin"),
            2,
            0,
            0xA,
            &dir.path("vendor.key"),
            &dir.path("r2.bin"),
        )
        .unwrap();

        let kind = prepare_update(
            &dir.path("r2.bin"),
            &dir.path("server.key"),
            0xD2,
            7,
            Some(&dir.path("r1.bin")),
            PatchFormat::Raw,
            &dir.path("update.img"),
        )
        .unwrap();
        assert_eq!(kind, "differential");

        // Without the base only the signatures can be checked…
        let partial = verify_image(
            &dir.path("update.img"),
            &dir.path("vendor.pub"),
            &dir.path("server.pub"),
            None,
        )
        .unwrap();
        assert!(partial.contains("supply --base"), "{partial}");
        // …with it, the digest is reconstructed and checked.
        let full = verify_image(
            &dir.path("update.img"),
            &dir.path("vendor.pub"),
            &dir.path("server.pub"),
            Some(&dir.path("v1.bin")),
        )
        .unwrap();
        assert!(full.contains("digest OK"), "{full}");

        // The framed container runs the same pipeline: prepared with
        // --format framed, sniffed and re-applied by verify.
        let kind = prepare_update(
            &dir.path("r2.bin"),
            &dir.path("server.key"),
            0xD2,
            8,
            Some(&dir.path("r1.bin")),
            PatchFormat::Framed,
            &dir.path("framed.img"),
        )
        .unwrap();
        assert_eq!(kind, "differential");
        let framed_payload = read(&dir.path("framed.img")).unwrap();
        assert!(
            framed_payload
                .windows(4)
                .any(|w| w == upkit_delta::FRAMED_MAGIC),
            "payload should carry the framed magic"
        );
        let framed = verify_image(
            &dir.path("framed.img"),
            &dir.path("vendor.pub"),
            &dir.path("server.pub"),
            Some(&dir.path("v1.bin")),
        )
        .unwrap();
        assert!(framed.contains("digest OK"), "{framed}");
    }

    #[test]
    fn verify_rejects_wrong_keys_and_tampering() {
        let dir = TempDir::new("reject");
        keygen(&dir.path("vendor")).unwrap();
        keygen(&dir.path("server")).unwrap();
        keygen(&dir.path("other")).unwrap();
        fs::write(dir.path("fw.bin"), vec![1u8; 1000]).unwrap();
        make_release(
            &dir.path("fw.bin"),
            2,
            0,
            1,
            &dir.path("vendor.key"),
            &dir.path("r.bin"),
        )
        .unwrap();
        prepare_update(
            &dir.path("r.bin"),
            &dir.path("server.key"),
            1,
            1,
            None,
            PatchFormat::Raw,
            &dir.path("u.img"),
        )
        .unwrap();

        assert!(matches!(
            verify_image(
                &dir.path("u.img"),
                &dir.path("other.pub"),
                &dir.path("server.pub"),
                None
            ),
            Err(ToolError::VerifyFailed(_))
        ));

        let mut tampered = fs::read(dir.path("u.img")).unwrap();
        let len = tampered.len();
        tampered[len - 1] ^= 1;
        fs::write(dir.path("t.img"), &tampered).unwrap();
        assert!(matches!(
            verify_image(
                &dir.path("t.img"),
                &dir.path("vendor.pub"),
                &dir.path("server.pub"),
                None
            ),
            Err(ToolError::VerifyFailed(_))
        ));
    }

    #[test]
    fn suit_export_round_trips_through_the_envelope() {
        let dir = TempDir::new("suit");
        keygen(&dir.path("vendor")).unwrap();
        keygen(&dir.path("server")).unwrap();
        fs::write(dir.path("fw.bin"), vec![3u8; 256]).unwrap();
        make_release(
            &dir.path("fw.bin"),
            4,
            0x20,
            9,
            &dir.path("vendor.key"),
            &dir.path("r.bin"),
        )
        .unwrap();
        prepare_update(
            &dir.path("r.bin"),
            &dir.path("server.key"),
            5,
            6,
            None,
            PatchFormat::Raw,
            &dir.path("u.img"),
        )
        .unwrap();

        let size = suit_export(&dir.path("u.img"), &dir.path("m.suit")).unwrap();
        assert!(size > 0);
        let envelope = fs::read(dir.path("m.suit")).unwrap();
        let manifest = upkit_manifest::suit::from_suit_envelope(&envelope).unwrap();
        assert_eq!(manifest.version, Version(4));
        assert_eq!(manifest.device_id, 5);
    }

    #[test]
    fn release_loader_rejects_corrupt_files() {
        let dir = TempDir::new("corrupt");
        fs::write(dir.path("short.bin"), vec![0u8; 10]).unwrap();
        assert!(matches!(
            load_release(&dir.path("short.bin")),
            Err(ToolError::BadFormat(_))
        ));
        assert!(matches!(
            load_release(&dir.path("missing.bin")),
            Err(ToolError::Io(_))
        ));
    }
}
