//! `upkit-tools`: the operator command line for the UpKit reproduction.
//!
//! ```text
//! upkit-tools keygen  --prefix vendor
//! upkit-tools release --firmware fw.bin --version 2 --link-offset 0x100 \
//!                     --app-id 0xA --vendor-key vendor.key --out release.bin
//! upkit-tools prepare --release release.bin --server-key server.key \
//!                     --device-id 0xD1 --nonce 0x42 [--base old-release.bin] \
//!                     --out update.img
//! upkit-tools inspect --image update.img
//! upkit-tools verify  --image update.img --vendor-pub vendor.pub \
//!                     --server-pub server.pub [--base old-fw.bin]
//! upkit-tools suit-export --image update.img --out manifest.suit
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use upkit_tools::{
    inspect_image, keygen, make_release, prepare_update, suit_export, verify_image, ToolError,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  upkit-tools keygen  --prefix <path>
  upkit-tools release --firmware <bin> --version <u16> --link-offset <u32> \\
                      --app-id <u32> --vendor-key <key> --out <release>
  upkit-tools prepare --release <release> --server-key <key> \\
                      --device-id <u32> --nonce <u32> [--base <release>] \\
                      [--format raw|framed] --out <img>
  upkit-tools inspect --image <img>
  upkit-tools verify  --image <img> --vendor-pub <pub> --server-pub <pub> [--base <fw>]
  upkit-tools suit-export --image <img> --out <cbor>";

fn run(args: &[String]) -> Result<String, String> {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    let opts = parse_options(rest)?;
    match command.as_str() {
        "keygen" => {
            let prefix = opts.path("prefix")?;
            let public = keygen(&prefix).map_err(stringify)?;
            Ok(format!(
                "wrote {}.key and {}.pub\npublic key: {public}",
                prefix.display(),
                prefix.display()
            ))
        }
        "release" => {
            make_release(
                &opts.path("firmware")?,
                opts.number("version")? as u16,
                opts.number("link-offset")? as u32,
                opts.number("app-id")? as u32,
                &opts.path("vendor-key")?,
                &opts.path("out")?,
            )
            .map_err(stringify)?;
            Ok(format!("wrote release to {}", opts.path("out")?.display()))
        }
        "prepare" => {
            let base = opts.optional_path("base");
            let format = opts.patch_format()?;
            let kind = prepare_update(
                &opts.path("release")?,
                &opts.path("server-key")?,
                opts.number("device-id")? as u32,
                opts.number("nonce")? as u32,
                base.as_deref(),
                format,
                &opts.path("out")?,
            )
            .map_err(stringify)?;
            Ok(format!(
                "wrote {kind} update image to {}",
                opts.path("out")?.display()
            ))
        }
        "inspect" => inspect_image(&opts.path("image")?).map_err(stringify),
        "verify" => {
            let base = opts.optional_path("base");
            verify_image(
                &opts.path("image")?,
                &opts.path("vendor-pub")?,
                &opts.path("server-pub")?,
                base.as_deref(),
            )
            .map_err(stringify)
        }
        "suit-export" => {
            let size = suit_export(&opts.path("image")?, &opts.path("out")?).map_err(stringify)?;
            Ok(format!(
                "wrote {size}-byte SUIT envelope to {}",
                opts.path("out")?.display()
            ))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn stringify(e: ToolError) -> String {
    e.to_string()
}

struct Options(HashMap<String, String>);

impl Options {
    fn path(&self, name: &str) -> Result<PathBuf, String> {
        self.0
            .get(name)
            .map(PathBuf::from)
            .ok_or_else(|| format!("missing --{name}"))
    }

    fn optional_path(&self, name: &str) -> Option<PathBuf> {
        self.0.get(name).map(PathBuf::from)
    }

    fn number(&self, name: &str) -> Result<u64, String> {
        let raw = self
            .0
            .get(name)
            .ok_or_else(|| format!("missing --{name}"))?;
        parse_number(raw).ok_or_else(|| format!("--{name}: `{raw}` is not a number"))
    }

    fn patch_format(&self) -> Result<upkit_tools::PatchFormat, String> {
        match self.0.get("format").map(String::as_str) {
            None | Some("raw") => Ok(upkit_tools::PatchFormat::Raw),
            Some("framed") => Ok(upkit_tools::PatchFormat::Framed),
            Some(other) => Err(format!("--format: `{other}` is not raw or framed")),
        }
    }
}

fn parse_number(raw: &str) -> Option<u64> {
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut map = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{flag}`"))?;
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        map.insert(name.to_string(), value.to_string());
    }
    Ok(Options(map))
}

// These tests pin the argument grammar and drive the command interface
// end-to-end against temp files.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_numbers() {
        let args: Vec<String> = ["--device-id", "0xD1", "--nonce", "66"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let opts = parse_options(&args).unwrap();
        assert_eq!(opts.number("device-id").unwrap(), 0xD1);
        assert_eq!(opts.number("nonce").unwrap(), 66);
        assert!(opts.number("missing").is_err());
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(parse_options(&["device-id".into()]).is_err());
        assert!(parse_options(&["--flag".into()]).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&["frobnicate".into()]).is_err());
        assert!(run(&[]).is_err());
    }

    fn path_of(p: &std::path::Path) -> String {
        p.display().to_string()
    }

    #[test]
    fn end_to_end_through_the_command_interface() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("upkit-tools-main-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        std::fs::write(dir.join("fw.bin"), vec![7u8; 2000]).unwrap();
        run(&[
            "keygen".into(),
            "--prefix".into(),
            path_of(&dir.join("vendor")),
        ])
        .unwrap();
        run(&[
            "keygen".into(),
            "--prefix".into(),
            path_of(&dir.join("server")),
        ])
        .unwrap();
        run(&[
            "release".into(),
            "--firmware".into(),
            path_of(&dir.join("fw.bin")),
            "--version".into(),
            "2".into(),
            "--link-offset".into(),
            "0x100".into(),
            "--app-id".into(),
            "0xA".into(),
            "--vendor-key".into(),
            path_of(&dir.join("vendor.key")),
            "--out".into(),
            path_of(&dir.join("release.bin")),
        ])
        .unwrap();
        run(&[
            "prepare".into(),
            "--release".into(),
            path_of(&dir.join("release.bin")),
            "--server-key".into(),
            path_of(&dir.join("server.key")),
            "--device-id".into(),
            "0xD1".into(),
            "--nonce".into(),
            "42".into(),
            "--out".into(),
            path_of(&dir.join("update.img")),
        ])
        .unwrap();
        let verdict = run(&[
            "verify".into(),
            "--image".into(),
            path_of(&dir.join("update.img")),
            "--vendor-pub".into(),
            path_of(&dir.join("vendor.pub")),
            "--server-pub".into(),
            path_of(&dir.join("server.pub")),
        ])
        .unwrap();
        assert!(verdict.contains("digest OK"), "{verdict}");
        let dump = run(&[
            "inspect".into(),
            "--image".into(),
            path_of(&dir.join("update.img")),
        ])
        .unwrap();
        assert!(dump.contains("full image"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
