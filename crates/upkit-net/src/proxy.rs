//! Update proxies: passive forwarders and the active caching gateway.
//!
//! In UpKit's architecture the push smartphone and pull border router are
//! passive: each only forwards bytes between update server and device. A
//! compromised proxy can therefore mount denial-of-service or corruption
//! attacks (modeled by [`Tamper`]) but cannot defeat integrity,
//! authenticity, or freshness — the property the integration tests
//! demonstrate.
//!
//! [`CachingProxy`] promotes the gateway into an *active* in-network
//! cache: a bounded, LRU-evicted block store keyed by
//! `(stream digest, block index)`. A cache hit serves a downstream device
//! without touching the upstream link; a miss single-flights the upstream
//! fetch so concurrent downstream sessions share one transfer. The threat
//! model is unchanged — a tampered or poisoned cache corrupts bytes, and
//! [`Tamper`] applies to cache-served responses exactly as it does to
//! forwarded ones, so end-to-end verification on the device remains the
//! only integrity boundary.

use std::collections::HashMap;

use upkit_core::generation::{PreparedUpdate, UpdateServer};
use upkit_crypto::sha256::sha256;
use upkit_manifest::DeviceToken;
use upkit_trace::{Counters, Event, Tracer};

use crate::profiles::LinkProfile;
use crate::session::{SessionStream, StreamResolution};
use crate::tamper::Tamper;

/// The smartphone of the push flow (Fig. 2): fetches the update image from
/// the server on the device's behalf, stores it locally, then forwards it
/// over the local BLE connection.
#[derive(Debug)]
pub struct Smartphone {
    stored: Option<PreparedUpdate>,
    tamper: Tamper,
}

impl Default for Smartphone {
    fn default() -> Self {
        Self::new()
    }
}

impl Smartphone {
    /// An honest smartphone.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stored: None,
            tamper: Tamper::None,
        }
    }

    /// A compromised smartphone applying `tamper` to everything forwarded.
    #[must_use]
    pub fn compromised(tamper: Tamper) -> Self {
        Self {
            stored: None,
            tamper,
        }
    }

    /// Steps 4–7 of Fig. 2: forwards the device token to the update server
    /// and stores the prepared image. Returns `false` when the server has
    /// nothing newer.
    pub fn fetch_update(&mut self, server: &UpdateServer, token: &DeviceToken) -> bool {
        self.stored = server.prepare_update(token);
        self.stored.is_some()
    }

    /// The update stored on the phone, untampered (what an honest phone
    /// holds after the fetch).
    #[must_use]
    pub fn stored(&self) -> Option<&PreparedUpdate> {
        self.stored.as_ref()
    }

    /// The manifest bytes the phone will forward first (step 8), after any
    /// tampering.
    #[must_use]
    pub fn outgoing_manifest(&self) -> Option<Vec<u8>> {
        let image = &self.stored.as_ref()?.image;
        let manifest_bytes = image.signed_manifest.to_bytes().to_vec();
        // Tampering offsets address the whole image stream.
        let whole = self.tampered_image_bytes()?;
        let take = manifest_bytes.len().min(whole.len());
        Some(whole[..take].to_vec())
    }

    /// The payload bytes the phone forwards after the agent's go-ahead
    /// (step 12), after any tampering.
    #[must_use]
    pub fn outgoing_payload(&self) -> Option<Vec<u8>> {
        let manifest_len = upkit_manifest::SIGNED_MANIFEST_LEN;
        let whole = self.tampered_image_bytes()?;
        if whole.len() <= manifest_len {
            return Some(Vec::new());
        }
        Some(whole[manifest_len..].to_vec())
    }

    fn tampered_image_bytes(&self) -> Option<Vec<u8>> {
        let image = &self.stored.as_ref()?.image;
        Some(self.tamper.apply(&image.image_bytes()))
    }
}

/// Extension: serialized form of a prepared update's image.
trait ImageBytes {
    fn image_bytes(&self) -> Vec<u8>;
}

impl ImageBytes for upkit_manifest::UpdateImage {
    fn image_bytes(&self) -> Vec<u8> {
        self.to_bytes()
    }
}

/// The border router of the pull flow: forwards CoAP exchanges between the
/// 6LoWPAN network and the IPv6 update server, optionally tampering.
#[derive(Debug)]
pub struct BorderRouter {
    tamper: Tamper,
}

impl Default for BorderRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl BorderRouter {
    /// An honest border router.
    #[must_use]
    pub fn new() -> Self {
        Self {
            tamper: Tamper::None,
        }
    }

    /// A compromised border router.
    #[must_use]
    pub fn compromised(tamper: Tamper) -> Self {
        Self { tamper }
    }

    /// Forwards a server response toward the device, applying any tamper
    /// to the end-to-end byte stream.
    #[must_use]
    pub fn forward(&self, data: &[u8]) -> Vec<u8> {
        self.tamper.apply(data)
    }
}

/// The upstream content a [`CachingProxy`] can fetch blocks of: one
/// serialized update stream (manifest region ‖ payload region) addressed
/// by the first eight bytes of its SHA-256. Build it once per campaign
/// and share it read-only across proxies.
#[derive(Clone, Debug)]
pub struct CachedOrigin {
    digest: u64,
    manifest_len: usize,
    bytes: Vec<u8>,
}

impl CachedOrigin {
    /// Wraps a resolved stream as a cacheable origin.
    #[must_use]
    pub fn new(stream: &SessionStream) -> Self {
        let mut bytes = Vec::with_capacity(stream.manifest.len() + stream.payload.len());
        bytes.extend_from_slice(&stream.manifest);
        bytes.extend_from_slice(&stream.payload);
        let hash = sha256(&bytes);
        let digest = u64::from_be_bytes(hash[..8].try_into().expect("sha256 is 32 bytes"));
        Self {
            digest,
            manifest_len: stream.manifest.len(),
            bytes,
        }
    }

    /// Cache-key namespace: first 8 bytes (big-endian) of the stream's
    /// SHA-256.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Total serialized length (manifest ‖ payload).
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.bytes.len()
    }

    /// Length of the manifest region.
    #[must_use]
    pub fn manifest_len(&self) -> usize {
        self.manifest_len
    }

    /// Number of `block_size`-sized blocks the stream splits into.
    #[must_use]
    pub fn blocks(&self, block_size: usize) -> u32 {
        self.bytes.len().div_ceil(block_size.max(1)) as u32
    }

    /// The untampered stream as a direct single-hop fetch would deliver
    /// it — the reference the dissemination correctness properties compare
    /// cached serves against.
    #[must_use]
    pub fn direct_stream(&self) -> SessionStream {
        SessionStream {
            manifest: self.bytes[..self.manifest_len].to_vec(),
            payload: self.bytes[self.manifest_len..].to_vec(),
        }
    }

    fn block(&self, index: u32, block_size: usize) -> &[u8] {
        let start = (index as usize) * block_size;
        let end = (start + block_size).min(self.bytes.len());
        &self.bytes[start..end]
    }
}

/// Cumulative cache/upstream accounting of one [`CachingProxy`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Downstream serves the proxy assembled.
    pub serves: u64,
    /// Blocks served straight from the cache.
    pub cache_hits: u64,
    /// Blocks fetched upstream before serving.
    pub cache_misses: u64,
    /// Blocks evicted under LRU capacity pressure.
    pub evictions: u64,
    /// Upstream block fetches issued (equals `cache_misses`).
    pub upstream_fetches: u64,
    /// Bytes moved over the upstream link.
    pub upstream_bytes: u64,
    /// Virtual microseconds the upstream link was busy fetching.
    pub upstream_micros: u64,
    /// Blocks that joined an upstream fetch already in flight instead of
    /// issuing their own.
    pub single_flight_joins: u64,
}

#[derive(Debug)]
struct CacheEntry {
    bytes: Vec<u8>,
    /// LRU clock: monotone per-proxy lookup tick of the last touch.
    tick: u64,
    /// Virtual time the upstream fetch that produced this entry lands;
    /// serves before that join the in-flight fetch and wait for it.
    ready_at: u64,
}

/// An active caching gateway: bounded LRU block cache over one or more
/// upstream origins, with single-flighted upstream fetches serialized on
/// the (shared) backhaul link.
///
/// All time is virtual: the caller passes the current scheduler time to
/// [`CachingProxy::resolve`] and receives the stream together with the
/// wait the downstream session must charge
/// ([`StreamResolution::Deferred`]). Because every mutation is a pure
/// function of the call sequence, a proxy driven by a deterministic event
/// loop is itself deterministic — eviction picks the unique
/// least-recently-used tick, never hash order.
#[derive(Debug)]
pub struct CachingProxy {
    id: u64,
    block_size: usize,
    capacity_blocks: usize,
    upstream: LinkProfile,
    tamper: Tamper,
    entries: HashMap<(u64, u32), CacheEntry>,
    tick: u64,
    busy_until: u64,
    stats: ProxyStats,
    tracer: Tracer,
}

impl CachingProxy {
    /// An honest caching gateway `id`, holding at most `capacity_blocks`
    /// blocks of `block_size` bytes and fetching misses over `upstream`.
    /// `capacity_blocks = 0` disables caching entirely: every serve
    /// refetches every block (the per-device unicast baseline, with the
    /// same upstream accounting).
    #[must_use]
    pub fn new(id: u64, block_size: usize, capacity_blocks: usize, upstream: LinkProfile) -> Self {
        Self {
            id,
            block_size: block_size.max(1),
            capacity_blocks,
            upstream,
            tamper: Tamper::None,
            entries: HashMap::new(),
            tick: 0,
            busy_until: 0,
            stats: ProxyStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// A compromised gateway applying `tamper` to every served stream —
    /// cache hits included, not just freshly forwarded bytes.
    #[must_use]
    pub fn compromised(
        id: u64,
        block_size: usize,
        capacity_blocks: usize,
        upstream: LinkProfile,
        tamper: Tamper,
    ) -> Self {
        Self {
            tamper,
            ..Self::new(id, block_size, capacity_blocks, upstream)
        }
    }

    /// Routes this proxy's counters and events through `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Cache/upstream accounting so far.
    #[must_use]
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// Blocks currently cached.
    #[must_use]
    pub fn cached_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Block granularity of the cache.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Directly corrupts a cached block in place (a poisoned cache entry,
    /// the active-attacker analogue of [`Tamper`] on the forwarding
    /// path). Returns `false` when the block is not cached.
    pub fn poison_block(
        &mut self,
        digest: u64,
        index: u32,
        mutate: impl FnOnce(&mut Vec<u8>),
    ) -> bool {
        match self.entries.get_mut(&(digest, index)) {
            Some(entry) => {
                mutate(&mut entry.bytes);
                true
            }
            None => false,
        }
    }

    /// Assembles `origin`'s stream for one downstream session at virtual
    /// time `now_micros`: cached blocks are served locally, missing ones
    /// are fetched upstream (serialized on the backhaul — concurrent
    /// campaigns queue behind each other), and blocks whose fetch is
    /// still in flight are joined rather than refetched. The returned
    /// [`StreamResolution::Deferred`] carries the wait until the last
    /// needed block lands.
    pub fn resolve(&mut self, origin: &CachedOrigin, now_micros: u64) -> StreamResolution {
        let blocks = origin.blocks(self.block_size);
        let mut assembled = Vec::with_capacity(origin.total_len());
        let mut ready_at = now_micros;
        let (mut hits, mut misses, mut joins) = (0u64, 0u64, 0u64);
        let mut fetched_bytes = 0u64;
        let mut fetch_micros = 0u64;
        for index in 0..blocks {
            let key = (origin.digest, index);
            self.tick += 1;
            if let Some(entry) = self.entries.get_mut(&key) {
                entry.tick = self.tick;
                if entry.ready_at > now_micros {
                    // Another session's upstream fetch for this block is
                    // still in flight: share it, wait for it.
                    joins += 1;
                    ready_at = ready_at.max(entry.ready_at);
                } else {
                    hits += 1;
                }
                assembled.extend_from_slice(&entry.bytes);
                continue;
            }
            misses += 1;
            let bytes = origin.block(index, self.block_size).to_vec();
            let start = now_micros.max(self.busy_until);
            let done = start + self.upstream.transfer_micros(bytes.len() as u64);
            self.busy_until = done;
            fetched_bytes += bytes.len() as u64;
            fetch_micros += done - start;
            ready_at = ready_at.max(done);
            assembled.extend_from_slice(&bytes);
            if self.capacity_blocks > 0 {
                self.insert(key, bytes, done);
            }
        }

        self.stats.serves += 1;
        self.stats.cache_hits += hits;
        self.stats.cache_misses += misses;
        self.stats.upstream_fetches += misses;
        self.stats.upstream_bytes += fetched_bytes;
        self.stats.upstream_micros += fetch_micros;
        self.stats.single_flight_joins += joins;
        let counters = self.tracer.counters();
        Counters::add(&counters.proxy_cache_hits, hits);
        Counters::add(&counters.proxy_cache_misses, misses);
        Counters::add(&counters.upstream_fetches, misses);
        Counters::add(&counters.upstream_bytes, fetched_bytes);
        Counters::add(&counters.upstream_micros, fetch_micros);
        Counters::add(&counters.single_flight_joins, joins);
        let wait_micros = ready_at - now_micros;
        let (proxy, digest) = (self.id, origin.digest);
        self.tracer.emit(|| Event::ProxyServe {
            proxy,
            digest,
            hits,
            misses,
            joins,
            upstream_bytes: fetched_bytes,
            wait_micros,
        });

        // Tamper covers everything the proxy serves — bytes pulled out of
        // the cache just as much as bytes freshly fetched upstream.
        let served = self.tamper.apply(&assembled);
        let manifest_len = origin.manifest_len.min(served.len());
        let payload = served[manifest_len..].to_vec();
        let mut manifest = served;
        manifest.truncate(manifest_len);
        StreamResolution::Deferred {
            stream: SessionStream { manifest, payload },
            wait_micros,
        }
    }

    fn insert(&mut self, key: (u64, u32), bytes: Vec<u8>, ready_at: u64) {
        self.entries.insert(
            key,
            CacheEntry {
                bytes,
                tick: self.tick,
                ready_at,
            },
        );
        while self.entries.len() > self.capacity_blocks {
            // Ticks are unique, so the LRU victim is unique — eviction
            // order never depends on hash-map iteration order.
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.tick)
                .map(|(key, _)| *key)
            else {
                break;
            };
            self.entries.remove(&victim);
            self.stats.evictions += 1;
            Counters::add(&self.tracer.counters().proxy_evictions, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_core::generation::VendorServer;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_manifest::{Version, SIGNED_MANIFEST_LEN};

    fn server_with_release(seed: u64, fw: Vec<u8>) -> (VendorServer, UpdateServer) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        server.publish(vendor.release(fw, Version(2), 0, 0xA));
        (vendor, server)
    }

    fn token() -> DeviceToken {
        DeviceToken {
            device_id: 1,
            nonce: 5,
            current_version: Version(0),
        }
    }

    #[test]
    fn honest_phone_forwards_faithfully() {
        let (_, server) = server_with_release(140, vec![0x11; 500]);
        let mut phone = Smartphone::new();
        assert!(phone.fetch_update(&server, &token()));
        let manifest = phone.outgoing_manifest().unwrap();
        let payload = phone.outgoing_payload().unwrap();
        let original = phone.stored().unwrap().image.to_bytes();
        assert_eq!(manifest, original[..SIGNED_MANIFEST_LEN]);
        assert_eq!(payload, original[SIGNED_MANIFEST_LEN..]);
    }

    #[test]
    fn phone_reports_no_update_when_current() {
        let (_, server) = server_with_release(141, vec![0x22; 100]);
        let mut phone = Smartphone::new();
        let current = DeviceToken {
            current_version: Version(2),
            ..token()
        };
        assert!(!phone.fetch_update(&server, &current));
        assert!(phone.stored().is_none());
        assert!(phone.outgoing_manifest().is_none());
    }

    #[test]
    fn compromised_phone_corrupts_stream() {
        let (_, server) = server_with_release(142, vec![0x33; 500]);
        let mut phone = Smartphone::compromised(Tamper::FlipBit { offset: 10 });
        phone.fetch_update(&server, &token());
        let manifest = phone.outgoing_manifest().unwrap();
        let original = phone.stored().unwrap().image.to_bytes();
        assert_ne!(manifest, original[..SIGNED_MANIFEST_LEN]);
    }

    #[test]
    fn truncating_phone_cuts_payload() {
        let (_, server) = server_with_release(143, vec![0x44; 500]);
        let mut phone = Smartphone::compromised(Tamper::Truncate {
            keep: SIGNED_MANIFEST_LEN + 100,
        });
        phone.fetch_update(&server, &token());
        assert_eq!(phone.outgoing_payload().unwrap().len(), 100);
    }

    #[test]
    fn border_router_forwarding() {
        let honest = BorderRouter::new();
        assert_eq!(honest.forward(b"blk"), b"blk");
        let evil = BorderRouter::compromised(Tamper::FlipBit { offset: 0 });
        assert_ne!(evil.forward(b"blk"), b"blk");
    }

    fn origin(payload_len: usize) -> CachedOrigin {
        CachedOrigin::new(&SessionStream {
            manifest: vec![0xAA; 196],
            payload: (0..payload_len).map(|i| i as u8).collect(),
        })
    }

    fn unwrap_deferred(resolution: StreamResolution) -> (SessionStream, u64) {
        match resolution {
            StreamResolution::Deferred {
                stream,
                wait_micros,
            } => (stream, wait_micros),
            other => panic!("caching proxy always defers, got {other:?}"),
        }
    }

    #[test]
    fn warm_cache_serves_without_upstream_fetches() {
        let origin = origin(1_000);
        let mut proxy = CachingProxy::new(0, 256, 64, LinkProfile::wifi_backhaul());
        let (first, first_wait) = unwrap_deferred(proxy.resolve(&origin, 0));
        assert_eq!(first, origin.direct_stream());
        assert!(first_wait > 0, "cold cache pays the upstream fetch");
        let cold = proxy.stats();
        assert_eq!(cold.cache_misses, u64::from(origin.blocks(256)));
        assert_eq!(cold.upstream_bytes, origin.total_len() as u64);

        // Resolve again after the fetches landed: pure hits, zero wait,
        // zero new upstream traffic.
        let later = first_wait + 1;
        let (second, second_wait) = unwrap_deferred(proxy.resolve(&origin, later));
        assert_eq!(second, origin.direct_stream());
        assert_eq!(second_wait, 0);
        let warm = proxy.stats();
        assert_eq!(warm.upstream_bytes, cold.upstream_bytes);
        assert_eq!(warm.cache_hits, u64::from(origin.blocks(256)));
    }

    #[test]
    fn concurrent_serves_single_flight_the_upstream_fetch() {
        let origin = origin(1_000);
        let mut proxy = CachingProxy::new(0, 256, 64, LinkProfile::wifi_backhaul());
        let (_, first_wait) = unwrap_deferred(proxy.resolve(&origin, 0));
        // A second session arriving while the fetches are still in flight
        // joins them: same wait horizon, no new upstream bytes.
        let (stream, join_wait) = unwrap_deferred(proxy.resolve(&origin, 0));
        assert_eq!(stream, origin.direct_stream());
        assert_eq!(join_wait, first_wait);
        let stats = proxy.stats();
        assert_eq!(stats.upstream_fetches, u64::from(origin.blocks(256)));
        assert_eq!(stats.single_flight_joins, u64::from(origin.blocks(256)));
    }

    #[test]
    fn bounded_cache_evicts_lru_and_refetches() {
        let origin = origin(1_000); // 196 + 1000 = 5 blocks of 256
        let blocks = u64::from(origin.blocks(256));
        let mut proxy = CachingProxy::new(0, 256, 2, LinkProfile::wifi_backhaul());
        let (_, wait) = unwrap_deferred(proxy.resolve(&origin, 0));
        assert_eq!(proxy.cached_blocks(), 2);
        assert_eq!(proxy.stats().evictions, blocks - 2);
        // The front of the stream was evicted, so a warm serve still
        // refetches — a cache smaller than the image cannot absorb the
        // fan-out.
        let (_, _) = unwrap_deferred(proxy.resolve(&origin, wait + 1));
        assert!(proxy.stats().upstream_fetches > blocks);
    }

    #[test]
    fn zero_capacity_disables_caching_entirely() {
        let origin = origin(600);
        let mut proxy = CachingProxy::new(0, 256, 0, LinkProfile::wifi_backhaul());
        let (_, wait) = unwrap_deferred(proxy.resolve(&origin, 0));
        unwrap_deferred(proxy.resolve(&origin, wait + 1));
        let stats = proxy.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.upstream_bytes, 2 * origin.total_len() as u64);
        assert_eq!(proxy.cached_blocks(), 0);
    }

    #[test]
    fn shared_backhaul_serializes_concurrent_fetches() {
        // Two different origins fetched at the same instant queue behind
        // each other on the one upstream link.
        let a = origin(600);
        let b = CachedOrigin::new(&SessionStream {
            manifest: vec![0xCC; 196],
            payload: vec![0xDD; 600],
        });
        let mut proxy = CachingProxy::new(0, 256, 64, LinkProfile::wifi_backhaul());
        let (_, wait_a) = unwrap_deferred(proxy.resolve(&a, 0));
        let (_, wait_b) = unwrap_deferred(proxy.resolve(&b, 0));
        assert!(
            wait_b > wait_a,
            "second campaign queues behind the first: {wait_b} vs {wait_a}"
        );
    }

    #[test]
    fn tamper_covers_cache_served_responses() {
        let origin = origin(1_000);
        let mut proxy =
            CachingProxy::compromised(0, 256, 64, LinkProfile::wifi_backhaul(), Tamper::None);
        // Warm the cache honestly, then turn the proxy malicious: the
        // tampered serve comes entirely out of the cache.
        let (honest, wait) = unwrap_deferred(proxy.resolve(&origin, 0));
        assert_eq!(honest, origin.direct_stream());
        proxy.tamper = Tamper::FlipBit { offset: 300 };
        let (tampered, _) = unwrap_deferred(proxy.resolve(&origin, wait + 1));
        assert_eq!(proxy.stats().cache_hits, u64::from(origin.blocks(256)));
        assert_ne!(tampered, origin.direct_stream());
        assert_ne!(tampered.payload, honest.payload);
    }

    #[test]
    fn poisoned_cache_entry_corrupts_the_served_stream() {
        let origin = origin(1_000);
        let mut proxy = CachingProxy::new(0, 256, 64, LinkProfile::wifi_backhaul());
        let (_, wait) = unwrap_deferred(proxy.resolve(&origin, 0));
        assert!(proxy.poison_block(origin.digest(), 1, |bytes| bytes[0] ^= 0x80));
        assert!(
            !proxy.poison_block(origin.digest(), 999, |_| {}),
            "uncached blocks cannot be poisoned"
        );
        let (poisoned, _) = unwrap_deferred(proxy.resolve(&origin, wait + 1));
        assert_ne!(poisoned, origin.direct_stream());
    }
}
