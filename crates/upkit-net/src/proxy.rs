//! Passive forwarders: the smartphone (push) and border router (pull).
//!
//! In UpKit's architecture neither proxy is an active component: each only
//! forwards bytes between update server and device. A compromised proxy
//! can therefore mount denial-of-service or corruption attacks (modeled by
//! [`Tamper`]) but cannot defeat integrity, authenticity, or freshness —
//! the property the integration tests demonstrate.

use upkit_core::generation::{PreparedUpdate, UpdateServer};
use upkit_manifest::DeviceToken;

use crate::tamper::Tamper;

/// The smartphone of the push flow (Fig. 2): fetches the update image from
/// the server on the device's behalf, stores it locally, then forwards it
/// over the local BLE connection.
#[derive(Debug)]
pub struct Smartphone {
    stored: Option<PreparedUpdate>,
    tamper: Tamper,
}

impl Default for Smartphone {
    fn default() -> Self {
        Self::new()
    }
}

impl Smartphone {
    /// An honest smartphone.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stored: None,
            tamper: Tamper::None,
        }
    }

    /// A compromised smartphone applying `tamper` to everything forwarded.
    #[must_use]
    pub fn compromised(tamper: Tamper) -> Self {
        Self {
            stored: None,
            tamper,
        }
    }

    /// Steps 4–7 of Fig. 2: forwards the device token to the update server
    /// and stores the prepared image. Returns `false` when the server has
    /// nothing newer.
    pub fn fetch_update(&mut self, server: &UpdateServer, token: &DeviceToken) -> bool {
        self.stored = server.prepare_update(token);
        self.stored.is_some()
    }

    /// The update stored on the phone, untampered (what an honest phone
    /// holds after the fetch).
    #[must_use]
    pub fn stored(&self) -> Option<&PreparedUpdate> {
        self.stored.as_ref()
    }

    /// The manifest bytes the phone will forward first (step 8), after any
    /// tampering.
    #[must_use]
    pub fn outgoing_manifest(&self) -> Option<Vec<u8>> {
        let image = &self.stored.as_ref()?.image;
        let manifest_bytes = image.signed_manifest.to_bytes().to_vec();
        // Tampering offsets address the whole image stream.
        let whole = self.tampered_image_bytes()?;
        let take = manifest_bytes.len().min(whole.len());
        Some(whole[..take].to_vec())
    }

    /// The payload bytes the phone forwards after the agent's go-ahead
    /// (step 12), after any tampering.
    #[must_use]
    pub fn outgoing_payload(&self) -> Option<Vec<u8>> {
        let manifest_len = upkit_manifest::SIGNED_MANIFEST_LEN;
        let whole = self.tampered_image_bytes()?;
        if whole.len() <= manifest_len {
            return Some(Vec::new());
        }
        Some(whole[manifest_len..].to_vec())
    }

    fn tampered_image_bytes(&self) -> Option<Vec<u8>> {
        let image = &self.stored.as_ref()?.image;
        Some(self.tamper.apply(&image.image_bytes()))
    }
}

/// Extension: serialized form of a prepared update's image.
trait ImageBytes {
    fn image_bytes(&self) -> Vec<u8>;
}

impl ImageBytes for upkit_manifest::UpdateImage {
    fn image_bytes(&self) -> Vec<u8> {
        self.to_bytes()
    }
}

/// The border router of the pull flow: forwards CoAP exchanges between the
/// 6LoWPAN network and the IPv6 update server, optionally tampering.
#[derive(Debug)]
pub struct BorderRouter {
    tamper: Tamper,
}

impl Default for BorderRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl BorderRouter {
    /// An honest border router.
    #[must_use]
    pub fn new() -> Self {
        Self {
            tamper: Tamper::None,
        }
    }

    /// A compromised border router.
    #[must_use]
    pub fn compromised(tamper: Tamper) -> Self {
        Self { tamper }
    }

    /// Forwards a server response toward the device, applying any tamper
    /// to the end-to-end byte stream.
    #[must_use]
    pub fn forward(&self, data: &[u8]) -> Vec<u8> {
        self.tamper.apply(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_core::generation::VendorServer;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_manifest::{Version, SIGNED_MANIFEST_LEN};

    fn server_with_release(seed: u64, fw: Vec<u8>) -> (VendorServer, UpdateServer) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        server.publish(vendor.release(fw, Version(2), 0, 0xA));
        (vendor, server)
    }

    fn token() -> DeviceToken {
        DeviceToken {
            device_id: 1,
            nonce: 5,
            current_version: Version(0),
        }
    }

    #[test]
    fn honest_phone_forwards_faithfully() {
        let (_, server) = server_with_release(140, vec![0x11; 500]);
        let mut phone = Smartphone::new();
        assert!(phone.fetch_update(&server, &token()));
        let manifest = phone.outgoing_manifest().unwrap();
        let payload = phone.outgoing_payload().unwrap();
        let original = phone.stored().unwrap().image.to_bytes();
        assert_eq!(manifest, original[..SIGNED_MANIFEST_LEN]);
        assert_eq!(payload, original[SIGNED_MANIFEST_LEN..]);
    }

    #[test]
    fn phone_reports_no_update_when_current() {
        let (_, server) = server_with_release(141, vec![0x22; 100]);
        let mut phone = Smartphone::new();
        let current = DeviceToken {
            current_version: Version(2),
            ..token()
        };
        assert!(!phone.fetch_update(&server, &current));
        assert!(phone.stored().is_none());
        assert!(phone.outgoing_manifest().is_none());
    }

    #[test]
    fn compromised_phone_corrupts_stream() {
        let (_, server) = server_with_release(142, vec![0x33; 500]);
        let mut phone = Smartphone::compromised(Tamper::FlipBit { offset: 10 });
        phone.fetch_update(&server, &token());
        let manifest = phone.outgoing_manifest().unwrap();
        let original = phone.stored().unwrap().image.to_bytes();
        assert_ne!(manifest, original[..SIGNED_MANIFEST_LEN]);
    }

    #[test]
    fn truncating_phone_cuts_payload() {
        let (_, server) = server_with_release(143, vec![0x44; 500]);
        let mut phone = Smartphone::compromised(Tamper::Truncate {
            keep: SIGNED_MANIFEST_LEN + 100,
        });
        phone.fetch_update(&server, &token());
        assert_eq!(phone.outgoing_payload().unwrap().len(), 100);
    }

    #[test]
    fn border_router_forwarding() {
        let honest = BorderRouter::new();
        assert_eq!(honest.forward(b"blk"), b"blk");
        let evil = BorderRouter::compromised(Tamper::FlipBit { offset: 0 });
        assert_ne!(evil.forward(b"blk"), b"blk");
    }
}
