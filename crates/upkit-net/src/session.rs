//! Event-driven, resumable transport sessions.
//!
//! The monolithic drivers of [`crate::drivers`] ran an entire Fig. 2
//! message sequence to completion inside one function call — fine for
//! single-device figures, structurally incapable of interleaving thousands
//! of concurrently-updating devices. This module decomposes propagation
//! into three pieces:
//!
//! * [`SessionEndpoints`] — what a session talks *to*: the device agent
//!   plus whatever proxy path serves the update stream. One trait covers
//!   the push proxy ([`PushEndpoints`]), the pull path
//!   ([`PullEndpoints`]), the baseline agents, and the simulator's
//!   lightweight fleet devices.
//! * [`Transport`] — the session driver: [`PushSession`] / [`PullSession`]
//!   state machines advancing one link event at a time via
//!   [`Transport::step`]. Each step returns the event kind and its
//!   virtual-time cost, so a scheduler can interleave any number of
//!   sessions on a shared virtual clock.
//! * [`RetryPolicy`] — per-block timeout, bounded retries, exponential
//!   backoff. Loss is sampled per transmission attempt from the session's
//!   [`LossyLink`] stream; a block that exhausts its retry budget ends the
//!   session with [`SessionOutcome::TimedOut`].
//!
//! A session stepped to completion over a reliable link produces *exactly*
//! the `SessionReport` the legacy drivers produced — charge for charge —
//! which the equivalence and regression tests assert.

use upkit_core::agent::{AgentError, AgentPhase, AgentState, UpdateAgent, UpdatePlan};
use upkit_core::generation::UpdateServer;
use upkit_flash::MemoryLayout;
use upkit_manifest::{DeviceToken, DEVICE_TOKEN_LEN, SIGNED_MANIFEST_LEN};
use upkit_trace::{Counters, Event, Tracer};

use crate::lossy::LossyLink;
use crate::profiles::{LinkProfile, TransferAccounting};
use crate::proxy::{BorderRouter, Smartphone};

/// Terminal state of a propagation session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The update was fully transferred and verified; reboot may proceed.
    Complete,
    /// The server had no newer image for this device.
    NoUpdateAvailable,
    /// The agent rejected the manifest before any firmware transfer.
    RejectedAtManifest(AgentError),
    /// The agent rejected the firmware after transfer, before reboot.
    RejectedAtFirmware(AgentError),
    /// The stream ended prematurely (proxy truncation / link drop).
    Incomplete,
    /// The proxy reported a fetched update but had no bytes to forward.
    ProxyEmpty,
    /// A block exhausted its retransmission budget on a lossy link.
    TimedOut,
}

impl SessionOutcome {
    /// `true` only for a fully verified update.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, Self::Complete)
    }

    /// Stable lowercase label for trace output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Complete => "complete",
            Self::NoUpdateAvailable => "no_update",
            Self::RejectedAtManifest(_) => "rejected_at_manifest",
            Self::RejectedAtFirmware(_) => "rejected_at_firmware",
            Self::Incomplete => "incomplete",
            Self::ProxyEmpty => "proxy_empty",
            Self::TimedOut => "timed_out",
        }
    }
}

/// Outcome of a propagation session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionReport {
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// Radio accounting for the whole session.
    pub accounting: TransferAccounting,
}

/// What one [`Transport::step`] did on the link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEventKind {
    /// Token request round trip plus the token upload.
    TokenExchange,
    /// Proxy/server stream resolution. Costs no device radio; a caching
    /// proxy that had to fetch upstream first charges the wait as
    /// radio-idle time ([`StreamResolution::Deferred`]).
    ProxyFetch,
    /// One link chunk transmitted and delivered to the agent.
    ChunkDelivered {
        /// Payload bytes in the chunk.
        bytes: usize,
    },
    /// One link chunk transmitted and lost; the sender waited out a
    /// retransmission timeout before retrying.
    ChunkLost {
        /// Payload bytes in the lost transmission.
        bytes: usize,
        /// Timeout waited before the retry (exponential backoff).
        timeout_micros: u64,
    },
    /// Push only: the agent's go-ahead notification after manifest
    /// acceptance (steps 10–11 of Fig. 2).
    GoAhead,
}

/// One advanced link event: what happened and what it cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionEvent {
    /// The event kind.
    pub kind: SessionEventKind,
    /// Virtual time the event consumed, in microseconds.
    pub cost_micros: u64,
}

/// Result of one [`Transport::step`].
#[derive(Clone, Debug)]
pub enum Step {
    /// The session advanced by one event and has more work to do.
    Progress(SessionEvent),
    /// The session reached a terminal state. Charges incurred during the
    /// final event (e.g. the chunk whose rejection ended the session) are
    /// included in the report's accounting.
    Done(SessionReport),
}

/// Per-block timeout, bounded retries, exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmission attempts allowed per block after the initial one.
    pub max_retries: u32,
    /// Timeout before the first retransmission, in microseconds.
    pub base_timeout_micros: u64,
    /// Multiplier applied to the timeout after each consecutive loss.
    pub backoff_factor: u32,
}

impl RetryPolicy {
    /// A conservative default for `link`: first timeout at twice the RTT,
    /// doubling per consecutive loss, up to six retries per block.
    #[must_use]
    pub fn for_link(link: &LinkProfile) -> Self {
        Self {
            max_retries: 6,
            base_timeout_micros: 2 * link.rtt_micros,
            backoff_factor: 2,
        }
    }

    /// Timeout waited after a loss, given how many consecutive failed
    /// attempts the block has already seen (0 for the first loss).
    #[must_use]
    pub fn timeout_after(&self, failed_attempts: u32) -> u64 {
        let exponent = failed_attempts.min(16);
        self.base_timeout_micros
            .saturating_mul(u64::from(self.backoff_factor).saturating_pow(exponent))
    }
}

/// The update stream a proxy resolved for one session: the signed manifest
/// region followed by the payload region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionStream {
    /// The signed-manifest bytes, transferred and verified first.
    pub manifest: Vec<u8>,
    /// The payload bytes, transferred after the manifest is accepted.
    pub payload: Vec<u8>,
}

/// What the proxy path answered when asked for an update.
#[derive(Debug)]
pub enum StreamResolution {
    /// The server had nothing newer.
    NoUpdate,
    /// The proxy claimed success but produced no bytes (a broken proxy).
    ProxyEmpty,
    /// The stream to transfer.
    Stream(SessionStream),
    /// The stream to transfer, after the proxy spent `wait_micros` of
    /// virtual time resolving it upstream (cache misses on a caching
    /// proxy, queueing behind other sessions on a shared backhaul). The
    /// wait is charged to the session as radio-idle time; the transfer
    /// itself is then charged chunk by chunk as usual.
    Deferred {
        /// The resolved stream.
        stream: SessionStream,
        /// Radio-idle virtual time spent waiting for the proxy.
        wait_micros: u64,
    },
}

/// The two parties a session mediates between: the device-side agent and
/// the server-side stream source. Implementations exist for UpKit's push
/// and pull paths, the mcumgr/LwM2M baselines, and the event simulator's
/// lightweight devices.
pub trait SessionEndpoints {
    /// Asks the device agent for a fresh device token (steps 4–5).
    fn request_token(&mut self) -> Result<DeviceToken, AgentError>;
    /// Resolves the update stream for `token` (steps 6–7; proxy ↔ server
    /// over the Internet, not charged to the device radio).
    fn resolve_stream(&mut self, token: &DeviceToken) -> StreamResolution;
    /// Delivers one link chunk to the device agent.
    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError>;
}

/// A resumable propagation session advancing one link event per call.
pub trait Transport {
    /// Advances the session by one event.
    fn step(&mut self, endpoints: &mut dyn SessionEndpoints) -> Step;
    /// Whether the session reached a terminal state.
    fn is_done(&self) -> bool;
    /// Radio accounting so far.
    fn accounting(&self) -> &TransferAccounting;
    /// Virtual time consumed so far, in microseconds.
    fn virtual_elapsed_micros(&self) -> u64 {
        self.accounting().elapsed_micros
    }
    /// Steps until done and returns the final report — the legacy drivers'
    /// behaviour as a thin wrapper.
    fn run_to_completion(&mut self, endpoints: &mut dyn SessionEndpoints) -> SessionReport {
        loop {
            if let Step::Done(report) = self.step(endpoints) {
                return report;
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flavor {
    Push,
    Pull,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Region {
    Manifest,
    Firmware,
}

impl Region {
    fn stage(self) -> Stage {
        match self {
            Self::Manifest => Stage::Manifest,
            Self::Firmware => Stage::Firmware,
        }
    }
}

#[derive(Debug)]
enum Stage {
    Token,
    Fetch { token: DeviceToken },
    Manifest,
    GoAhead,
    Firmware,
    Finished,
}

/// The state machine shared by push and pull sessions. The two flavors
/// differ only in their charging scheme: push charges the token round trip
/// up front and one go-ahead round trip between manifest and payload; pull
/// charges a confirmed round trip per block and no go-ahead.
#[derive(Debug)]
struct SessionCore {
    flavor: Flavor,
    link: LossyLink,
    retry: RetryPolicy,
    stream_id: u64,
    stage: Stage,
    stream: Option<SessionStream>,
    cursor: usize,
    attempts: u32,
    tx_attempts: u64,
    manifest_accepted: bool,
    firmware_complete: bool,
    acc: TransferAccounting,
    outcome: Option<SessionOutcome>,
    tracer: Tracer,
}

impl SessionCore {
    fn new(flavor: Flavor, link: LossyLink, retry: RetryPolicy, stream_id: u64) -> Self {
        Self {
            flavor,
            link,
            retry,
            stream_id,
            stage: Stage::Token,
            stream: None,
            cursor: 0,
            attempts: 0,
            tx_attempts: 0,
            manifest_accepted: false,
            firmware_complete: false,
            acc: TransferAccounting::default(),
            outcome: None,
            tracer: Tracer::disabled(),
        }
    }

    fn done(&mut self, outcome: SessionOutcome) -> Step {
        // A finished session may be stepped again (it repeats its
        // report); only the first termination is traced and counted.
        if self.outcome.is_none() {
            Counters::add(&self.tracer.counters().link_micros, self.acc.elapsed_micros);
            self.tracer.advance_now_to(self.acc.elapsed_micros);
            let stream = self.stream_id;
            let label = outcome.label();
            let bytes_to_device = self.acc.bytes_to_device;
            self.tracer.emit(|| Event::SessionDone {
                stream,
                outcome: label,
                bytes_to_device,
            });
        }
        self.stage = Stage::Finished;
        self.outcome = Some(outcome.clone());
        Step::Done(SessionReport {
            outcome,
            accounting: self.acc,
        })
    }

    fn progress(&self, kind: SessionEventKind, elapsed_before: u64) -> Step {
        Step::Progress(SessionEvent {
            kind,
            cost_micros: self.acc.elapsed_micros - elapsed_before,
        })
    }

    fn step(&mut self, io: &mut dyn SessionEndpoints) -> Step {
        let before = self.acc.elapsed_micros;
        // Stamp events at the virtual time the step begins. The clock is
        // a fetch-max, so interleaved sessions sharing one tracer keep
        // the merged trace monotone.
        self.tracer.advance_now_to(before);
        match std::mem::replace(&mut self.stage, Stage::Finished) {
            Stage::Finished => {
                let outcome = self.outcome.clone().unwrap_or(SessionOutcome::Incomplete);
                self.done(outcome)
            }
            Stage::Token => {
                // Push: the phone's token request costs a round trip even
                // when the agent refuses. Pull: the device initiates, so a
                // refusal costs no radio at all.
                if self.flavor == Flavor::Push {
                    self.acc.charge_round_trip(&self.link.link);
                    Counters::add(&self.tracer.counters().round_trips, 1);
                }
                match io.request_token() {
                    Ok(token) => {
                        if self.flavor == Flavor::Pull {
                            self.acc.charge_round_trip(&self.link.link);
                            Counters::add(&self.tracer.counters().round_trips, 1);
                        }
                        self.acc
                            .charge_from_device(&self.link.link, DEVICE_TOKEN_LEN as u64);
                        Counters::add(
                            &self.tracer.counters().link_bytes_from_device,
                            DEVICE_TOKEN_LEN as u64,
                        );
                        let stream = self.stream_id;
                        self.tracer.emit(|| Event::TokenExchange { stream });
                        self.stage = Stage::Fetch { token };
                        self.progress(SessionEventKind::TokenExchange, before)
                    }
                    Err(e) => self.done(SessionOutcome::RejectedAtManifest(e)),
                }
            }
            Stage::Fetch { token } => match io.resolve_stream(&token) {
                StreamResolution::NoUpdate => self.done(SessionOutcome::NoUpdateAvailable),
                StreamResolution::ProxyEmpty => self.done(SessionOutcome::ProxyEmpty),
                StreamResolution::Stream(stream) => self.accept_stream(stream, 0, before),
                StreamResolution::Deferred {
                    stream,
                    wait_micros,
                } => self.accept_stream(stream, wait_micros, before),
            },
            Stage::GoAhead => {
                self.acc.charge_round_trip(&self.link.link);
                Counters::add(&self.tracer.counters().round_trips, 1);
                let stream = self.stream_id;
                self.tracer.emit(|| Event::GoAhead { stream });
                self.stage = Stage::Firmware;
                self.cursor = 0;
                self.progress(SessionEventKind::GoAhead, before)
            }
            Stage::Manifest => self.chunk_step(io, Region::Manifest, before),
            Stage::Firmware => self.chunk_step(io, Region::Firmware, before),
        }
    }

    /// Installs a resolved stream and transitions to the manifest region.
    /// `wait_micros` is the radio-idle time the proxy took to produce the
    /// stream (zero for passive forwarders).
    fn accept_stream(&mut self, stream: SessionStream, wait_micros: u64, before: u64) -> Step {
        if wait_micros > 0 {
            self.acc.charge_wait(wait_micros);
            Counters::add(&self.tracer.counters().wait_micros, wait_micros);
        }
        let stream_id = self.stream_id;
        let manifest_bytes = stream.manifest.len() as u64;
        let payload_bytes = stream.payload.len() as u64;
        self.tracer.emit(|| Event::ProxyFetch {
            stream: stream_id,
            manifest_bytes,
            payload_bytes,
        });
        self.stream = Some(stream);
        self.cursor = 0;
        self.stage = Stage::Manifest;
        self.progress(SessionEventKind::ProxyFetch, before)
    }

    fn chunk_step(&mut self, io: &mut dyn SessionEndpoints, region: Region, before: u64) -> Step {
        // The chunk stages are only entered after Fetch installed the
        // stream; a missing stream here means the state machine was
        // corrupted. Assert in debug builds, terminate cleanly otherwise
        // instead of panicking mid-fleet.
        let Some(stream_ref) = self.stream.as_ref() else {
            debug_assert!(false, "chunk step before stream resolution");
            return self.done(SessionOutcome::Incomplete);
        };
        let len = match region {
            Region::Manifest => stream_ref.manifest.len(),
            Region::Firmware => stream_ref.payload.len(),
        };
        if self.cursor >= len {
            // Only reachable when the region is empty (truncated stream or
            // zero-byte payload): nothing was delivered, nothing accepted.
            return self.done(SessionOutcome::Incomplete);
        }
        let start = self.cursor;
        let end = (start + self.link.link.mtu).min(len);
        let bytes = end - start;

        // Pull confirms every block with a round trip; push pipelines
        // notifications without per-chunk round trips. Both charge the
        // attempted transmission whether or not it arrives.
        let attempt_index = self.tx_attempts;
        self.tx_attempts += 1;
        if self.flavor == Flavor::Pull {
            self.acc.charge_round_trip(&self.link.link);
            Counters::add(&self.tracer.counters().round_trips, 1);
        }
        self.acc.charge_to_device(&self.link.link, bytes as u64);
        Counters::add(&self.tracer.counters().frames_sent, 1);
        Counters::add(&self.tracer.counters().link_bytes_to_device, bytes as u64);

        if self.link.drops(self.stream_id, attempt_index) {
            let timeout_micros = self.retry.timeout_after(self.attempts);
            self.attempts += 1;
            self.acc.charge_wait(timeout_micros);
            Counters::add(&self.tracer.counters().frames_lost, 1);
            Counters::add(&self.tracer.counters().wait_micros, timeout_micros);
            let stream_id = self.stream_id;
            let attempt = u64::from(self.attempts - 1);
            self.tracer.emit(|| Event::ChunkLost {
                stream: stream_id,
                bytes: bytes as u64,
                attempt,
            });
            if self.attempts > self.retry.max_retries {
                return self.done(SessionOutcome::TimedOut);
            }
            Counters::add(&self.tracer.counters().retries, 1);
            self.stage = region.stage();
            return self.progress(
                SessionEventKind::ChunkLost {
                    bytes,
                    timeout_micros,
                },
                before,
            );
        }
        self.attempts = 0;

        let delivery = {
            let Some(stream) = self.stream.as_ref() else {
                debug_assert!(false, "chunk step before stream resolution");
                return self.done(SessionOutcome::Incomplete);
            };
            let chunk = match region {
                Region::Manifest => &stream.manifest[start..end],
                Region::Firmware => &stream.payload[start..end],
            };
            io.deliver(chunk)
        };
        let stream_id = self.stream_id;
        self.tracer.emit(|| Event::ChunkDelivered {
            stream: stream_id,
            bytes: bytes as u64,
        });
        let phase = match delivery {
            Ok(phase) => phase,
            Err(e) => {
                return self.done(match region {
                    Region::Manifest => SessionOutcome::RejectedAtManifest(e),
                    Region::Firmware => SessionOutcome::RejectedAtFirmware(e),
                });
            }
        };
        self.cursor = end;
        match region {
            Region::Manifest => {
                if phase == AgentPhase::ManifestAccepted {
                    self.manifest_accepted = true;
                }
            }
            Region::Firmware => self.firmware_complete = phase == AgentPhase::Complete,
        }

        if self.cursor < len {
            self.stage = region.stage();
            return self.progress(SessionEventKind::ChunkDelivered { bytes }, before);
        }
        // Region complete: transition or terminate.
        match region {
            Region::Manifest => {
                if !self.manifest_accepted {
                    // Manifest stream was too short to complete
                    // verification.
                    return self.done(SessionOutcome::Incomplete);
                }
                match self.flavor {
                    Flavor::Push => self.stage = Stage::GoAhead,
                    Flavor::Pull => {
                        self.stage = Stage::Firmware;
                        self.cursor = 0;
                    }
                }
                self.progress(SessionEventKind::ChunkDelivered { bytes }, before)
            }
            Region::Firmware => {
                let outcome = if self.firmware_complete {
                    SessionOutcome::Complete
                } else {
                    SessionOutcome::Incomplete
                };
                self.done(outcome)
            }
        }
    }
}

/// The push flow (Fig. 2's smartphone flow) as a resumable session.
#[derive(Debug)]
pub struct PushSession {
    core: SessionCore,
}

impl PushSession {
    /// A push session over `link`, sampling losses from the session's
    /// `stream_id` stream and retrying per `retry`.
    #[must_use]
    pub fn new(link: LossyLink, retry: RetryPolicy, stream_id: u64) -> Self {
        Self {
            core: SessionCore::new(Flavor::Push, link, retry, stream_id),
        }
    }

    /// Routes this session's counters and events through `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.core.tracer = tracer;
    }
}

impl Transport for PushSession {
    fn step(&mut self, endpoints: &mut dyn SessionEndpoints) -> Step {
        self.core.step(endpoints)
    }
    fn is_done(&self) -> bool {
        matches!(self.core.stage, Stage::Finished)
    }
    fn accounting(&self) -> &TransferAccounting {
        &self.core.acc
    }
}

/// The pull flow (CoAP blockwise through a border router) as a resumable
/// session.
#[derive(Debug)]
pub struct PullSession {
    core: SessionCore,
}

impl PullSession {
    /// A pull session over `link`, sampling losses from the session's
    /// `stream_id` stream and retrying per `retry`.
    #[must_use]
    pub fn new(link: LossyLink, retry: RetryPolicy, stream_id: u64) -> Self {
        Self {
            core: SessionCore::new(Flavor::Pull, link, retry, stream_id),
        }
    }

    /// Routes this session's counters and events through `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.core.tracer = tracer;
    }
}

impl Transport for PullSession {
    fn step(&mut self, endpoints: &mut dyn SessionEndpoints) -> Step {
        self.core.step(endpoints)
    }
    fn is_done(&self) -> bool {
        matches!(self.core.stage, Stage::Finished)
    }
    fn accounting(&self) -> &TransferAccounting {
        &self.core.acc
    }
}

/// [`SessionEndpoints`] for the push flow: a real [`UpdateAgent`] behind a
/// [`Smartphone`] proxy.
pub struct PushEndpoints<'a> {
    server: &'a UpdateServer,
    phone: &'a mut Smartphone,
    agent: &'a mut UpdateAgent,
    layout: &'a mut MemoryLayout,
    plan: Option<UpdatePlan>,
    nonce: u32,
}

impl<'a> PushEndpoints<'a> {
    /// Wires the push-path parties together for one session.
    pub fn new(
        server: &'a UpdateServer,
        phone: &'a mut Smartphone,
        agent: &'a mut UpdateAgent,
        layout: &'a mut MemoryLayout,
        plan: UpdatePlan,
        nonce: u32,
    ) -> Self {
        Self {
            server,
            phone,
            agent,
            layout,
            plan: Some(plan),
            nonce,
        }
    }
}

impl SessionEndpoints for PushEndpoints<'_> {
    fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
        let plan = self
            .plan
            .take()
            .ok_or(AgentError::WrongState(AgentState::Waiting))?;
        self.agent
            .request_device_token(self.layout, plan, self.nonce)
    }

    fn resolve_stream(&mut self, token: &DeviceToken) -> StreamResolution {
        if !self.phone.fetch_update(self.server, token) {
            return StreamResolution::NoUpdate;
        }
        let Some(manifest) = self.phone.outgoing_manifest() else {
            return StreamResolution::ProxyEmpty;
        };
        let Some(payload) = self.phone.outgoing_payload() else {
            return StreamResolution::ProxyEmpty;
        };
        StreamResolution::Stream(SessionStream { manifest, payload })
    }

    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
        self.agent.push_data(self.layout, chunk)
    }
}

/// [`SessionEndpoints`] for the pull flow: a real [`UpdateAgent`] fetching
/// through a [`BorderRouter`].
pub struct PullEndpoints<'a> {
    server: &'a UpdateServer,
    router: &'a BorderRouter,
    agent: &'a mut UpdateAgent,
    layout: &'a mut MemoryLayout,
    plan: Option<UpdatePlan>,
    nonce: u32,
}

impl<'a> PullEndpoints<'a> {
    /// Wires the pull-path parties together for one session.
    pub fn new(
        server: &'a UpdateServer,
        router: &'a BorderRouter,
        agent: &'a mut UpdateAgent,
        layout: &'a mut MemoryLayout,
        plan: UpdatePlan,
        nonce: u32,
    ) -> Self {
        Self {
            server,
            router,
            agent,
            layout,
            plan: Some(plan),
            nonce,
        }
    }
}

impl SessionEndpoints for PullEndpoints<'_> {
    fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
        let plan = self
            .plan
            .take()
            .ok_or(AgentError::WrongState(AgentState::Waiting))?;
        self.agent
            .request_device_token(self.layout, plan, self.nonce)
    }

    fn resolve_stream(&mut self, token: &DeviceToken) -> StreamResolution {
        let Some(prepared) = self.server.prepare_update(token) else {
            return StreamResolution::NoUpdate;
        };
        // The border router forwards the (logical) byte stream end to end.
        let stream = self.router.forward(&prepared.image.to_bytes());
        let manifest_len = SIGNED_MANIFEST_LEN.min(stream.len());
        let payload = stream[manifest_len..].to_vec();
        let mut manifest = stream;
        manifest.truncate(manifest_len);
        StreamResolution::Stream(SessionStream { manifest, payload })
    }

    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
        self.agent.push_data(self.layout, chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted device/proxy pair: accepts the manifest once `manifest`
    /// bytes arrived and completes once all bytes arrived. Lets the state
    /// machine be tested without any crypto in the loop.
    struct StubEndpoints {
        resolution: Option<StreamResolution>,
        manifest_len: usize,
        total_len: usize,
        fed: usize,
    }

    impl StubEndpoints {
        fn serving(manifest: Vec<u8>, payload: Vec<u8>) -> Self {
            Self {
                manifest_len: manifest.len(),
                total_len: manifest.len() + payload.len(),
                resolution: Some(StreamResolution::Stream(SessionStream {
                    manifest,
                    payload,
                })),
                fed: 0,
            }
        }

        fn with_resolution(resolution: StreamResolution) -> Self {
            Self {
                resolution: Some(resolution),
                manifest_len: 0,
                total_len: 0,
                fed: 0,
            }
        }
    }

    impl SessionEndpoints for StubEndpoints {
        fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
            Ok(DeviceToken {
                device_id: 1,
                nonce: 1,
                current_version: upkit_manifest::Version(1),
            })
        }
        fn resolve_stream(&mut self, _token: &DeviceToken) -> StreamResolution {
            // A second resolve means the stub was driven past its script;
            // answer NoUpdate so the session terminates instead of panicking.
            self.resolution.take().unwrap_or(StreamResolution::NoUpdate)
        }
        fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
            self.fed += chunk.len();
            Ok(if self.fed == self.total_len {
                AgentPhase::Complete
            } else if self.fed == self.manifest_len {
                AgentPhase::ManifestAccepted
            } else {
                AgentPhase::NeedMore
            })
        }
    }

    fn link() -> LinkProfile {
        LinkProfile::ieee802154_6lowpan()
    }

    #[test]
    fn stepped_session_completes_and_reports_every_event() {
        let manifest = vec![1u8; 196];
        let payload = vec![2u8; 1000];
        let mut io = StubEndpoints::serving(manifest, payload);
        let mut session = PullSession::new(
            LossyLink::reliable(link()),
            RetryPolicy::for_link(&link()),
            0,
        );
        let mut kinds = Vec::new();
        let report = loop {
            match session.step(&mut io) {
                Step::Progress(event) => {
                    assert!(!session.is_done());
                    kinds.push(event.kind);
                }
                Step::Done(report) => break report,
            }
        };
        assert!(session.is_done());
        assert_eq!(report.outcome, SessionOutcome::Complete);
        assert_eq!(kinds[0], SessionEventKind::TokenExchange);
        assert_eq!(kinds[1], SessionEventKind::ProxyFetch);
        assert!(kinds[2..]
            .iter()
            .all(|k| matches!(k, SessionEventKind::ChunkDelivered { .. })));
        // 196 B manifest = 4 blocks, 1000 B payload = 16 blocks; the final
        // payload block's delivery is folded into the Done step.
        assert_eq!(kinds.len() - 2, 4 + 16 - 1);
        assert_eq!(report.accounting.bytes_to_device, 196 + 1000);
        assert_eq!(
            report.accounting.elapsed_micros,
            session.virtual_elapsed_micros()
        );
    }

    #[test]
    fn push_session_charges_goahead_between_regions() {
        let mut io = StubEndpoints::serving(vec![1u8; 196], vec![2u8; 500]);
        let ble = LinkProfile::ble_gatt();
        let mut session =
            PushSession::new(LossyLink::reliable(ble), RetryPolicy::for_link(&ble), 0);
        let mut kinds = Vec::new();
        let report = loop {
            match session.step(&mut io) {
                Step::Progress(event) => kinds.push(event.kind),
                Step::Done(report) => break report,
            }
        };
        assert_eq!(report.outcome, SessionOutcome::Complete);
        assert!(kinds.contains(&SessionEventKind::GoAhead));
        // Push: token RTT + go-ahead RTT only.
        assert_eq!(report.accounting.round_trips, 2);
    }

    #[test]
    fn timeout_retry_backoff_give_up_progression() {
        // A link that loses everything: the first block is attempted
        // 1 + max_retries times with doubling timeouts, then the session
        // gives up.
        let retry = RetryPolicy {
            max_retries: 3,
            base_timeout_micros: 1_000,
            backoff_factor: 2,
        };
        let mut io = StubEndpoints::serving(vec![1u8; 196], vec![2u8; 500]);
        let mut session = PullSession::new(LossyLink::bernoulli(link(), 1.0, 7), retry, 0);
        let mut timeouts = Vec::new();
        let report = loop {
            match session.step(&mut io) {
                Step::Progress(SessionEvent {
                    kind: SessionEventKind::ChunkLost { timeout_micros, .. },
                    ..
                }) => timeouts.push(timeout_micros),
                Step::Progress(_) => {}
                Step::Done(report) => break report,
            }
        };
        assert_eq!(report.outcome, SessionOutcome::TimedOut);
        // 3 lost events reported; the 4th loss exceeds the budget and is
        // folded into the Done step.
        assert_eq!(timeouts, vec![1_000, 2_000, 4_000]);
        // All four attempted transmissions and all four timeouts (the
        // give-up attempt included) are charged, plus the token chunk.
        assert_eq!(report.accounting.chunks, 1 + 4);
        let expected_waits = 1_000 + 2_000 + 4_000 + 8_000;
        let mut base = TransferAccounting::default();
        base.charge_round_trip(&link());
        base.charge_from_device(&link(), DEVICE_TOKEN_LEN as u64);
        for _ in 0..4 {
            base.charge_round_trip(&link());
            base.charge_to_device(&link(), 64);
        }
        assert_eq!(
            report.accounting.elapsed_micros,
            base.elapsed_micros + expected_waits
        );
        assert_eq!(io.fed, 0, "no chunk was ever delivered");
    }

    #[test]
    fn retries_reset_after_a_successful_delivery() {
        // ~30 % loss: the session must still complete, with every loss
        // charged as a full attempted transmission plus a timeout.
        let lossy = LossyLink::bernoulli(link(), 0.3, 99);
        let mut io = StubEndpoints::serving(vec![1u8; 196], vec![2u8; 2_000]);
        let mut session = PullSession::new(lossy, RetryPolicy::for_link(&link()), 5);
        let mut lost = 0u64;
        let mut delivered = 0u64;
        let report = loop {
            match session.step(&mut io) {
                Step::Progress(SessionEvent { kind, .. }) => match kind {
                    SessionEventKind::ChunkLost { .. } => lost += 1,
                    SessionEventKind::ChunkDelivered { .. } => delivered += 1,
                    _ => {}
                },
                Step::Done(report) => break report,
            }
        };
        assert_eq!(report.outcome, SessionOutcome::Complete);
        assert!(lost > 0, "seed 99 should sample at least one loss");
        assert_eq!(io.fed, 196 + 2_000);
        // Attempted transmissions = delivered (incl. the final one folded
        // into Done) + lost, plus the token chunk.
        assert_eq!(report.accounting.chunks, 1 + delivered + 1 + lost);
        // A reliable run of the same stream is strictly cheaper.
        let mut reliable_io = StubEndpoints::serving(vec![1u8; 196], vec![2u8; 2_000]);
        let mut reliable = PullSession::new(
            LossyLink::reliable(link()),
            RetryPolicy::for_link(&link()),
            5,
        );
        let reliable_report = reliable.run_to_completion(&mut reliable_io);
        assert!(report.accounting.elapsed_micros > reliable_report.accounting.elapsed_micros);
    }

    #[test]
    fn deferred_resolution_charges_exactly_the_upstream_wait() {
        let make = || StubEndpoints::serving(vec![1u8; 196], vec![2u8; 1000]);
        let mut plain_io = make();
        let mut deferred_io = make();
        let Some(StreamResolution::Stream(stream)) = deferred_io.resolution.take() else {
            panic!("stub serves a stream");
        };
        deferred_io.resolution = Some(StreamResolution::Deferred {
            stream,
            wait_micros: 123_456,
        });
        let new_session = || {
            PullSession::new(
                LossyLink::reliable(link()),
                RetryPolicy::for_link(&link()),
                0,
            )
        };
        let plain = new_session().run_to_completion(&mut plain_io);
        let deferred = new_session().run_to_completion(&mut deferred_io);
        assert_eq!(plain.outcome, SessionOutcome::Complete);
        assert_eq!(deferred.outcome, SessionOutcome::Complete);
        // Same bytes on the radio, only the proxy wait separates them.
        assert_eq!(
            plain.accounting.bytes_to_device,
            deferred.accounting.bytes_to_device
        );
        assert_eq!(plain.accounting.chunks, deferred.accounting.chunks);
        assert_eq!(
            deferred.accounting.elapsed_micros,
            plain.accounting.elapsed_micros + 123_456
        );
    }

    #[test]
    fn proxy_empty_resolution_ends_the_session() {
        let mut io = StubEndpoints::with_resolution(StreamResolution::ProxyEmpty);
        let ble = LinkProfile::ble_gatt();
        let mut session =
            PushSession::new(LossyLink::reliable(ble), RetryPolicy::for_link(&ble), 0);
        let report = session.run_to_completion(&mut io);
        assert_eq!(report.outcome, SessionOutcome::ProxyEmpty);
        // The token exchange already happened.
        assert_eq!(report.accounting.round_trips, 1);
    }

    #[test]
    fn stepping_a_finished_session_repeats_the_report() {
        let mut io = StubEndpoints::with_resolution(StreamResolution::NoUpdate);
        let mut session = PullSession::new(
            LossyLink::reliable(link()),
            RetryPolicy::for_link(&link()),
            0,
        );
        let first = session.run_to_completion(&mut io);
        assert_eq!(first.outcome, SessionOutcome::NoUpdateAvailable);
        match session.step(&mut io) {
            Step::Done(again) => assert_eq!(again, first),
            Step::Progress(_) => panic!("finished session must not progress"),
        }
    }

    #[test]
    fn backoff_timeouts_are_capped_against_overflow() {
        let retry = RetryPolicy {
            max_retries: 200,
            base_timeout_micros: u64::MAX / 2,
            backoff_factor: 10,
        };
        assert_eq!(retry.timeout_after(100), u64::MAX);
    }
}
