//! Simulated transports for the UpKit reproduction.
//!
//! UpKit is agnostic to how update images reach the device: the paper
//! demonstrates a **push** configuration (a smartphone forwarding images
//! over BLE GATT) and a **pull** configuration (the device fetching blocks
//! over CoAP/6LoWPAN through a border router). This crate provides both as
//! byte-accurate simulations:
//!
//! * [`profiles`] — link timing models ([`LinkProfile`]) and radio
//!   accounting ([`TransferAccounting`]).
//! * [`proxy`] — the passive forwarders ([`Smartphone`], [`BorderRouter`])
//!   and the active caching gateway ([`CachingProxy`]): a bounded LRU
//!   block cache with single-flighted upstream fetches, so one upstream
//!   transfer serves any number of downstream devices. Per the paper's
//!   threat model proxies forward bytes but hold no keys.
//! * [`tamper`] — the attacks a compromised proxy can mount: whole-message
//!   corrupt/truncate/replay ([`Tamper`]) and in-flight single-frame
//!   corrupt/reorder/duplicate/inject/drop plus cross-version stream
//!   replay ([`FrameAdversary`]).
//! * [`session`] — the event-driven core: resumable [`PushSession`] /
//!   [`PullSession`] state machines advancing one link event at a time via
//!   [`Transport::step`], with per-block timeout, bounded retries, and
//!   exponential backoff ([`RetryPolicy`]).
//! * [`drivers`] — [`run_push_session`] and [`run_pull_session`], thin
//!   step-until-done wrappers executing the complete Fig. 2 message
//!   sequence against a real update agent and reporting byte/time
//!   accounting.
//! * [`lossy`] — seeded Bernoulli frame loss and retransmission cost
//!   models for harsh-environment links.

#![warn(missing_docs)]

pub mod drivers;
pub mod lossy;
pub mod profiles;
pub mod proxy;
pub mod session;
pub mod tamper;

pub use drivers::{run_pull_session, run_push_session};
pub use lossy::LossyLink;
pub use profiles::{LinkProfile, TransferAccounting};
pub use proxy::{BorderRouter, CachedOrigin, CachingProxy, ProxyStats, Smartphone};
pub use session::{
    PullEndpoints, PullSession, PushEndpoints, PushSession, RetryPolicy, SessionEndpoints,
    SessionEvent, SessionEventKind, SessionOutcome, SessionReport, SessionStream, Step,
    StreamResolution, Transport,
};
pub use tamper::{FrameAdversary, FrameTamper, Tamper};
