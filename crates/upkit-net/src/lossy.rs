//! Lossy-link modeling: seeded Bernoulli frame loss.
//!
//! The paper's motivation names smart objects that "operate in harsh
//! environmental conditions for several years" — where 802.15.4 frame
//! loss is routine. Both of UpKit's transports are reliable at the link
//! layer (BLE retransmits inside the connection event; CoAP confirmable
//! messages retransmit end-to-end), so loss costs *time and energy*, never
//! correctness.
//!
//! [`LossyLink`] samples each transmission attempt from a seeded Bernoulli
//! distribution. The sample for attempt `i` of stream `s` is a pure
//! function of `(seed, s, i)` — a splitmix64 counter stream using the same
//! per-stream derivation scheme as `run_rollout_sharded` — so loss
//! patterns are reproducible per seed and completely independent of how
//! many other sessions are interleaved around this one.

use crate::profiles::{LinkProfile, TransferAccounting};

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a statistically strong stateless mixer.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A link dropping each transmission attempt independently with
/// probability `loss_rate`, sampled from a seeded counter stream.
#[derive(Clone, Copy, Debug)]
pub struct LossyLink {
    /// The underlying link timing.
    pub link: LinkProfile,
    /// Per-attempt loss probability in `0.0..=1.0`.
    pub loss_rate: f64,
    /// Campaign seed the per-stream sample streams derive from.
    pub seed: u64,
}

impl LossyLink {
    /// A perfectly reliable link.
    #[must_use]
    pub fn reliable(link: LinkProfile) -> Self {
        Self {
            link,
            loss_rate: 0.0,
            seed: 0,
        }
    }

    /// A link with seeded Bernoulli loss.
    #[must_use]
    pub fn bernoulli(link: LinkProfile, loss_rate: f64, seed: u64) -> Self {
        Self {
            link,
            loss_rate: loss_rate.clamp(0.0, 1.0),
            seed,
        }
    }

    /// Effective loss rate.
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    /// Whether transmission attempt `attempt` of stream `stream` is lost.
    ///
    /// Pure function of `(seed, stream, attempt)`: every session owns its
    /// own `stream` identifier, so its loss pattern never depends on the
    /// interleaving order of other sessions. The stream seed uses the same
    /// golden-ratio derivation as `run_rollout_sharded`'s shard streams.
    #[must_use]
    pub fn drops(&self, stream: u64, attempt: u64) -> bool {
        if self.loss_rate <= 0.0 {
            return false;
        }
        if self.loss_rate >= 1.0 {
            return true;
        }
        let stream_seed = self
            .seed
            .wrapping_add(GOLDEN_GAMMA.wrapping_mul(stream.wrapping_add(1)));
        let sample = splitmix64(stream_seed.wrapping_add(GOLDEN_GAMMA.wrapping_mul(attempt)));
        // Top 53 bits → uniform in [0, 1).
        ((sample >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.loss_rate
    }

    /// Charges a transfer toward the device analytically, at the
    /// *expected* retransmission cost: `chunks × loss_rate` chunks are
    /// sent twice and each loss costs one retransmission timeout (modeled
    /// as one RTT). Used by closed-form sweeps (`loss_sweep`); stepped
    /// sessions sample [`LossyLink::drops`] per attempt instead.
    pub fn charge_to_device(&self, acc: &mut TransferAccounting, bytes: u64) {
        acc.charge_to_device(&self.link, bytes);
        if self.loss_rate <= 0.0 {
            return;
        }
        let chunks = self.link.chunks_for(bytes);
        let lost = (chunks as f64 * self.loss_rate) as u64;
        if lost == 0 {
            return;
        }
        // Retransmitted payload: `lost` full chunks.
        acc.charge_to_device(&self.link, lost * self.link.mtu as u64);
        // Plus a timeout per loss before the sender retries.
        for _ in 0..lost {
            acc.charge_round_trip(&self.link);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_link_charges_exactly_the_base_cost() {
        let lossy = LossyLink::reliable(LinkProfile::ble_gatt());
        let mut with = TransferAccounting::default();
        lossy.charge_to_device(&mut with, 10_000);
        let mut without = TransferAccounting::default();
        without.charge_to_device(&LinkProfile::ble_gatt(), 10_000);
        assert_eq!(with, without);
        assert_eq!(lossy.loss_rate(), 0.0);
        assert!(!lossy.drops(0, 0));
    }

    #[test]
    fn loss_inflates_time_proportionally() {
        let link = LinkProfile::ieee802154_6lowpan();
        let bytes = 100_000u64;
        let mut baseline = TransferAccounting::default();
        LossyLink::reliable(link).charge_to_device(&mut baseline, bytes);

        let mut mild = TransferAccounting::default();
        LossyLink::bernoulli(link, 0.05, 0).charge_to_device(&mut mild, bytes);
        let mut harsh = TransferAccounting::default();
        LossyLink::bernoulli(link, 0.20, 0).charge_to_device(&mut harsh, bytes);

        assert!(mild.elapsed_micros > baseline.elapsed_micros);
        assert!(harsh.elapsed_micros > mild.elapsed_micros);
        // 20 % loss costs roughly 4× the overhead of 5 % loss.
        let mild_overhead = mild.elapsed_micros - baseline.elapsed_micros;
        let harsh_overhead = harsh.elapsed_micros - baseline.elapsed_micros;
        let ratio = harsh_overhead as f64 / mild_overhead as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn retransmitted_bytes_are_accounted() {
        let link = LinkProfile::ieee802154_6lowpan();
        let mut acc = TransferAccounting::default();
        LossyLink::bernoulli(link, 0.10, 0).charge_to_device(&mut acc, 6400); // 100 chunks
                                                                              // 100 chunks + 10 retransmissions.
        assert_eq!(acc.chunks, 110);
        assert_eq!(acc.round_trips, 10);
    }

    #[test]
    fn tiny_transfers_may_see_no_loss() {
        let link = LinkProfile::ieee802154_6lowpan();
        let mut acc = TransferAccounting::default();
        LossyLink::bernoulli(link, 0.01, 0).charge_to_device(&mut acc, 64); // 1 chunk
        assert_eq!(acc.chunks, 1);
        assert_eq!(acc.round_trips, 0);
    }

    #[test]
    fn sampling_is_reproducible_and_order_independent() {
        let link = LossyLink::bernoulli(LinkProfile::ieee802154_6lowpan(), 0.3, 42);
        // Pure function: the same (stream, attempt) always samples the
        // same way, in any order.
        let forward: Vec<bool> = (0..256).map(|i| link.drops(7, i)).collect();
        let backward: Vec<bool> = (0..256).rev().map(|i| link.drops(7, i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // Different streams and different seeds sample differently.
        let other_stream: Vec<bool> = (0..256).map(|i| link.drops(8, i)).collect();
        assert_ne!(forward, other_stream);
        let reseeded = LossyLink::bernoulli(LinkProfile::ieee802154_6lowpan(), 0.3, 43);
        let other_seed: Vec<bool> = (0..256).map(|i| reseeded.drops(7, i)).collect();
        assert_ne!(forward, other_seed);
    }

    #[test]
    fn empirical_loss_frequency_tracks_the_rate() {
        for rate in [0.05f64, 0.2, 0.5] {
            let link = LossyLink::bernoulli(LinkProfile::ble_gatt(), rate, 1234);
            let n = 20_000u64;
            let lost = (0..n).filter(|&i| link.drops(0, i)).count() as f64;
            let observed = lost / n as f64;
            assert!(
                (observed - rate).abs() < 0.02,
                "rate {rate}: observed {observed:.3}"
            );
        }
    }

    #[test]
    fn degenerate_rates_never_sample() {
        let sure = LossyLink::bernoulli(LinkProfile::ble_gatt(), 1.0, 9);
        let never = LossyLink::bernoulli(LinkProfile::ble_gatt(), 0.0, 9);
        for i in 0..64 {
            assert!(sure.drops(3, i));
            assert!(!never.drops(3, i));
        }
    }
}
