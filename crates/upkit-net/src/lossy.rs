//! Lossy-link modeling: retransmissions under frame loss.
//!
//! The paper's motivation names smart objects that "operate in harsh
//! environmental conditions for several years" — where 802.15.4 frame
//! loss is routine. Both of UpKit's transports are reliable at the link
//! layer (BLE retransmits inside the connection event; CoAP confirmable
//! messages retransmit end-to-end), so loss costs *time and energy*, never
//! correctness. [`LossyLink`] charges that cost deterministically: every
//! `n`-th chunk is lost once and retransmitted.

use crate::profiles::{LinkProfile, TransferAccounting};

/// A link that loses every `drop_every_nth` chunk once.
///
/// Deterministic by design: experiments stay reproducible, and a loss rate
/// of `1/n` is expressed exactly rather than sampled.
#[derive(Clone, Copy, Debug)]
pub struct LossyLink {
    /// The underlying link timing.
    pub link: LinkProfile,
    /// Every n-th chunk is lost once (`0` disables loss).
    pub drop_every_nth: u64,
}

impl LossyLink {
    /// A perfectly reliable link.
    #[must_use]
    pub fn reliable(link: LinkProfile) -> Self {
        Self {
            link,
            drop_every_nth: 0,
        }
    }

    /// A link with loss rate `1/n`.
    #[must_use]
    pub fn with_loss(link: LinkProfile, drop_every_nth: u64) -> Self {
        Self {
            link,
            drop_every_nth,
        }
    }

    /// Effective loss rate.
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        if self.drop_every_nth == 0 {
            0.0
        } else {
            1.0 / self.drop_every_nth as f64
        }
    }

    /// Charges a transfer toward the device including retransmissions:
    /// lost chunks are sent twice and each loss costs one retransmission
    /// timeout (modeled as one RTT).
    pub fn charge_to_device(&self, acc: &mut TransferAccounting, bytes: u64) {
        acc.charge_to_device(&self.link, bytes);
        if self.drop_every_nth == 0 {
            return;
        }
        let chunks = self.link.chunks_for(bytes);
        let lost = chunks / self.drop_every_nth;
        if lost == 0 {
            return;
        }
        // Retransmitted payload: `lost` full chunks.
        acc.charge_to_device(&self.link, lost * self.link.mtu as u64);
        // Plus a timeout per loss before the sender retries.
        for _ in 0..lost {
            acc.charge_round_trip(&self.link);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_link_charges_exactly_the_base_cost() {
        let lossy = LossyLink::reliable(LinkProfile::ble_gatt());
        let mut with = TransferAccounting::default();
        lossy.charge_to_device(&mut with, 10_000);
        let mut without = TransferAccounting::default();
        without.charge_to_device(&LinkProfile::ble_gatt(), 10_000);
        assert_eq!(with, without);
        assert_eq!(lossy.loss_rate(), 0.0);
    }

    #[test]
    fn loss_inflates_time_proportionally() {
        let link = LinkProfile::ieee802154_6lowpan();
        let bytes = 100_000u64;
        let mut baseline = TransferAccounting::default();
        LossyLink::reliable(link).charge_to_device(&mut baseline, bytes);

        let mut mild = TransferAccounting::default();
        LossyLink::with_loss(link, 20).charge_to_device(&mut mild, bytes); // 5 %
        let mut harsh = TransferAccounting::default();
        LossyLink::with_loss(link, 5).charge_to_device(&mut harsh, bytes); // 20 %

        assert!(mild.elapsed_micros > baseline.elapsed_micros);
        assert!(harsh.elapsed_micros > mild.elapsed_micros);
        // 20 % loss costs roughly 4× the overhead of 5 % loss.
        let mild_overhead = mild.elapsed_micros - baseline.elapsed_micros;
        let harsh_overhead = harsh.elapsed_micros - baseline.elapsed_micros;
        let ratio = harsh_overhead as f64 / mild_overhead as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn retransmitted_bytes_are_accounted() {
        let link = LinkProfile::ieee802154_6lowpan();
        let mut acc = TransferAccounting::default();
        LossyLink::with_loss(link, 10).charge_to_device(&mut acc, 6400); // 100 chunks
                                                                         // 100 chunks + 10 retransmissions.
        assert_eq!(acc.chunks, 110);
        assert_eq!(acc.round_trips, 10);
    }

    #[test]
    fn tiny_transfers_may_see_no_loss() {
        let link = LinkProfile::ieee802154_6lowpan();
        let mut acc = TransferAccounting::default();
        LossyLink::with_loss(link, 100).charge_to_device(&mut acc, 64); // 1 chunk
        assert_eq!(acc.chunks, 1);
        assert_eq!(acc.round_trips, 0);
    }
}
